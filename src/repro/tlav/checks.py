"""Differential checks for the TLAV engine family.

The in-memory :class:`~repro.tlav.engine.PregelEngine` is the reference;
the vectorized, out-of-core and distributed engines each promise a
declared relation against it:

* vectorized (``*_dense``) — bit-identical (same float operations in
  the same order, just whole-frontier at a time);
* stored (on-disk shards paged through the shard cache, any budget
  including 0: re-page every superstep) — bit-identical (paging changes
  *where* state lives, never what is computed).  The random-walk pair
  descends from the one that flushed out the legacy out-of-core
  ``neighbors()``-returns-a-list contract violation;
* distributed — BFS/WCC bit-identical (min combiners are
  order-insensitive), PageRank bounded-error (per-worker combining
  re-associates float sums).

Plus the paging-accounting invariant (the successor of the retired
``tlav.ooc`` spill oracle): the shard cache's ledger must balance —
misses minus evictions equals residents, an unbounded budget pages each
shard exactly once, and a zero budget re-pages the structure every
superstep.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List

import numpy as np

from ..check.invariants import bounded_error, same_bits, same_values
from ..check.registry import BIT_IDENTICAL, BOUNDED_ERROR, invariant, pair
from ..check.workloads import gen_graph_params, make_graph
from ..graph.partition import hash_partition, metis_like_partition
from ..graph.store import build_store, open_store
from .algorithms import (
    PageRankProgram,
    bfs,
    pagerank,
    random_walks,
    wcc,
)
from .distributed import run_distributed
from .engine import Aggregator, PregelEngine
from .vectorized import bfs_dense, pagerank_dense, wcc_dense


def _gen_graph(rng: np.random.Generator) -> Dict:
    return gen_graph_params(rng, n_range=(8, 80))


def _gen_pagerank(rng: np.random.Generator) -> Dict:
    params = _gen_graph(rng)
    params["iterations"] = int(rng.integers(1, 13))
    return params


def _gen_source(rng: np.random.Generator) -> Dict:
    params = _gen_graph(rng)
    params["source"] = int(rng.integers(1 << 16))
    return params


def _build_stored(graph, tmp: str, num_parts: int, cache_budget):
    """Write ``graph`` to a store directory and reopen it paging."""
    path = os.path.join(tmp, "store")
    build_store(graph, path, partition="hash", num_parts=max(1, num_parts))
    return open_store(path, cache_budget=cache_budget)


# ----------------------------------------------------------------------
# Engine vs vectorized
# ----------------------------------------------------------------------


@pair(
    "tlav.pagerank.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_pagerank, floors={"n": 4, "iterations": 1},
)
def _check_pr_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    return same_bits(
        pagerank(graph, iterations=iters),
        pagerank_dense(graph, iterations=iters),
        "pagerank",
    )


@pair(
    "tlav.bfs.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_source, floors={"n": 4, "source": 0},
)
def _check_bfs_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    source = int(params["source"]) % graph.num_vertices
    return same_bits(bfs(graph, source), bfs_dense(graph, source), "bfs")


@pair(
    "tlav.wcc.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_graph, floors={"n": 4},
)
def _check_wcc_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    return same_bits(wcc(graph), wcc_dense(graph), "wcc")


# ----------------------------------------------------------------------
# Engine vs stored (on-disk shards paged through the shard cache)
# ----------------------------------------------------------------------


def _gen_stored(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    params["iterations"] = int(rng.integers(1, 9))
    params["num_parts"] = int(rng.integers(1, 5))
    # Deliberately tiny budgets (often 0): constant re-paging is the point.
    params["cache_budget"] = int(rng.integers(0, 3)) * 256
    return params


@pair(
    "tlav.pagerank.engine_vs_stored", "tlav", BIT_IDENTICAL,
    gen=_gen_stored,
    floors={"n": 4, "iterations": 1, "num_parts": 1, "cache_budget": 0},
    description="Running the engine over on-disk shards with any cache "
    "budget (including 0: every superstep re-pages the structure) is "
    "bit-identical to the in-memory engine.",
)
def _check_pr_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    with tempfile.TemporaryDirectory(prefix="check-stored-") as tmp:
        with _build_stored(
            graph, tmp, int(params["num_parts"]), int(params["cache_budget"])
        ) as stored:
            got = np.asarray(pagerank(stored, iterations=iters), dtype=np.float64)
    return same_bits(pagerank(graph, iterations=iters), got, "pagerank")


def _gen_walks(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(6, 32))
    params["walk_length"] = int(rng.integers(2, 7))
    params["walks_per_vertex"] = int(rng.integers(1, 3))
    params["walk_seed"] = int(rng.integers(1 << 16))
    params["num_parts"] = int(rng.integers(1, 4))
    return params


@pair(
    "tlav.random_walks.engine_vs_stored", "tlav", BIT_IDENTICAL,
    gen=_gen_walks,
    floors={"n": 4, "walk_length": 2, "walks_per_vertex": 1, "num_parts": 1},
    description="Random walks must not depend on where the adjacency "
    "lives — the paging handle must honor the ndarray ``neighbors()`` "
    "contract (the predecessor pair caught the legacy out-of-core "
    "context handing programs a plain list; zero-budget paging keeps "
    "that contract pinned).",
)
def _check_walks_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    length = int(params["walk_length"])
    per_vertex = int(params["walks_per_vertex"])
    seed = int(params.get("walk_seed", 0))
    reference = random_walks(
        graph, walk_length=length, walks_per_vertex=per_vertex, seed=seed
    )
    with tempfile.TemporaryDirectory(prefix="check-stored-") as tmp:
        with _build_stored(graph, tmp, int(params["num_parts"]), 0) as stored:
            got = random_walks(
                stored, walk_length=length, walks_per_vertex=per_vertex, seed=seed
            )
    return same_values(reference, got, "walks")


def _gen_paging(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    params["iterations"] = int(rng.integers(1, 6))
    params["num_parts"] = int(rng.integers(1, 5))
    return params


@invariant(
    "tlav.stored.paging_accounting", "tlav", gen=_gen_paging,
    floors={"n": 4, "iterations": 1, "num_parts": 1},
    description="Shard-cache I/O ledger under the engine (successor of "
    "the retired tlav.ooc spill oracle): misses minus evictions equal "
    "resident entries, an unbounded budget pages every touched shard "
    "exactly once (bytes_paged == resident bytes, no evictions), and a "
    "zero budget keeps at most one shard resident while re-paging at "
    "least one full structure pass per superstep.",
)
def _check_paging_accounting(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    parts = int(params["num_parts"])
    out: List[str] = []

    def run_engine(stored):
        engine = PregelEngine(
            stored,
            PageRankProgram(0.85, iters),
            aggregators={
                "dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)
            },
            max_supersteps=iters + 2,
        )
        engine.run()
        return engine.superstep

    with tempfile.TemporaryDirectory(prefix="check-stored-") as tmp:
        with _build_stored(graph, tmp, parts, None) as unbounded:
            run_engine(unbounded)
            stats = unbounded.cache.stats
            if stats.misses - stats.evictions != len(unbounded.cache):
                out.append(
                    f"paging: ledger broken — {stats.misses} misses, "
                    f"{stats.evictions} evictions, "
                    f"{len(unbounded.cache)} residents"
                )
            if stats.evictions != 0:
                out.append(
                    f"paging: unbounded budget evicted {stats.evictions} shards"
                )
            if stats.bytes_paged != unbounded.cache.resident_bytes:
                out.append(
                    f"paging: unbounded budget paged {stats.bytes_paged} bytes "
                    f"but holds {unbounded.cache.resident_bytes}"
                )
            one_pass = stats.bytes_paged
        with _build_stored(graph, tmp + "-zero", parts, 0) as zero:
            supersteps = run_engine(zero)
            stats = zero.cache.stats
            if stats.misses - stats.evictions != len(zero.cache):
                out.append(
                    f"paging: zero-budget ledger broken — {stats.misses} "
                    f"misses, {stats.evictions} evictions, "
                    f"{len(zero.cache)} residents"
                )
            if len(zero.cache) > 1:
                out.append(
                    f"paging: zero budget holds {len(zero.cache)} shards"
                )
            floor = supersteps * one_pass
            if stats.bytes_paged < floor:
                out.append(
                    f"paging: zero budget paged {stats.bytes_paged} bytes in "
                    f"{supersteps} supersteps; expected >= {floor}"
                )
    return out


# ----------------------------------------------------------------------
# Engine vs distributed
# ----------------------------------------------------------------------


def _gen_distributed(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["num_parts"] = int(rng.integers(2, 6))
    params["part_seed"] = int(rng.integers(1 << 16))
    params["metis"] = int(rng.integers(2))
    params["source"] = int(rng.integers(1 << 16))
    params["iterations"] = int(rng.integers(1, 9))
    return params


def _partition_for(graph, params: Dict):
    parts = max(1, int(params["num_parts"]))
    seed = int(params.get("part_seed", 0))
    if int(params.get("metis", 0)):
        return metis_like_partition(graph, parts, seed=seed)
    return hash_partition(graph, parts, seed=seed)


@pair(
    "tlav.bfs.engine_vs_distributed", "tlav", BIT_IDENTICAL,
    gen=_gen_distributed,
    floors={"n": 4, "num_parts": 2, "source": 0, "metis": 0},
    description="BFS under per-worker min-combining is exact: min is "
    "associative/commutative/idempotent, so worker boundaries cannot "
    "change any level.",
)
def _check_bfs_distributed(params: Dict) -> List[str]:
    graph = make_graph(params)
    source = int(params["source"]) % graph.num_vertices
    from .algorithms import BFSProgram

    engine = PregelEngine(
        graph, BFSProgram(source), max_supersteps=graph.num_vertices + 1
    )
    reference = engine.run()
    values, _ = run_distributed(
        graph,
        BFSProgram(source),
        _partition_for(graph, params),
        max_supersteps=graph.num_vertices + 1,
    )
    return same_values(list(reference), list(values), "bfs")


@pair(
    "tlav.pagerank.engine_vs_distributed", "tlav", BOUNDED_ERROR,
    gen=_gen_distributed,
    floors={"n": 4, "num_parts": 2, "iterations": 1, "metis": 0},
    description="Distributed PageRank re-associates float sums at "
    "worker boundaries (combiners), so it is bounded-error (1e-12), "
    "never bit-identical.",
)
def _check_pr_distributed(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    reference = pagerank(graph, iterations=iters)
    values, _ = run_distributed(
        graph,
        PageRankProgram(0.85, iters),
        _partition_for(graph, params),
        aggregators={
            "dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)
        },
        max_supersteps=iters + 2,
    )
    return bounded_error(
        reference, np.asarray(values, dtype=np.float64), atol=1e-12,
        label="pagerank",
    )


# ----------------------------------------------------------------------
# Incremental maintainers vs from-scratch recompute (streaming updates)
# ----------------------------------------------------------------------


def _gen_incremental(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["batches"] = int(rng.integers(3, 9))
    params["update_seed"] = int(rng.integers(1 << 20))
    params["edge_frac"] = round(float(rng.uniform(0.005, 0.05)), 4)
    return params


def _gen_incremental_bfs(rng: np.random.Generator) -> Dict:
    params = _gen_incremental(rng)
    params["source"] = int(rng.integers(1 << 16))
    return params


def _incremental_stream(params: Dict):
    """(initial graph, regenerated seeded update batches)."""
    from ..graph.delta import random_edge_updates

    graph = make_graph(params)
    batches = random_edge_updates(
        graph,
        max(1, int(params["batches"])),
        edge_fraction=max(1e-4, float(params.get("edge_frac", 0.01))),
        seed=int(params.get("update_seed", 0)),
    )
    return graph, batches


@pair(
    "tlav.incremental.pagerank_vs_scratch", "tlav", BOUNDED_ERROR,
    gen=_gen_incremental,
    floors={"n": 4, "batches": 1, "update_seed": 0, "edge_frac": 0.005},
    description="Gauss-Southwell delta PageRank repairs residuals for "
    "touched vertices only; two solves pushed to the same tolerance "
    "agree to O(n*tol/(1-d)), never bit-identical (push order differs).",
)
def _check_incremental_pagerank(params: Dict) -> List[str]:
    from ..graph.delta import apply_edge_updates
    from .incremental import IncrementalPageRank

    graph, batches = _incremental_stream(params)
    maintainer = IncrementalPageRank(graph, tol=1e-10)
    violations: List[str] = []
    for epoch, (ins, dels) in enumerate(batches, start=1):
        maintainer.apply(ins, dels)
        graph, _ = apply_edge_updates(graph, inserts=ins, deletes=dels)
        violations += bounded_error(
            IncrementalPageRank(graph, tol=1e-10).scores(),
            maintainer.scores(),
            atol=1e-6,
            label=f"pagerank@epoch{epoch}",
        )
    return violations


@pair(
    "tlav.incremental.wcc_vs_scratch", "tlav", BIT_IDENTICAL,
    gen=_gen_incremental,
    floors={"n": 4, "batches": 1, "update_seed": 0, "edge_frac": 0.005},
    description="Incremental WCC (eager union on insert, affected-"
    "component re-exploration on delete) lands on the same min-vertex-id "
    "labels as a scratch solve at every epoch.",
)
def _check_incremental_wcc(params: Dict) -> List[str]:
    from ..graph.delta import apply_edge_updates
    from .incremental import IncrementalWCC

    graph, batches = _incremental_stream(params)
    maintainer = IncrementalWCC(graph)
    violations: List[str] = []
    for epoch, (ins, dels) in enumerate(batches, start=1):
        maintainer.apply(ins, dels)
        graph, _ = apply_edge_updates(graph, inserts=ins, deletes=dels)
        violations += same_bits(
            wcc(graph), maintainer.labels, f"wcc@epoch{epoch}"
        )
    return violations


@pair(
    "tlav.incremental.bfs_vs_scratch", "tlav", BIT_IDENTICAL,
    gen=_gen_incremental_bfs,
    floors={"n": 4, "batches": 1, "update_seed": 0, "edge_frac": 0.005,
            "source": 0},
    description="Incremental BFS (invalidation closure on delete, "
    "decrease-only relaxation on insert) reproduces scratch levels "
    "bit-for-bit at every epoch; levels are integers, so any repair "
    "mistake is a hard mismatch.",
)
def _check_incremental_bfs(params: Dict) -> List[str]:
    from ..graph.delta import apply_edge_updates
    from .incremental import IncrementalBFS

    graph, batches = _incremental_stream(params)
    source = int(params["source"]) % graph.num_vertices
    maintainer = IncrementalBFS(graph, source)
    violations: List[str] = []
    for epoch, (ins, dels) in enumerate(batches, start=1):
        maintainer.apply(ins, dels)
        graph, _ = apply_edge_updates(graph, inserts=ins, deletes=dels)
        violations += same_bits(
            bfs(graph, source), maintainer.levels, f"bfs@epoch{epoch}"
        )
    return violations
