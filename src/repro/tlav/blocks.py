"""Block-centric (Blogel-style) computation.

Blogel [49] observed that many TLAV algorithms converge far faster when
each *block* (a connected partition of the graph) first computes a local
serial solution and only then exchanges messages at block granularity.
The classic example is connected components: within a block one BFS
settles every member, so the message rounds needed drop from the graph
diameter to the *block-graph* diameter.

:func:`wcc_blocks` implements that scheme and reports the rounds used,
so tests/benches can contrast it with the plain TLAV
:class:`~repro.tlav.algorithms.WCCProgram`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.partition import Partition

__all__ = ["block_quotient_graph", "wcc_blocks"]


def block_quotient_graph(graph: Graph, partition: Partition) -> Dict[int, Set[int]]:
    """Adjacency between blocks: block A ~ block B iff some edge crosses."""
    quotient: Dict[int, Set[int]] = {k: set() for k in range(partition.num_parts)}
    for u, v in graph.edges():
        a, b = int(partition.assignment[u]), int(partition.assignment[v])
        if a != b:
            quotient[a].add(b)
            quotient[b].add(a)
    return quotient


def wcc_blocks(graph: Graph, partition: Partition) -> Tuple[np.ndarray, int]:
    """Connected components, block-centric.

    Phase 1 (local): inside every block, find local components by BFS and
    label each with the minimum *global* vertex id it contains.

    Phase 2 (global): run hash-min at the granularity of local components
    — each round every local component adopts the smallest label among
    itself and the local components it touches across block boundaries.

    Returns ``(labels, rounds)`` where ``rounds`` counts only the global
    message rounds (the quantity Blogel reduces versus plain TLAV).
    """
    n = graph.num_vertices
    # ---- Phase 1: local components per block (zero communication).
    local_comp = np.full(n, -1, dtype=np.int64)  # component id per vertex
    comp_label: List[int] = []  # current hash-min label per component
    for block in range(partition.num_parts):
        members = set(int(v) for v in partition.part(block))
        for start in sorted(members):
            if local_comp[start] >= 0:
                continue
            cid = len(comp_label)
            comp_label.append(start)
            queue = deque([start])
            local_comp[start] = cid
            while queue:
                u = queue.popleft()
                for w in graph.neighbors(u):
                    w = int(w)
                    if w in members and local_comp[w] < 0:
                        local_comp[w] = cid
                        queue.append(w)

    # ---- Component-level adjacency across block boundaries.
    comp_adj: List[Set[int]] = [set() for _ in comp_label]
    for u, v in graph.edges():
        cu, cv = int(local_comp[u]), int(local_comp[v])
        if cu != cv:
            comp_adj[cu].add(cv)
            comp_adj[cv].add(cu)

    # ---- Phase 2: hash-min over the (much smaller) component graph.
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for cid in range(len(comp_label)):
            best = comp_label[cid]
            for other in comp_adj[cid]:
                if comp_label[other] < best:
                    best = comp_label[other]
            if best < comp_label[cid]:
                comp_label[cid] = best
                changed = True
    labels = np.asarray([comp_label[int(local_comp[v])] for v in range(n)], dtype=np.int64)
    return labels, rounds
