"""Vertex programs for the classic TLAV workloads.

These are the "vertex analytics" algorithms of the tutorial's Figure-1
pipeline — the problems TLAV systems were built for, each fitting the
O((|V|+|E|) log |V|) iterative regime of [52]:

* :class:`PageRankProgram` — with a dangling-mass aggregator;
* :class:`SSSPProgram` — Bellman-Ford style relaxation;
* :class:`BFSProgram` — level labeling;
* :class:`WCCProgram` — hash-min connected components;
* :class:`LabelPropagationProgram` — community detection heuristic;
* :class:`RandomWalkProgram` — walker forwarding, the substrate of
  DeepWalk-style embeddings;
* :class:`TriangleCountProgram` — triangle counting *forced through the
  TLAV model* (each vertex ships its whole adjacency list to its
  neighbors).  This is the tutorial's running example of a structure
  problem that TLAV systems handle badly: message volume is
  sum-over-edges of degree, i.e. O(|E| * d_avg), versus the serial
  ordered algorithm's near-linear behaviour (see
  :mod:`repro.matching.triangles` and bench C1).

Convenience wrappers (``pagerank(graph)``, ...) run each program on the
single-process engine and return plain results.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.store.handle import as_handle, resolve_graph_argument
from .engine import Aggregator, PregelEngine, VertexContext, VertexProgram

__all__ = [
    "PageRankProgram",
    "SSSPProgram",
    "BFSProgram",
    "WCCProgram",
    "LabelPropagationProgram",
    "RandomWalkProgram",
    "TriangleCountProgram",
    "LubyMISProgram",
    "luby_mis",
    "pagerank",
    "sssp",
    "bfs",
    "wcc",
    "label_propagation",
    "random_walks",
    "triangle_count_tlav",
]


class PageRankProgram(VertexProgram[float, float]):
    """PageRank with damping and dangling-mass redistribution.

    Runs a fixed number of supersteps (``iterations``); vertex values are
    probabilities summing to 1 at every superstep.
    """

    def __init__(self, damping: float = 0.85, iterations: int = 20) -> None:
        self.damping = damping
        self.iterations = iterations

    def init(self, vertex: int, graph: Graph) -> float:
        return 1.0 / graph.num_vertices

    def combine(self, a: float, b: float) -> float:
        return a + b

    def compute(self, ctx: VertexContext, messages: List[float]) -> None:
        if ctx.superstep > 0:
            incoming = sum(messages)
            dangling = ctx.aggregated("dangling", 0.0) / ctx.num_vertices
            ctx.value = (
                (1.0 - self.damping) / ctx.num_vertices
                + self.damping * (incoming + dangling)
            )
        if ctx.superstep < self.iterations:
            degree = ctx.degree()
            if degree > 0:
                share = ctx.value / degree
                ctx.send_to_neighbors(share)
            else:
                ctx.aggregate("dangling", ctx.value)
        else:
            ctx.vote_to_halt()


class SSSPProgram(VertexProgram[float, float]):
    """Single-source shortest paths (unit weights unless a weight fn is given)."""

    def __init__(self, source: int, weight=None) -> None:
        self.source = source
        self.weight = weight or (lambda u, v: 1.0)

    def init(self, vertex: int, graph: Graph) -> float:
        return 0.0 if vertex == self.source else math.inf

    def combine(self, a: float, b: float) -> float:
        return min(a, b)

    def compute(self, ctx: VertexContext, messages: List[float]) -> None:
        best = min(messages) if messages else math.inf
        if ctx.superstep == 0 and ctx.vertex == self.source:
            best = 0.0
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex == self.source):
            if best < ctx.value:
                ctx.value = best
            for w in ctx.neighbors():
                ctx.send(int(w), ctx.value + self.weight(ctx.vertex, int(w)))
        ctx.vote_to_halt()


class BFSProgram(VertexProgram[int, int]):
    """BFS levels from a source; unreachable vertices keep ``-1``."""

    def __init__(self, source: int) -> None:
        self.source = source

    def init(self, vertex: int, graph: Graph) -> int:
        return -1

    def combine(self, a: int, b: int) -> int:
        return min(a, b)

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep == 0:
            if ctx.vertex == self.source:
                ctx.value = 0
                ctx.send_to_neighbors(1)
        elif ctx.value < 0 and messages:
            ctx.value = min(messages)
            ctx.send_to_neighbors(ctx.value + 1)
        ctx.vote_to_halt()


class WCCProgram(VertexProgram[int, int]):
    """Weakly connected components by hash-min label spreading.

    The canonical O(log |V|)-round Pregel algorithm from [52]: every
    vertex adopts the minimum id it has heard of and forwards changes.
    """

    def init(self, vertex: int, graph: Graph) -> int:
        return vertex

    def combine(self, a: int, b: int) -> int:
        return min(a, b)

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.value)
        else:
            best = min(messages) if messages else ctx.value
            if best < ctx.value:
                ctx.value = best
                ctx.send_to_neighbors(best)
        ctx.vote_to_halt()


class LabelPropagationProgram(VertexProgram[int, Tuple[int, int]]):
    """Synchronous label propagation for community detection.

    Each vertex adopts the most frequent label among its neighbors
    (ties to the smallest label), for a fixed number of rounds.
    """

    def __init__(self, iterations: int = 10) -> None:
        self.iterations = iterations

    def init(self, vertex: int, graph: Graph) -> int:
        return vertex

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep > 0 and messages:
            counts: dict = {}
            for label in messages:
                counts[label] = counts.get(label, 0) + 1
            best = min(counts, key=lambda lbl: (-counts[lbl], lbl))
            ctx.value = best
        if ctx.superstep < self.iterations:
            ctx.send_to_neighbors(ctx.value)
        else:
            ctx.vote_to_halt()


class RandomWalkProgram(VertexProgram[list, Tuple[int, tuple]]):
    """Forward ``walks_per_vertex`` random walkers for ``walk_length`` steps.

    Each vertex value accumulates the completed walks that *started*
    there; messages carry ``(walk_origin, path_so_far)``.  This is the
    DeepWalk walk-generation stage expressed as a vertex program.
    """

    def __init__(self, walk_length: int = 8, walks_per_vertex: int = 1, seed: int = 0) -> None:
        self.walk_length = walk_length
        self.walks_per_vertex = walks_per_vertex
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def init(self, vertex: int, graph: Graph) -> list:
        return []

    def compute(self, ctx: VertexContext, messages: List[Tuple[int, tuple]]) -> None:
        if ctx.superstep == 0:
            for _ in range(self.walks_per_vertex):
                self._advance(ctx, ctx.vertex, (ctx.vertex,))
        for head, path in messages:
            if head == "done":
                ctx.value.append(tuple(path))  # completed walk, back at origin
            else:
                self._advance(ctx, int(head), path)
        ctx.vote_to_halt()

    def _advance(self, ctx: VertexContext, origin: int, path: tuple) -> None:
        """Extend a walk sitting at this vertex, or report it finished."""
        nbrs = ctx.neighbors()
        if len(path) == self.walk_length + 1 or nbrs.size == 0:
            ctx.send(origin, ("done", path))
            return
        nxt = int(nbrs[self._rng.integers(nbrs.size)])
        ctx.send(nxt, (origin, path + (nxt,)))


class TriangleCountProgram(VertexProgram[int, tuple]):
    """Triangle counting forced through the vertex-centric model.

    Superstep 0: every vertex sends its higher-id neighbor list to each
    higher-id neighbor.  Superstep 1: each vertex intersects received
    lists with its own adjacency and accumulates the count.  The total
    message volume is ``sum_v deg(v)^2`` in the worst case — the
    quadratic blow-up the tutorial cites when arguing TLAV systems cannot
    accelerate subgraph search (bench C1 measures it against the serial
    ordered algorithm of Chu & Cheng).
    """

    def init(self, vertex: int, graph: Graph) -> int:
        return 0

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep == 0:
            higher = [int(w) for w in ctx.neighbors() if int(w) > ctx.vertex]
            for i, w in enumerate(higher):
                # One message per wedge (w, x): "do you have edge w-x?"
                for x in higher[i + 1:]:
                    ctx.send(w, x)
        else:
            nbrs = ctx.neighbors()
            count = 0
            for x in messages:
                k = int(np.searchsorted(nbrs, x))
                if k < nbrs.size and nbrs[k] == x:
                    count += 1
            ctx.value = count
        ctx.vote_to_halt()


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------


def pagerank(
    graph_or_handle=None,
    damping: float = 0.85,
    iterations: int = 20,
    *,
    graph: Optional[Graph] = None,
) -> np.ndarray:
    """PageRank scores (sum to 1) via the TLAV engine.

    ``graph_or_handle`` accepts a :class:`Graph`, any
    :class:`~repro.graph.store.GraphHandle`, or a store-directory path
    (all engine wrappers in this module share that contract); the old
    ``graph=`` keyword spelling warns :class:`DeprecationWarning`.
    """
    handle = as_handle(resolve_graph_argument("pagerank", graph_or_handle, graph))
    program = PageRankProgram(damping, iterations)
    engine = PregelEngine(
        handle,
        program,
        aggregators={"dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)},
        max_supersteps=iterations + 2,
    )
    return np.asarray(engine.run(), dtype=np.float64)


def sssp(graph_or_handle=None, source: int = 0, *, graph: Optional[Graph] = None) -> np.ndarray:
    """Hop distances from ``source`` (inf when unreachable)."""
    handle = as_handle(resolve_graph_argument("sssp", graph_or_handle, graph))
    engine = PregelEngine(
        handle, SSSPProgram(source), max_supersteps=handle.num_vertices + 1
    )
    return np.asarray(engine.run(), dtype=np.float64)


def bfs(graph_or_handle=None, source: int = 0, *, graph: Optional[Graph] = None) -> np.ndarray:
    """BFS levels from ``source`` (-1 when unreachable)."""
    handle = as_handle(resolve_graph_argument("bfs", graph_or_handle, graph))
    engine = PregelEngine(
        handle, BFSProgram(source), max_supersteps=handle.num_vertices + 1
    )
    return np.asarray(engine.run(), dtype=np.int64)


def wcc(graph_or_handle=None, *, graph: Optional[Graph] = None) -> np.ndarray:
    """Connected-component labels (min vertex id per component)."""
    handle = as_handle(resolve_graph_argument("wcc", graph_or_handle, graph))
    engine = PregelEngine(
        handle, WCCProgram(), max_supersteps=handle.num_vertices + 1
    )
    return np.asarray(engine.run(), dtype=np.int64)


def label_propagation(
    graph_or_handle=None, iterations: int = 10, *, graph: Optional[Graph] = None
) -> np.ndarray:
    """Community labels after synchronous label propagation."""
    handle = as_handle(
        resolve_graph_argument("label_propagation", graph_or_handle, graph)
    )
    engine = PregelEngine(
        handle, LabelPropagationProgram(iterations), max_supersteps=iterations + 2
    )
    return np.asarray(engine.run(), dtype=np.int64)


def random_walks(
    graph_or_handle=None,
    walk_length: int = 8,
    walks_per_vertex: int = 1,
    seed: int = 0,
    *,
    graph: Optional[Graph] = None,
) -> List[List[int]]:
    """Random walks (one list of vertex ids per completed walk)."""
    handle = as_handle(resolve_graph_argument("random_walks", graph_or_handle, graph))
    program = RandomWalkProgram(walk_length, walks_per_vertex, seed)
    engine = PregelEngine(handle, program, max_supersteps=walk_length + 3)
    values = engine.run()
    return [list(path) for collected in values for path in collected]


def triangle_count_tlav(
    graph_or_handle=None, *, graph: Optional[Graph] = None
) -> Tuple[int, int]:
    """Triangle count via the TLAV program.

    Returns ``(triangles, messages_sent)`` so benches can report the
    message blow-up alongside the answer.
    """
    handle = as_handle(
        resolve_graph_argument("triangle_count_tlav", graph_or_handle, graph)
    )
    engine = PregelEngine(handle, TriangleCountProgram(), max_supersteps=3)
    values = engine.run()
    return int(sum(values)), engine.total_messages


class LubyMISProgram(VertexProgram):
    """Luby's maximal independent set, the classic randomized Pregel demo.

    Round structure (two supersteps per round): every undecided vertex
    draws a random priority and sends it to neighbors; a vertex whose
    priority beats all undecided neighbors joins the MIS and tells its
    neighbors to drop out.  Values: 0 undecided, 1 in MIS, -1 excluded.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._priority: dict = {}

    def init(self, vertex: int, graph: Graph) -> int:
        return 0

    def compute(self, ctx: VertexContext, messages: List[tuple]) -> None:
        if ctx.value != 0:
            # Decided vertices only relay their status once more.
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 2
        if phase == 0:
            # Process last round's outcomes first.
            for kind, _ in messages:
                if kind == "joined":
                    ctx.value = -1
                    ctx.vote_to_halt()
                    return
            priority = float(self._rng.random())
            self._priority[ctx.vertex] = priority
            ctx.send_to_neighbors(("priority", priority))
            # Keep running into the decision superstep.
        else:
            my_priority = self._priority.get(ctx.vertex, 0.0)
            beaten = any(
                kind == "priority" and value > my_priority
                for kind, value in messages
            )
            if not beaten:
                ctx.value = 1
                ctx.send_to_neighbors(("joined", 0.0))
                ctx.vote_to_halt()
            else:
                # Stay undecided; wake next round via a no-op message.
                ctx.send(ctx.vertex, ("tick", 0.0))


def luby_mis(
    graph_or_handle=None,
    seed: int = 0,
    max_rounds: int = 200,
    *,
    graph: Optional[Graph] = None,
) -> np.ndarray:
    """A maximal independent set as a boolean membership array."""
    handle = as_handle(resolve_graph_argument("luby_mis", graph_or_handle, graph))
    engine = PregelEngine(
        handle, LubyMISProgram(seed=seed), max_supersteps=2 * max_rounds
    )
    values = engine.run()
    members = np.asarray([v == 1 for v in values], dtype=bool)
    # Isolated undecided vertices (no neighbors -> never beaten) join.
    return members
