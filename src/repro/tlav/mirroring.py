"""Pregel+-style vertex mirroring.

Pregel+ [50] cuts message traffic for high-degree vertices by creating
*mirrors*: a hub vertex keeps a read-only copy on every worker that
hosts many of its neighbors, so a broadcast to d neighbors becomes one
message per worker holding a mirror (plus free local fan-out) instead
of d point-to-point messages.

This module implements the mirroring *cost model and plan*:

* :func:`mirroring_plan` — decide which vertices to mirror under the
  classic degree threshold rule, and on which workers;
* :func:`message_cost` — remote messages of one broadcast superstep
  (e.g. PageRank's scatter) with and without the plan;
* :func:`optimal_threshold` — sweep thresholds and pick the traffic
  minimizer, reproducing Pregel+'s observation that a moderate
  threshold beats both extremes.

The model prices exactly the quantity Pregel+ optimizes: a vertex with
neighbors on ``w`` distinct other workers sends ``min(w, deg_remote)``
messages when mirrored versus ``deg_remote`` when not, at the price of
one mirror-update message per worker per superstep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graph.csr import Graph
from ..graph.partition import Partition

__all__ = ["MirrorPlan", "mirroring_plan", "message_cost", "optimal_threshold"]


@dataclass
class MirrorPlan:
    """Which vertices are mirrored, and where."""

    threshold: int
    mirrors: Dict[int, Set[int]]  # vertex -> remote workers holding a mirror

    @property
    def num_mirrored_vertices(self) -> int:
        return len(self.mirrors)

    @property
    def total_mirrors(self) -> int:
        return sum(len(ws) for ws in self.mirrors.values())


def _remote_neighbor_workers(
    graph: Graph, partition: Partition
) -> List[Dict[int, int]]:
    """Per vertex: {remote worker -> neighbor count there}."""
    out: List[Dict[int, int]] = [dict() for _ in graph.vertices()]
    assignment = partition.assignment
    for u, v in graph.edges():
        wu, wv = int(assignment[u]), int(assignment[v])
        if wu != wv:
            out[u][wv] = out[u].get(wv, 0) + 1
            out[v][wu] = out[v].get(wu, 0) + 1
    return out


def mirroring_plan(
    graph: Graph, partition: Partition, degree_threshold: int
) -> MirrorPlan:
    """Mirror every vertex whose degree is >= ``degree_threshold``.

    A mirror is placed on every remote worker hosting at least one of
    the vertex's neighbors (Pregel+'s all-mirror placement for selected
    vertices).
    """
    remote = _remote_neighbor_workers(graph, partition)
    mirrors: Dict[int, Set[int]] = {}
    for v in graph.vertices():
        if graph.degree(v) >= degree_threshold and remote[v]:
            mirrors[v] = set(remote[v])
    return MirrorPlan(threshold=degree_threshold, mirrors=mirrors)


def message_cost(
    graph: Graph, partition: Partition, plan: MirrorPlan
) -> Tuple[int, int]:
    """Remote messages of one broadcast superstep.

    Returns ``(without_mirroring, with_plan)``.  Without mirroring a
    vertex sends one remote message per remote neighbor.  With a mirror
    on worker ``w`` it sends exactly one mirror-update to ``w`` which
    then fans out locally for free.
    """
    remote = _remote_neighbor_workers(graph, partition)
    baseline = sum(sum(counts.values()) for counts in remote)
    with_plan = 0
    for v in graph.vertices():
        counts = remote[v]
        if not counts:
            continue
        if v in plan.mirrors:
            with_plan += len(plan.mirrors[v])  # one update per mirror
        else:
            with_plan += sum(counts.values())
    return baseline, with_plan


def optimal_threshold(
    graph: Graph,
    partition: Partition,
    candidates: List[int],
    mirror_budget: Optional[int] = None,
) -> Tuple[int, Dict[int, Tuple[int, int]]]:
    """Sweep thresholds; return the feasible traffic minimizer.

    Message count alone always favours mirroring everything (a mirror
    update never exceeds the point-to-point fan-out it replaces);
    Pregel+'s threshold exists because mirrors cost *memory*.  With
    ``mirror_budget`` given, only plans whose total mirror count fits
    are eligible — the realistic regime where a moderate threshold
    wins.

    Returns ``(best_threshold, {threshold: (messages, total_mirrors)})``.
    """
    sweep: Dict[int, Tuple[int, int]] = {}
    for threshold in candidates:
        plan = mirroring_plan(graph, partition, threshold)
        _, cost = message_cost(graph, partition, plan)
        sweep[threshold] = (cost, plan.total_mirrors)
    feasible = [
        t for t, (_, mirrors) in sweep.items()
        if mirror_budget is None or mirrors <= mirror_budget
    ]
    if not feasible:
        raise ValueError("no threshold fits the mirror budget")
    best = min(feasible, key=lambda t: (sweep[t][0], t))
    return best, sweep
