"""Distributed TLAV execution over a partitioned graph.

Runs the same :class:`~repro.tlav.engine.VertexProgram` as the
single-process engine, but vertices live on simulated workers
(:class:`~repro.cluster.comm.Network`), so every vertex-to-vertex message
is priced: messages between co-located vertices are free, cross-worker
messages accumulate in :class:`~repro.cluster.comm.CommStats`.

This makes the tutorial's TLAV-era claims measurable:

* partitioning quality translates directly into remote-message volume
  (Pregel+ / Blogel's motivation);
* sender-side combiners cut remote bytes (Pregel's combiner argument).

The executor is deterministic: identical vertex values to the
single-process engine for any partition (tests assert this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..cluster.comm import Network
from ..graph.csr import Graph
from ..graph.partition import Partition
from ..obs import MetricsRegistry
from .engine import Aggregator, PregelEngine, VertexContext, VertexProgram

__all__ = ["DistributedPregel"]


class _WorkerState:
    """Per-worker mailbox of vertex-addressed messages."""

    __slots__ = ("inbox",)

    def __init__(self) -> None:
        self.inbox: Dict[int, List[Any]] = {}


class DistributedPregel:
    """BSP executor over ``partition.num_parts`` simulated workers.

    Parameters mirror :class:`~repro.tlav.engine.PregelEngine`; the extra
    ``partition`` decides vertex placement and ``combine_remote`` toggles
    sender-side combining of messages that share a destination vertex
    (Pregel's bandwidth optimization — benches toggle it to measure the
    saving).
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        partition: Partition,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        max_supersteps: int = 100,
        combine_remote: bool = True,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        self.graph = graph
        self.program = program
        self.partition = partition
        self.obs = obs if obs is not None else MetricsRegistry()
        self.network = Network(partition.num_parts, registry=self.obs)
        self._c_supersteps = self.obs.counter(
            "tlav.supersteps", "global BSP supersteps executed"
        )
        self.max_supersteps = max_supersteps
        self.combine_remote = combine_remote and (
            type(program).combine is not VertexProgram.combine
        )
        self.superstep = 0
        self.values: List[Any] = [program.init(v, graph) for v in graph.vertices()]
        self.aggregators = aggregators or {}
        self.aggregated: Dict[str, Any] = {}
        self._agg_pending: Dict[str, Any] = {}
        self._halted = [False] * graph.num_vertices
        self._workers = [_WorkerState() for _ in range(partition.num_parts)]
        # Staging area for messages produced in the current superstep:
        # _outgoing[worker][dst_vertex] -> list of messages
        self._outgoing: List[Dict[int, List[Any]]] = [
            {} for _ in range(partition.num_parts)
        ]

    # -- context plumbing (duck-typed VertexContext) -----------------------

    def _send(self, src: int, dst: int, message: Any) -> None:
        src_worker = int(self.partition.assignment[src])
        box = self._outgoing[src_worker].setdefault(dst, [])
        if self.combine_remote and box:
            box[0] = self.program.combine(box[0], message)
        else:
            box.append(message)

    def _aggregate(self, name: str, value: Any) -> None:
        if name not in self.aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        agg = self.aggregators[name]
        if name in self._agg_pending:
            self._agg_pending[name] = agg.reduce(self._agg_pending[name], value)
        else:
            self._agg_pending[name] = value

    @property
    def _inbox(self) -> Dict[int, List[Any]]:
        # VertexContext probes reactivation via `v in engine._inbox`.
        merged: Dict[int, List[Any]] = {}
        for worker in self._workers:
            merged.update(worker.inbox)
        return merged

    # -- execution ----------------------------------------------------------

    def run(self) -> List[Any]:
        """Run to convergence; returns final vertex values."""
        while self.step():
            pass
        return self.values

    def step(self) -> bool:
        """One global superstep across all workers."""
        if self.superstep >= self.max_supersteps:
            return False
        any_active = False
        for worker_id in range(self.partition.num_parts):
            worker = self._workers[worker_id]
            for v in self.partition.part(worker_id):
                v = int(v)
                has_mail = v in worker.inbox
                if self._halted[v] and not has_mail:
                    continue
                any_active = True
                self._halted[v] = False
                ctx = VertexContext(v, self)  # duck-typed engine handle
                self.program.compute(ctx, worker.inbox.pop(v, []))
        if not any_active:
            return False
        self._c_supersteps.inc()
        self._route_messages()
        self.aggregated = self._agg_pending
        self._agg_pending = {}
        self.superstep += 1
        return True

    def _route_messages(self) -> None:
        """Ship staged messages through the network and into worker inboxes."""
        for src_worker in range(self.partition.num_parts):
            staged = self._outgoing[src_worker]
            self._outgoing[src_worker] = {}
            for dst_vertex, msgs in staged.items():
                dst_worker = int(self.partition.assignment[dst_vertex])
                self.network.send(
                    src_worker, dst_worker, (dst_vertex, msgs), tag="vertex-msg"
                )
        self.network.deliver()
        for dst_worker in range(self.partition.num_parts):
            inbox = self._workers[dst_worker].inbox
            for msg in self.network.receive(dst_worker):
                dst_vertex, msgs = msg.payload
                inbox.setdefault(dst_vertex, []).extend(msgs)


def run_distributed(
    graph: Graph,
    program: VertexProgram,
    partition: Partition,
    aggregators: Optional[Dict[str, Aggregator]] = None,
    max_supersteps: int = 100,
    combine_remote: bool = True,
):
    """Convenience: build, run, and return ``(values, comm_stats)``."""
    engine = DistributedPregel(
        graph, program, partition, aggregators, max_supersteps, combine_remote
    )
    values = engine.run()
    return values, engine.network.stats
