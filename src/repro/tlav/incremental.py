"""Incremental recomputation for streamed edge mutations.

The batch engines in :mod:`repro.tlav.algorithms` recompute from
scratch on every snapshot; under a sustained update trickle that is
the dominant avoidable cost (Ammar & Özsu's experimental analysis, and
the dynamic-processing thread of the Vatter et al. survey).  This
module maintains three classic analytics *incrementally*: each
maintainer owns its snapshot, consumes raw ``(inserts, deletes)``
batches through :func:`~repro.graph.delta.apply_edge_updates`, and
repairs only the state the effective delta perturbs.

* :class:`IncrementalPageRank` — Gauss–Southwell residual pushes over
  the invariant ``r = b + d·A^T D^{-1} p − p``: an edge batch adjusts
  the residuals of the touched vertices' neighborhoods (old share out,
  new share in) and pushes until every ``|r_v| ≤ tol``, converging to
  the same fixed point a from-scratch solve reaches — the
  ``tlav.incremental.pagerank_vs_scratch`` oracle bounds the gap by
  the push tolerance.
* :class:`IncrementalWCC` — min-label components under insertions by
  eager union (relabel the losing component), under deletions by
  **affected-component repair**: only components that lost an edge are
  re-explored, everything else keeps its label untouched.  Labels are
  bit-identical to :func:`~repro.tlav.algorithms.wcc` at every epoch.
* :class:`IncrementalBFS` — levels from a fixed source repaired with
  the Ramalingam–Reps two-phase scheme: invalidate the closure of
  vertices whose parent chain broke (processed in level order), re-run
  a bounded multi-source BFS from the surviving boundary, then relax
  insert-created shortcuts to the exact fixpoint.  Bit-identical to
  :func:`~repro.tlav.algorithms.bfs` at every epoch.

Every maintainer counts the work it does (pushes, relabels, repaired
vertices) so the X8 bench can report per-update cost next to the
recompute-per-epoch baseline it replaces.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.delta import EdgeDelta, apply_edge_updates

__all__ = ["IncrementalPageRank", "IncrementalWCC", "IncrementalBFS"]

_UNREACHED = np.iinfo(np.int64).max


def _as_graph(graph_or_handle: Any) -> Graph:
    if isinstance(graph_or_handle, Graph):
        return graph_or_handle
    to_graph = getattr(graph_or_handle, "to_graph", None)
    if to_graph is not None:
        return to_graph()
    raise TypeError(
        f"expected a Graph or handle, got {type(graph_or_handle).__name__}"
    )


class _Maintainer:
    """Shared snapshot plumbing: own the graph, apply effective deltas."""

    def __init__(self, graph_or_handle: Any) -> None:
        self.graph = _as_graph(graph_or_handle)
        self.epoch = 0

    def apply(
        self,
        inserts: Iterable[Tuple[int, int]] = (),
        deletes: Iterable[Tuple[int, int]] = (),
    ) -> EdgeDelta:
        """Advance one batch: mutate the snapshot, repair the state."""
        old = self.graph
        self.graph, delta = apply_edge_updates(old, inserts, deletes)
        self.epoch += 1
        if delta.changed:
            self._repair(old, delta)
        return delta

    def _repair(self, old: Graph, delta: EdgeDelta) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Delta PageRank: Gauss–Southwell residual pushes
# ----------------------------------------------------------------------


class IncrementalPageRank(_Maintainer):
    """PageRank tracked through edge batches by residual pushing.

    State is ``(p, r)`` with the invariant that ``p + push(r)`` solves
    ``p = (1 - damping)/n + damping · Σ_{u→v} p_u / deg(u)`` (dangling
    vertices leak their damping mass; :meth:`scores` renormalizes).
    ``tol`` bounds the residual left behind, hence the distance to the
    exact fixed point: two solves pushed to the same ``tol`` agree to
    ``O(n · tol / (1 - damping))``.
    """

    def __init__(
        self,
        graph_or_handle: Any,
        damping: float = 0.85,
        tol: float = 1e-10,
    ) -> None:
        super().__init__(graph_or_handle)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if tol <= 0.0:
            raise ValueError("tol must be > 0")
        self.damping = float(damping)
        self.tol = float(tol)
        n = self.graph.num_vertices
        self.p = np.zeros(n, dtype=np.float64)
        self.r = np.full(n, (1.0 - self.damping) / max(n, 1), dtype=np.float64)
        self.pushes = 0
        self._push(np.arange(n, dtype=np.int64))

    def _push(self, seeds: np.ndarray) -> None:
        """Drain residuals above ``tol``, FIFO over vertex ids."""
        n = self.graph.num_vertices
        queued = np.zeros(n, dtype=bool)
        work = deque()
        for v in seeds:
            v = int(v)
            if abs(self.r[v]) > self.tol and not queued[v]:
                queued[v] = True
                work.append(v)
        while work:
            v = work.popleft()
            queued[v] = False
            rv = self.r[v]
            if abs(rv) <= self.tol:
                continue
            self.pushes += 1
            self.p[v] += rv
            self.r[v] = 0.0
            nbrs = self.graph.neighbors(v)
            if nbrs.size == 0:
                continue
            self.r[nbrs] += self.damping * rv / nbrs.size
            for w in nbrs:
                w = int(w)
                if abs(self.r[w]) > self.tol and not queued[w]:
                    queued[w] = True
                    work.append(w)

    def _repair(self, old: Graph, delta: EdgeDelta) -> None:
        # Re-aim each touched vertex's outgoing share: retract the
        # contribution p_u/deg_old spread over the old neighbor list,
        # grant p_u/deg_new over the new one, then push to tolerance.
        for u in delta.touched:
            u = int(u)
            pu = self.p[u]
            old_nbrs = old.neighbors(u)
            if old_nbrs.size:
                self.r[old_nbrs] -= self.damping * pu / old_nbrs.size
            new_nbrs = self.graph.neighbors(u)
            if new_nbrs.size:
                self.r[new_nbrs] += self.damping * pu / new_nbrs.size
        seeds = np.unique(np.concatenate([
            delta.touched,
            np.concatenate([old.neighbors(int(u)) for u in delta.touched])
            if delta.touched.size else np.empty(0, dtype=np.int64),
            np.concatenate([self.graph.neighbors(int(u))
                            for u in delta.touched])
            if delta.touched.size else np.empty(0, dtype=np.int64),
        ]))
        self._push(seeds)

    def scores(self) -> np.ndarray:
        """Current estimate, normalized to sum to 1."""
        total = float(self.p.sum())
        return self.p / total if total > 0 else self.p.copy()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "pushes": self.pushes,
            "residual": float(np.abs(self.r).max(initial=0.0)),
        }


# ----------------------------------------------------------------------
# Incremental WCC: union on insert, affected-component repair on delete
# ----------------------------------------------------------------------


class IncrementalWCC(_Maintainer):
    """Min-vertex-id component labels maintained through edge batches."""

    def __init__(self, graph_or_handle: Any) -> None:
        super().__init__(graph_or_handle)
        n = self.graph.num_vertices
        self.labels = np.full(n, -1, dtype=np.int64)
        self.relabeled = 0
        self._explore(np.ones(n, dtype=bool))

    def _explore(self, region: np.ndarray) -> None:
        """Recompute labels inside ``region`` (a closed vertex mask).

        Scanning seeds in ascending id makes the first unvisited vertex
        of each sub-component its minimum — the label :func:`wcc`'s
        min-propagation converges to.
        """
        visited = ~region
        for s in np.flatnonzero(region):
            s = int(s)
            if visited[s]:
                continue
            visited[s] = True
            self.labels[s] = s
            frontier = deque([s])
            while frontier:
                v = frontier.popleft()
                for w in self.graph.neighbors(v):
                    w = int(w)
                    if not visited[w]:
                        visited[w] = True
                        self.labels[w] = s
                        self.relabeled += 1
                        frontier.append(w)

    def _repair(self, old: Graph, delta: EdgeDelta) -> None:
        if delta.deletes.size:
            # Affected-component repair: only components that lost an
            # edge are re-explored.  Their old vertex sets are closed
            # under the post-delete edges (deletion cannot leak out of
            # a component); inserted edges are handled by the merges
            # below, so exploring the final snapshot restricted to the
            # region is exact.
            affected = np.unique(self.labels[delta.deletes.ravel()])
            region = np.isin(self.labels, affected)
            self._explore(region)
        for u, v in delta.inserts:
            a, b = self.labels[int(u)], self.labels[int(v)]
            if a == b:
                continue
            win, lose = (a, b) if a < b else (b, a)
            losers = self.labels == lose
            self.labels[losers] = win
            self.relabeled += int(losers.sum())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "components": int(np.unique(self.labels).size),
            "relabeled": self.relabeled,
        }


# ----------------------------------------------------------------------
# Incremental BFS: invalidate the broken subtree, repair from boundary
# ----------------------------------------------------------------------


class IncrementalBFS(_Maintainer):
    """BFS levels from a fixed source, repaired per batch.

    Internally levels use ``_UNREACHED`` for ∞; :attr:`levels` exposes
    the engine convention (-1 for unreachable).
    """

    def __init__(self, graph_or_handle: Any, source: int) -> None:
        super().__init__(graph_or_handle)
        n = self.graph.num_vertices
        if not 0 <= int(source) < n:
            raise ValueError(f"source {source} outside 0..{n - 1}")
        self.source = int(source)
        self._lvl = np.full(n, _UNREACHED, dtype=np.int64)
        self._lvl[self.source] = 0
        self.repaired = 0
        self._relax(deque([self.source]))

    @property
    def levels(self) -> np.ndarray:
        out = self._lvl.copy()
        out[out == _UNREACHED] = -1
        return out

    def _relax(self, work: deque) -> None:
        """Decrease-only BFS relaxation to the exact fixpoint."""
        lvl = self._lvl
        while work:
            v = work.popleft()
            base = lvl[v]
            if base == _UNREACHED:
                continue
            for w in self.graph.neighbors(v):
                w = int(w)
                if base + 1 < lvl[w]:
                    lvl[w] = base + 1
                    self.repaired += 1
                    work.append(w)

    def _invalidate(self, suspects: Iterable[int]) -> List[int]:
        """Closure of vertices whose parent chain broke (level order).

        A vertex is *supported* while some neighbor sits one level
        closer and is itself still valid.  Processing by ascending old
        level — and re-enqueueing children whenever a parent falls —
        reaches the exact Ramalingam–Reps affected set.
        """
        lvl = self._lvl
        heap = [(int(lvl[x]), int(x)) for x in suspects
                if lvl[x] != _UNREACHED and int(x) != self.source]
        heapq.heapify(heap)
        invalid: set = set()
        while heap:
            level, x = heapq.heappop(heap)
            if x in invalid or lvl[x] != level:
                continue
            supported = False
            for w in self.graph.neighbors(x):
                w = int(w)
                if lvl[w] == level - 1 and w not in invalid:
                    supported = True
                    break
            if supported:
                continue
            invalid.add(x)
            for y in self.graph.neighbors(x):
                y = int(y)
                if y not in invalid and lvl[y] == level + 1 and y != self.source:
                    heapq.heappush(heap, (int(lvl[y]), y))
        return sorted(invalid)

    def _repair(self, old: Graph, delta: EdgeDelta) -> None:
        lvl = self._lvl
        if delta.deletes.size:
            invalid = self._invalidate(
                int(v) for v in np.unique(delta.deletes.ravel())
            )
            if invalid:
                inv = np.asarray(invalid, dtype=np.int64)
                lvl[inv] = _UNREACHED
                invalid_set = set(invalid)
                # Multi-source unit Dijkstra from the valid boundary:
                # every surviving neighbor of the hole seeds with its
                # (exact) level, so repaired levels are achievable.
                heap = []
                for x in invalid:
                    for w in self.graph.neighbors(x):
                        w = int(w)
                        if w not in invalid_set and lvl[w] != _UNREACHED:
                            heap.append((int(lvl[w]), w))
                heapq.heapify(heap)
                while heap:
                    level, v = heapq.heappop(heap)
                    if lvl[v] != level:
                        continue
                    for w in self.graph.neighbors(v):
                        w = int(w)
                        if level + 1 < lvl[w]:
                            lvl[w] = level + 1
                            self.repaired += 1
                            heapq.heappush(heap, (level + 1, w))
        if delta.inserts.size:
            seeds = deque(
                int(v) for v in np.unique(delta.inserts.ravel())
                if lvl[int(v)] != _UNREACHED
            )
            self._relax(seeds)

    def as_dict(self) -> Dict[str, Any]:
        reached = int(np.count_nonzero(self._lvl != _UNREACHED))
        return {
            "epoch": self.epoch,
            "reached": reached,
            "repaired": self.repaired,
        }
