"""Lightweight fault tolerance for Pregel-like systems (LWCP).

LWCP [48] observes that classic Pregel checkpointing (serialize all
vertex state + in-flight messages every delta supersteps) is overkill:
vertex *state* is cheap to snapshot while messages can be regenerated,
so a lightweight checkpoint stores only the state and recovery replays
from the last checkpoint.

:class:`CheckpointedEngine` wraps a :class:`~repro.tlav.engine.PregelEngine`
program with:

* configurable checkpoint interval;
* two checkpoint flavours — ``full`` (state + inbox, the classic
  scheme) and ``light`` (state only, LWCP);
* crash injection through the unified
  :class:`~repro.resilience.FaultInjector` (``fail_superstep`` faults);
  :meth:`inject_failure` remains as a one-call shim over it;
* checkpoints stored in a :class:`~repro.resilience.SnapshotStore`
  (tag ``tlav``), so checkpoint bytes, restores and recovery spans
  surface under ``resilience.*`` next to every other engine's;
* accounting of checkpoint bytes, lost supersteps, and recovery
  supersteps, so the interval trade-off (checkpoint cost vs recovery
  cost) is measurable — the LWCP evaluation's axes.

The wrapped run is deterministic, so tests assert the recovered run's
final values are bit-identical to a failure-free run.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..graph.csr import Graph
from ..obs import MetricsRegistry, Tracer
from ..resilience import FaultInjector, Snapshot, SnapshotStore
from .engine import Aggregator, PregelEngine, VertexProgram

__all__ = ["FaultStats", "CheckpointedEngine"]

SNAPSHOT_TAG = "tlav"


@dataclass
class FaultStats:
    """Costs of one checkpointed (and possibly failing) run."""

    checkpoints_taken: int = 0
    checkpoint_bytes: int = 0
    failures: int = 0
    supersteps_executed: int = 0
    supersteps_replayed: int = 0


class CheckpointedEngine:
    """A Pregel engine with periodic checkpoints and crash recovery.

    Parameters beyond the classic ones:

    injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted
        before every superstep; its ``fail_superstep`` faults crash the
        engine, which then restores the latest snapshot and replays.
    snapshots:
        Optional shared :class:`~repro.resilience.SnapshotStore`
        (private one if omitted) holding the ``tlav``-tagged
        checkpoints.
    obs / tracer:
        Shared observability; recoveries appear as
        ``resilience.recover`` spans with the replay distance.
    """

    def __init__(
        self,
        graph: Graph,
        program: VertexProgram,
        checkpoint_interval: int = 5,
        mode: str = "light",
        aggregators: Optional[Dict[str, Aggregator]] = None,
        max_supersteps: int = 100,
        injector: Optional[FaultInjector] = None,
        snapshots: Optional[SnapshotStore] = None,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if mode not in ("light", "full"):
            raise ValueError("mode must be 'light' or 'full'")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.mode = mode
        self.checkpoint_interval = checkpoint_interval
        self.obs = obs if obs is not None else MetricsRegistry()
        self.injector = injector
        self.snapshots = (
            snapshots if snapshots is not None else SnapshotStore(obs=self.obs)
        )
        self.tracer = tracer
        self.stats = FaultStats()
        self._engine = PregelEngine(
            graph,
            program,
            aggregators=aggregators,
            max_supersteps=max_supersteps,
            obs=self.obs,
        )
        self._checkpoint: Optional[Snapshot] = None
        self._take_checkpoint()  # superstep-0 baseline

    def inject_failure(self, superstep: int) -> None:
        """Crash (once) when reaching ``superstep``.

        Shim over the unified fault API: equivalent to running under
        ``FaultPlan().fail_superstep(superstep)``.
        """
        if self.injector is None:
            self.injector = FaultInjector(obs=self.obs)
        self.injector.arm("superstep_failure", int(superstep))

    # -- checkpointing ------------------------------------------------------

    def _take_checkpoint(self) -> None:
        engine = self._engine
        state = {
            "superstep": engine.superstep,
            "values": engine.values,
            "halted": engine._halted,
            "aggregated": engine.aggregated,
            # LWCP: a real light checkpoint regenerates messages by
            # replaying the superstep that produced them; the simulation
            # keeps the inbox so recovery stays exact and *bills* only
            # what the light scheme would persist (below).
            "inbox": engine._inbox,
        }
        billed = {"values": engine.values, "halted": engine._halted}
        if self.mode == "full":
            billed["inbox"] = engine._inbox
        billed_bytes = len(pickle.dumps(billed))
        self._checkpoint = self.snapshots.save(
            SNAPSHOT_TAG, engine.superstep, state, billed_bytes=billed_bytes
        )
        self.stats.checkpoints_taken += 1
        self.stats.checkpoint_bytes += billed_bytes

    def _restore(self) -> None:
        assert self._checkpoint is not None
        state = self.snapshots.restore_latest(SNAPSHOT_TAG)
        engine = self._engine
        engine.superstep = state["superstep"]
        engine.values = state["values"]
        engine._halted = state["halted"]
        engine.aggregated = state["aggregated"]
        engine._inbox = state["inbox"]
        engine._outbox = {}
        engine._agg_pending = {}

    # -- execution ------------------------------------------------------------

    def run(self) -> List[Any]:
        """Run to convergence, surviving any injected failures."""
        while True:
            if self.injector is not None and self.injector.take_superstep_failure(
                self._engine.superstep
            ):
                # Crash: lose all volatile state since the checkpoint.
                self.stats.failures += 1
                assert self._checkpoint is not None
                lost = self._engine.superstep - self._checkpoint.step
                self.stats.supersteps_replayed += lost
                if self.tracer is not None:
                    with self.tracer.span(
                        "resilience.recover",
                        engine="tlav",
                        superstep=self._engine.superstep,
                        replayed=lost,
                        mode=self.mode,
                    ):
                        self._restore()
                else:
                    self._restore()
                continue
            progressed = self._engine.step()
            if not progressed:
                return self._engine.values
            self.stats.supersteps_executed += 1
            if self._engine.superstep % self.checkpoint_interval == 0:
                self._take_checkpoint()

    @property
    def values(self) -> List[Any]:
        return self._engine.values

    @property
    def superstep(self) -> int:
        return self._engine.superstep
