"""Query-centric vertex processing (Quegel).

Quegel [51, 70] targets *online* graph querying on Pregel
infrastructure: many light queries (point-to-point shortest paths,
reachability) run concurrently, each touching a tiny fraction of the
graph, and the system shares every superstep's fixed overhead (barrier,
message flush) across all in-flight queries.

:class:`QuegelEngine` reproduces the model for bidirectional-BFS-free
plain forward BFS queries:

* each query holds *sparse* per-vertex state (only touched vertices
  materialize state — Quegel's key memory trick);
* one global superstep advances every live query's frontier;
* per-superstep fixed overhead is charged once, so batching B queries
  over S shared supersteps costs ``S * overhead`` instead of
  ``sum_i S_i * overhead``;
* queries retire individually the moment their target is reached.

``run()`` returns per-query results plus the shared/sequential
overhead accounting the Quegel paper argues about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graph.csr import Graph

__all__ = ["PointQuery", "QueryOutcome", "QuegelEngine"]


@dataclass
class PointQuery:
    """A point-to-point hop-distance query."""

    source: int
    target: int


@dataclass
class QueryOutcome:
    """Result of one query."""

    query_id: int
    distance: Optional[int]  # None = unreachable
    supersteps_used: int
    vertices_touched: int


class QuegelEngine:
    """Concurrent BFS query execution with shared supersteps."""

    def __init__(self, graph: Graph, superstep_overhead: float = 1.0) -> None:
        self.graph = graph
        self.superstep_overhead = superstep_overhead
        self._queries: List[PointQuery] = []

    def submit(self, query: PointQuery) -> int:
        n = self.graph.num_vertices
        if not (0 <= query.source < n and 0 <= query.target < n):
            raise ValueError("query endpoints out of range")
        self._queries.append(query)
        return len(self._queries) - 1

    def run(self) -> Tuple[List[QueryOutcome], Dict[str, float]]:
        """Run all queries; returns outcomes + overhead accounting.

        The accounting compares ``shared_overhead`` (one barrier per
        global superstep while any query is live) against
        ``sequential_overhead`` (each query paying for its own
        supersteps), with identical per-query answers either way.
        """
        # Sparse per-query state: visited sets and frontiers.
        frontier: List[Set[int]] = [
            {q.source} for q in self._queries
        ]
        visited: List[Set[int]] = [
            {q.source} for q in self._queries
        ]
        distance: List[Optional[int]] = [
            0 if q.source == q.target else None for q in self._queries
        ]
        finished = [d is not None for d in distance]
        steps_used = [0] * len(self._queries)

        superstep = 0
        while not all(
            finished[i] or not frontier[i] for i in range(len(self._queries))
        ):
            superstep += 1
            for i, q in enumerate(self._queries):
                if finished[i] or not frontier[i]:
                    continue
                next_frontier: Set[int] = set()
                for u in frontier[i]:
                    for w in self.graph.neighbors(u):
                        w = int(w)
                        if w not in visited[i]:
                            visited[i].add(w)
                            next_frontier.add(w)
                frontier[i] = next_frontier
                steps_used[i] = superstep
                if q.target in visited[i]:
                    distance[i] = superstep
                    finished[i] = True

        outcomes = [
            QueryOutcome(
                query_id=i,
                distance=distance[i],
                supersteps_used=steps_used[i],
                vertices_touched=len(visited[i]),
            )
            for i in range(len(self._queries))
        ]
        shared = superstep * self.superstep_overhead
        sequential = sum(steps_used) * self.superstep_overhead
        accounting = {
            "global_supersteps": float(superstep),
            "shared_overhead": shared,
            "sequential_overhead": sequential,
            "overhead_saving": sequential - shared,
        }
        return outcomes, accounting
