"""Out-of-core vertex-centric processing (GraphD) — deprecated shim.

.. deprecated::
    ``tlav.ooc`` predates :mod:`repro.graph.store`.  New code should
    materialize the graph once (:func:`repro.graph.store.build_store`
    or :func:`~repro.graph.store.ingest_edge_stream`) and run the
    ordinary :class:`~repro.tlav.engine.PregelEngine` over the
    resulting :class:`~repro.graph.store.StoredGraph` handle — every
    TLAV entry point accepts it.  This class remains as a thin
    compatibility layer and now *routes its own internals through the
    store*, so it is no longer a second storage implementation.

GraphD [55] runs Pregel workloads "beyond the memory limit": adjacency
lists and message streams live on disk; each superstep streams the
structure, keeping only the O(|V|) vertex states resident.  The shim
reproduces the model: at construction the text adjacency file is
ingested (chunked) into a throwaway store, and each superstep re-pages
every CSR shard through a zero-budget shard cache — the whole
structure crosses the "disk" boundary once per superstep, exactly the
traffic GraphD's evaluation plots against memory budget.  Messages are
staged to a spill file when the in-memory message buffer **reaches**
``message_buffer_limit`` (not "exceeds" — the buffer never holds more
than the limit, as ``IOStats.peak_buffered_messages`` pins).

Results are identical to the in-memory engine for the same program
(tests assert it on PageRank, WCC, and random walks).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..graph.store.stored import open_store
from ..graph.store.writer import ingest_edge_stream
from .engine import Aggregator, VertexProgram

__all__ = ["IOStats", "OutOfCoreEngine"]


@dataclass
class IOStats:
    """Disk traffic of one out-of-core run."""

    edge_bytes_read: int = 0
    message_bytes_spilled: int = 0
    message_bytes_read: int = 0
    supersteps: int = 0
    peak_buffered_messages: int = 0


def _adjacency_slots(path: str):
    """Yield every directed slot ``(v, w)`` of a text adjacency file.

    The file lists both directions of an undirected edge, so the slots
    are ingested as a *directed* stream to reproduce the CSR exactly.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, _, rest = line.partition(":")
            v = int(head)
            for w in rest.split():
                yield v, int(w)


class _StreamContext:
    """Minimal vertex context for the streaming engine."""

    __slots__ = ("vertex", "engine", "_neighbors")

    def __init__(self, vertex: int, engine: "OutOfCoreEngine", neighbors: np.ndarray):
        self.vertex = vertex
        self.engine = engine
        self._neighbors = neighbors

    @property
    def superstep(self) -> int:
        return self.engine.superstep

    @property
    def num_vertices(self) -> int:
        return self.engine.num_vertices

    @property
    def value(self) -> Any:
        return self.engine.values[self.vertex]

    @value.setter
    def value(self, new_value: Any) -> None:
        self.engine.values[self.vertex] = new_value

    def neighbors(self) -> np.ndarray:
        # Same contract as VertexContext.neighbors(): an int64 array
        # (programs use array ops — RandomWalkProgram reads .size).
        return self._neighbors

    def degree(self) -> int:
        return int(self._neighbors.size)

    def send(self, dst: int, message: Any) -> None:
        self.engine._send(dst, message)

    def send_to_neighbors(self, message: Any) -> None:
        for w in self._neighbors:
            self.engine._send(w, message)

    def vote_to_halt(self) -> None:
        self.engine._halted[self.vertex] = True

    def aggregate(self, name: str, value: Any) -> None:
        self.engine._aggregate(name, value)

    def aggregated(self, name: str, default: Any = None) -> Any:
        return self.engine.aggregated.get(name, default)


class OutOfCoreEngine:
    """Pregel over an on-disk edge file with bounded message memory.

    Deprecated — see the module docstring; prefer a stored graph plus
    :class:`~repro.tlav.engine.PregelEngine`.

    Parameters
    ----------
    edge_path:
        Adjacency file as written by
        :func:`repro.graph.io.save_adjacency` (``v: n1 n2 ...``).
    num_vertices:
        Vertex count (the only O(|V|) state kept in memory).
    message_buffer_limit:
        Message-buffer capacity; the buffer spills to the message file
        the moment the buffered count *reaches* this limit, so at most
        ``message_buffer_limit`` messages are ever resident.  Must be
        at least 1.
    """

    #: Vertices per ingest partition — the streaming granularity.
    PART_VERTICES = 1024

    def __init__(
        self,
        edge_path: str,
        num_vertices: int,
        program: VertexProgram,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        max_supersteps: int = 100,
        message_buffer_limit: int = 10_000,
        workdir: Optional[str] = None,
    ) -> None:
        warnings.warn(
            "OutOfCoreEngine is deprecated: build a store with "
            "repro.graph.store (build_store / ingest_edge_stream) and run "
            "PregelEngine over the StoredGraph handle instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if message_buffer_limit < 1:
            raise ValueError(
                "message_buffer_limit must be >= 1 (the buffer spills when "
                "the buffered-message count reaches the limit)"
            )
        self.edge_path = edge_path
        self.num_vertices = num_vertices
        self.program = program
        self.aggregators = aggregators or {}
        self.max_supersteps = max_supersteps
        self.message_buffer_limit = message_buffer_limit
        self.superstep = 0
        self.io = IOStats()
        self.aggregated: Dict[str, Any] = {}
        self._agg_pending: Dict[str, Any] = {}
        self._workdir = workdir or tempfile.mkdtemp(prefix="graphd-")
        # Ingest the text file into a throwaway store (chunked: the edge
        # list is never resident), then page it per superstep.  Range
        # partitioning keeps partition-major iteration == ascending
        # vertex id, matching the in-memory engine's compute order.
        store_dir = os.path.join(self._workdir, "store")
        num_parts = max(1, -(-num_vertices // self.PART_VERTICES))
        ingest_edge_stream(
            _adjacency_slots(edge_path),
            num_vertices,
            store_dir,
            directed=True,
            partition="range",
            num_parts=num_parts,
            chunk_edges=65536,
            name="ooc",
            overwrite=True,
        )
        # Zero budget: every superstep re-pages each shard, so the whole
        # structure crosses the disk boundary once per superstep.
        self.store = open_store(store_dir, cache_budget=0, checksum=False)
        # O(|V|) resident state only:
        self._halted = [False] * num_vertices
        self.values: List[Any] = [
            program.init(v, _DegreeOnlyGraph(num_vertices))
            for v in range(num_vertices)
        ]
        self._inbox: Dict[int, List[Any]] = {}
        self._buffer: Dict[int, List[Any]] = {}
        self._buffered = 0
        self._spill_path = os.path.join(self._workdir, "messages.spill")
        self._spilled = False

    @property
    def structure_bytes(self) -> int:
        """Pageable CSR bytes crossing the disk boundary per superstep.

        The per-partition ``nodes`` arrays are resident (loaded at
        ``open_store``); only the ``indptr``/``indices`` shards are
        paged, and the zero-budget cache re-pages every one of them
        each superstep.
        """
        return sum(
            part.files[kind].nbytes
            for part in self.store.manifest.partitions
            for kind in ("indptr", "indices")
        )

    # -- message handling -----------------------------------------------------

    def _send(self, dst: int, message: Any) -> None:
        if dst < 0 or dst >= self.num_vertices:
            raise ValueError(f"message to nonexistent vertex {dst}")
        self._buffer.setdefault(dst, []).append(message)
        self._buffered += 1
        self.io.peak_buffered_messages = max(
            self.io.peak_buffered_messages, self._buffered
        )
        if self._buffered >= self.message_buffer_limit:
            self._spill()

    def _spill(self) -> None:
        if not self._buffer:
            return
        blob = pickle.dumps(self._buffer)
        with open(self._spill_path, "ab") as handle:
            handle.write(len(blob).to_bytes(8, "little"))
            handle.write(blob)
        self.io.message_bytes_spilled += len(blob) + 8
        self._spilled = True
        self._buffer = {}
        self._buffered = 0

    def _collect_messages(self) -> Dict[int, List[Any]]:
        merged: Dict[int, List[Any]] = {}
        if self._spilled:
            with open(self._spill_path, "rb") as handle:
                while True:
                    header = handle.read(8)
                    if not header:
                        break
                    size = int.from_bytes(header, "little")
                    blob = handle.read(size)
                    self.io.message_bytes_read += size + 8
                    chunk = pickle.loads(blob)
                    for dst, msgs in chunk.items():
                        merged.setdefault(dst, []).extend(msgs)
            os.remove(self._spill_path)
            self._spilled = False
        for dst, msgs in self._buffer.items():
            merged.setdefault(dst, []).extend(msgs)
        self._buffer = {}
        self._buffered = 0
        return merged

    def _aggregate(self, name: str, value: Any) -> None:
        if name not in self.aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        agg = self.aggregators[name]
        if name in self._agg_pending:
            self._agg_pending[name] = agg.reduce(self._agg_pending[name], value)
        else:
            self._agg_pending[name] = value

    # -- execution ---------------------------------------------------------------

    def run(self) -> List[Any]:
        while self.step():
            pass
        return self.values

    def step(self) -> bool:
        if self.superstep >= self.max_supersteps:
            return False
        active_exists = False
        paged_before = self.store.cache.stats.bytes_paged
        # Stream the structure: every CSR shard is paged back in (the
        # zero-budget cache evicted it), one run of consecutive vertex
        # ids at a time, in ascending order.
        for lo, hi, run_ptr, run_idx in self.store.iter_csr_runs():
            for v in range(lo, hi):
                has_mail = v in self._inbox
                if self._halted[v] and not has_mail:
                    continue
                active_exists = True
                self._halted[v] = False
                local = v - lo
                neighbors = np.asarray(
                    run_idx[run_ptr[local]: run_ptr[local + 1]], dtype=np.int64
                )
                ctx = _StreamContext(v, self, neighbors)
                self.program.compute(ctx, self._inbox.pop(v, []))
        self.io.edge_bytes_read += (
            self.store.cache.stats.bytes_paged - paged_before
        )
        if not active_exists:
            return False
        self._inbox = self._collect_messages()
        self.aggregated = self._agg_pending
        self._agg_pending = {}
        self.superstep += 1
        self.io.supersteps += 1
        return True


class _DegreeOnlyGraph:
    """A stand-in graph handed to ``program.init`` (no adjacency resident)."""

    def __init__(self, num_vertices: int) -> None:
        self._n = num_vertices

    @property
    def num_vertices(self) -> int:
        return self._n

    def vertices(self):
        return range(self._n)
