"""Out-of-core vertex-centric processing (GraphD).

GraphD [55] runs Pregel workloads "beyond the memory limit": adjacency
lists and message streams live on disk; each superstep streams the edge
file sequentially, keeping only the O(|V|) vertex states resident.

:class:`OutOfCoreEngine` reproduces the model against a real on-disk
edge file:

* vertex values stay in memory (the GraphD assumption);
* per superstep, adjacency is *streamed* from the edge file — never
  resident — and messages are staged to a spill file when the
  in-memory message buffer exceeds ``message_buffer_limit``;
* ``IOStats`` counts bytes read/written per superstep, the quantity
  GraphD's evaluation plots against memory budget.

Results are identical to the in-memory engine for the same program
(tests assert it on PageRank and WCC).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .engine import Aggregator, VertexProgram

__all__ = ["IOStats", "OutOfCoreEngine"]


@dataclass
class IOStats:
    """Disk traffic of one out-of-core run."""

    edge_bytes_read: int = 0
    message_bytes_spilled: int = 0
    message_bytes_read: int = 0
    supersteps: int = 0
    peak_buffered_messages: int = 0


class _StreamContext:
    """Minimal vertex context for the streaming engine."""

    __slots__ = ("vertex", "engine", "_neighbors")

    def __init__(self, vertex: int, engine: "OutOfCoreEngine", neighbors: np.ndarray):
        self.vertex = vertex
        self.engine = engine
        self._neighbors = neighbors

    @property
    def superstep(self) -> int:
        return self.engine.superstep

    @property
    def num_vertices(self) -> int:
        return self.engine.num_vertices

    @property
    def value(self) -> Any:
        return self.engine.values[self.vertex]

    @value.setter
    def value(self, new_value: Any) -> None:
        self.engine.values[self.vertex] = new_value

    def neighbors(self) -> np.ndarray:
        # Same contract as VertexContext.neighbors(): an int64 array
        # (programs use array ops — RandomWalkProgram reads .size).
        return self._neighbors

    def degree(self) -> int:
        return int(self._neighbors.size)

    def send(self, dst: int, message: Any) -> None:
        self.engine._send(dst, message)

    def send_to_neighbors(self, message: Any) -> None:
        for w in self._neighbors:
            self.engine._send(w, message)

    def vote_to_halt(self) -> None:
        self.engine._halted[self.vertex] = True

    def aggregate(self, name: str, value: Any) -> None:
        self.engine._aggregate(name, value)

    def aggregated(self, name: str, default: Any = None) -> Any:
        return self.engine.aggregated.get(name, default)


class OutOfCoreEngine:
    """Pregel over an on-disk edge file with bounded message memory.

    Parameters
    ----------
    edge_path:
        Adjacency file as written by
        :func:`repro.graph.io.save_adjacency` (``v: n1 n2 ...``).
    num_vertices:
        Vertex count (the only O(|V|) state kept in memory).
    message_buffer_limit:
        Max buffered messages before spilling to the message file.
    """

    def __init__(
        self,
        edge_path: str,
        num_vertices: int,
        program: VertexProgram,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        max_supersteps: int = 100,
        message_buffer_limit: int = 10_000,
        workdir: Optional[str] = None,
    ) -> None:
        if message_buffer_limit < 1:
            raise ValueError("message_buffer_limit must be >= 1")
        self.edge_path = edge_path
        self.num_vertices = num_vertices
        self.program = program
        self.aggregators = aggregators or {}
        self.max_supersteps = max_supersteps
        self.message_buffer_limit = message_buffer_limit
        self.superstep = 0
        self.io = IOStats()
        self.aggregated: Dict[str, Any] = {}
        self._agg_pending: Dict[str, Any] = {}
        # O(|V|) resident state only:
        self._halted = [False] * num_vertices
        self.values: List[Any] = [
            program.init(v, _DegreeOnlyGraph(num_vertices))
            for v in range(num_vertices)
        ]
        self._inbox: Dict[int, List[Any]] = {}
        self._buffer: Dict[int, List[Any]] = {}
        self._buffered = 0
        self._workdir = workdir or tempfile.mkdtemp(prefix="graphd-")
        self._spill_path = os.path.join(self._workdir, "messages.spill")
        self._spilled = False

    # -- message handling -----------------------------------------------------

    def _send(self, dst: int, message: Any) -> None:
        if dst < 0 or dst >= self.num_vertices:
            raise ValueError(f"message to nonexistent vertex {dst}")
        self._buffer.setdefault(dst, []).append(message)
        self._buffered += 1
        self.io.peak_buffered_messages = max(
            self.io.peak_buffered_messages, self._buffered
        )
        if self._buffered >= self.message_buffer_limit:
            self._spill()

    def _spill(self) -> None:
        if not self._buffer:
            return
        blob = pickle.dumps(self._buffer)
        with open(self._spill_path, "ab") as handle:
            handle.write(len(blob).to_bytes(8, "little"))
            handle.write(blob)
        self.io.message_bytes_spilled += len(blob) + 8
        self._spilled = True
        self._buffer = {}
        self._buffered = 0

    def _collect_messages(self) -> Dict[int, List[Any]]:
        merged: Dict[int, List[Any]] = {}
        if self._spilled:
            with open(self._spill_path, "rb") as handle:
                while True:
                    header = handle.read(8)
                    if not header:
                        break
                    size = int.from_bytes(header, "little")
                    blob = handle.read(size)
                    self.io.message_bytes_read += size + 8
                    chunk = pickle.loads(blob)
                    for dst, msgs in chunk.items():
                        merged.setdefault(dst, []).extend(msgs)
            os.remove(self._spill_path)
            self._spilled = False
        for dst, msgs in self._buffer.items():
            merged.setdefault(dst, []).extend(msgs)
        self._buffer = {}
        self._buffered = 0
        return merged

    def _aggregate(self, name: str, value: Any) -> None:
        if name not in self.aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        agg = self.aggregators[name]
        if name in self._agg_pending:
            self._agg_pending[name] = agg.reduce(self._agg_pending[name], value)
        else:
            self._agg_pending[name] = value

    # -- execution ---------------------------------------------------------------

    def run(self) -> List[Any]:
        while self.step():
            pass
        return self.values

    def step(self) -> bool:
        if self.superstep >= self.max_supersteps:
            return False
        active_exists = False
        # Stream the adjacency file: one vertex's neighbor list at a time.
        with open(self.edge_path) as handle:
            for line in handle:
                self.io.edge_bytes_read += len(line)
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                head, _, rest = line.partition(":")
                v = int(head)
                has_mail = v in self._inbox
                if self._halted[v] and not has_mail:
                    continue
                active_exists = True
                self._halted[v] = False
                neighbors = np.asarray(
                    [int(w) for w in rest.split()], dtype=np.int64
                )
                ctx = _StreamContext(v, self, neighbors)
                self.program.compute(ctx, self._inbox.pop(v, []))
        if not active_exists:
            return False
        self._inbox = self._collect_messages()
        self.aggregated = self._agg_pending
        self._agg_pending = {}
        self.superstep += 1
        self.io.supersteps += 1
        return True


class _DegreeOnlyGraph:
    """A stand-in graph handed to ``program.init`` (no adjacency resident)."""

    def __init__(self, num_vertices: int) -> None:
        self._n = num_vertices

    @property
    def num_vertices(self) -> int:
        return self._n

    def vertices(self):
        return range(self._n)
