"""Personalized PageRank: the recommender-system vertex analytics.

The tutorial's Figure-1 motivation names "object ranking in recommender
systems" as a killer application of vertex analytics; personalized
PageRank (PPR) is that workload's standard primitive.  Two algorithms:

* :func:`ppr_power_iteration` — the dense reference: power iteration on
  the personalized transition equation
  ``p = alpha * e_s + (1 - alpha) * P^T p``;
* :func:`ppr_forward_push` — Andersen-Chung-Lang forward push, the
  *local* algorithm real systems use: it touches only vertices near the
  seed and maintains the invariant
  ``p(v) + alpha * sum_u r(u) * pi_u(v) = pi_s(v)``, guaranteeing
  ``|estimate - truth| <= epsilon * degree`` per vertex (tested against
  the power-iteration oracle).

Forward push's touched-vertex count versus the full-graph iteration is
the same locality argument Quegel makes for point queries.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..graph.csr import Graph

__all__ = ["ppr_power_iteration", "ppr_forward_push"]


def ppr_power_iteration(
    graph: Graph,
    source: int,
    alpha: float = 0.15,
    iterations: int = 100,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Dense personalized PageRank by power iteration.

    ``alpha`` is the teleport (restart) probability back to ``source``.
    Dangling vertices restart too, so the result sums to 1.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError("source out of range")
    scores = np.zeros(n)
    scores[source] = 1.0
    degrees = graph.degrees().astype(np.float64)
    for _ in range(iterations):
        nxt = np.zeros(n)
        dangling_mass = 0.0
        for v in range(n):
            if scores[v] == 0.0:
                continue
            if degrees[v] == 0:
                dangling_mass += scores[v]
                continue
            share = scores[v] / degrees[v]
            for w in graph.neighbors(v):
                nxt[int(w)] += share
        result = (1 - alpha) * nxt
        result[source] += alpha + (1 - alpha) * dangling_mass
        if np.abs(result - scores).max() < tolerance:
            scores = result
            break
        scores = result
    return scores


def ppr_forward_push(
    graph: Graph,
    source: int,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
) -> Tuple[Dict[int, float], int]:
    """Local PPR by forward push (Andersen-Chung-Lang).

    Pushes residual mass until every vertex's residual is below
    ``epsilon * degree``.  Returns ``(estimates, touched)`` where
    ``estimates`` holds only the visited vertices and ``touched`` counts
    them — the locality measurement.

    Guarantee (tested): ``|estimates[v] - exact[v]| <= epsilon * deg(v)``.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError("source out of range")
    estimate: Dict[int, float] = {}
    residual: Dict[int, float] = {source: 1.0}
    frontier = [source]
    while frontier:
        v = frontier.pop()
        degree = graph.degree(v)
        r = residual.get(v, 0.0)
        if degree == 0:
            # Dangling: all pushed mass restarts at the source.
            estimate[v] = estimate.get(v, 0.0) + alpha * r
            residual[v] = 0.0
            residual[source] = residual.get(source, 0.0) + (1 - alpha) * r
            if residual[source] > epsilon * max(graph.degree(source), 1):
                if source not in frontier:
                    frontier.append(source)
            continue
        if r <= epsilon * degree:
            continue
        estimate[v] = estimate.get(v, 0.0) + alpha * r
        residual[v] = 0.0
        push = (1 - alpha) * r / degree
        for w in graph.neighbors(v):
            w = int(w)
            residual[w] = residual.get(w, 0.0) + push
            if residual[w] > epsilon * max(graph.degree(w), 1):
                frontier.append(w)
    touched = len(set(estimate) | set(residual))
    return estimate, touched
