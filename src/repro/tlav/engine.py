"""Think-like-a-vertex (TLAV) BSP engine.

A faithful in-process Pregel [47]: computation proceeds in supersteps;
in each superstep every *active* vertex receives the messages sent to it
in the previous superstep, runs the user's vertex program, may send
messages and mutate its value, and may vote to halt.  The run ends when
all vertices have halted and no messages are in flight.

Supported Pregel features:

* **combiners** — commutative/associative message reduction applied at
  the sender side (Pregel's bandwidth optimization);
* **aggregators** — global reductions visible to every vertex in the
  next superstep (e.g. the dangling-mass sum of PageRank);
* **vote-to-halt** with reactivation on message arrival;
* a **superstep limit** guard.

The engine exists both as the baseline the tutorial's Section 2
contrasts against (TLAV cannot accelerate subgraph search) and as the
workhorse of the Figure-1 "vertex analytics" path.  The distributed
variant in :mod:`repro.tlav.distributed` runs the same vertex programs
over a partitioned graph with real traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generic, Iterable, List, Optional, TypeVar

from ..graph.csr import Graph
from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import MetricsRegistry, StatsViewMixin, Tracer

__all__ = ["VertexProgram", "VertexContext", "PregelEngine", "SuperstepStats"]

V = TypeVar("V")  # vertex value type
M = TypeVar("M")  # message type


class VertexProgram(Generic[V, M]):
    """User-defined vertex behaviour.

    Subclass and implement :meth:`init` and :meth:`compute`.  The engine
    calls ``compute(ctx, messages)`` for every active vertex each
    superstep; ``ctx`` exposes the vertex id, its value, its neighbors,
    message sending, aggregators and ``vote_to_halt``.
    """

    def init(self, vertex: int, graph: Graph) -> V:
        """Initial value of ``vertex``."""
        raise NotImplementedError

    def compute(self, ctx: "VertexContext[V, M]", messages: List[M]) -> None:
        """One superstep of work at one vertex."""
        raise NotImplementedError

    def combine(self, a: M, b: M) -> M:
        """Optional message combiner; override to enable combining.

        Must be commutative and associative.  The engine detects the
        override and applies it at enqueue time, mirroring Pregel's
        sender-side combiners.
        """
        raise NotImplementedError


class VertexContext(Generic[V, M]):
    """The view of the engine a vertex program sees during ``compute``."""

    __slots__ = ("vertex", "_engine",)

    def __init__(self, vertex: int, engine: "PregelEngine") -> None:
        self.vertex = vertex
        self._engine = engine

    @property
    def superstep(self) -> int:
        return self._engine.superstep

    @property
    def graph(self) -> Graph:
        return self._engine.graph

    @property
    def num_vertices(self) -> int:
        return self._engine.graph.num_vertices

    @property
    def value(self) -> Any:
        return self._engine.values[self.vertex]

    @value.setter
    def value(self, new_value: Any) -> None:
        self._engine.values[self.vertex] = new_value

    def neighbors(self):
        return self._engine.graph.neighbors(self.vertex)

    def degree(self) -> int:
        return self._engine.graph.degree(self.vertex)

    def send(self, dst: int, message: Any) -> None:
        """Queue a message for delivery next superstep."""
        self._engine._send(self.vertex, int(dst), message)

    def send_to_neighbors(self, message: Any) -> None:
        for w in self.neighbors():
            self.send(int(w), message)

    def vote_to_halt(self) -> None:
        self._engine._halted[self.vertex] = True

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute to a global aggregator for the next superstep."""
        self._engine._aggregate(name, value)

    def aggregated(self, name: str, default: Any = None) -> Any:
        """Read an aggregator value from the previous superstep."""
        return self._engine.aggregated.get(name, default)


@dataclass
class SuperstepStats(StatsViewMixin):
    """Per-superstep counters (the engine's observability surface)."""

    superstep: int
    active_vertices: int
    messages_sent: int
    messages_after_combine: int

    def merge(self, other: "SuperstepStats") -> "SuperstepStats":
        """Combine superstep records: counters add, index takes the max."""
        self.superstep = max(self.superstep, other.superstep)
        self.active_vertices += other.active_vertices
        self.messages_sent += other.messages_sent
        self.messages_after_combine += other.messages_after_combine
        return self


@dataclass
class Aggregator:
    """A named global reduction."""

    reduce: Callable[[Any, Any], Any]
    initial: Any = None


class PregelEngine(Generic[V, M]):
    """Single-process BSP executor for :class:`VertexProgram`.

    Parameters
    ----------
    graph_or_handle:
        The input graph: a concrete :class:`Graph`, any
        :class:`~repro.graph.store.GraphHandle`, or a store-directory
        path (coerced through :func:`repro.graph.store.as_handle`, so
        stored graphs run the same vertex programs by paging shards).
        The pre-store ``graph=`` keyword spelling still works with a
        :class:`DeprecationWarning`.
    program:
        The vertex program.
    aggregators:
        Optional ``{name: (reduce_fn, initial)}`` global reductions.
    max_supersteps:
        Safety limit; a run that hits it raises ``RuntimeError`` unless
        ``halt_at_limit`` is set.
    obs:
        Optional shared :class:`~repro.obs.MetricsRegistry`; the engine
        emits ``tlav.*`` counters there (private registry if omitted).
    tracer:
        Optional :class:`~repro.obs.Tracer`; each superstep is recorded
        as a ``tlav.superstep`` span whose simulated clock is the
        superstep index.
    """

    def __init__(
        self,
        graph_or_handle=None,
        program: Optional[VertexProgram[V, M]] = None,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        max_supersteps: int = 100,
        halt_at_limit: bool = True,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        *,
        graph: Optional[Graph] = None,
    ) -> None:
        if program is None:
            raise TypeError("PregelEngine() missing required 'program' argument")
        self.graph = as_handle(
            resolve_graph_argument("PregelEngine", graph_or_handle, graph)
        )
        self.program = program
        self.max_supersteps = max_supersteps
        self.halt_at_limit = halt_at_limit
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self._c_supersteps = self.obs.counter(
            "tlav.supersteps", "global BSP supersteps executed"
        )
        self._c_messages = self.obs.counter(
            "tlav.messages_sent", "vertex messages sent (before combining)"
        )
        self._c_delivered = self.obs.counter(
            "tlav.messages_delivered", "vertex messages delivered (after combining)"
        )
        self._h_active = self.obs.histogram(
            "tlav.active_vertices", "active vertices per superstep"
        )
        self.superstep = 0
        self.values: List[Any] = [
            program.init(v, self.graph) for v in self.graph.vertices()
        ]
        self.aggregators = aggregators or {}
        self.aggregated: Dict[str, Any] = {}
        self._agg_pending: Dict[str, Any] = {}
        self._halted = [False] * self.graph.num_vertices
        self._inbox: Dict[int, List[Any]] = {}
        self._outbox: Dict[int, List[Any]] = {}
        self.history: List[SuperstepStats] = []
        self._messages_sent = 0
        self._use_combiner = self._probe_combiner()

    def _probe_combiner(self) -> bool:
        # A program opts into combining by overriding `combine`.
        return type(self.program).combine is not VertexProgram.combine

    # -- engine internals -------------------------------------------------

    def _send(self, src: int, dst: int, message: Any) -> None:
        if dst < 0 or dst >= self.graph.num_vertices:
            raise ValueError(f"message to nonexistent vertex {dst}")
        self._messages_sent += 1
        box = self._outbox.setdefault(dst, [])
        if self._use_combiner and box:
            box[0] = self.program.combine(box[0], message)
        else:
            box.append(message)

    def _aggregate(self, name: str, value: Any) -> None:
        if name not in self.aggregators:
            raise KeyError(f"unknown aggregator {name!r}")
        agg = self.aggregators[name]
        if name in self._agg_pending:
            self._agg_pending[name] = agg.reduce(self._agg_pending[name], value)
        else:
            self._agg_pending[name] = value

    # -- public API --------------------------------------------------------

    def run(self) -> List[Any]:
        """Run to convergence; returns the final vertex values."""
        while self.step():
            pass
        return self.values

    def step(self) -> bool:
        """Execute one superstep; returns ``False`` when converged."""
        if self.superstep >= self.max_supersteps:
            if self.halt_at_limit:
                return False
            raise RuntimeError(f"exceeded {self.max_supersteps} supersteps")
        active = [
            v
            for v in self.graph.vertices()
            if not self._halted[v] or v in self._inbox
        ]
        if not active:
            return False
        span = (
            self.tracer.span("tlav.superstep", superstep=self.superstep)
            if self.tracer is not None
            else None
        )
        self._messages_sent = 0
        for v in active:
            self._halted[v] = False
            ctx = VertexContext(v, self)
            self.program.compute(ctx, self._inbox.pop(v, []))
        delivered = sum(len(b) for b in self._outbox.values())
        self.history.append(
            SuperstepStats(
                superstep=self.superstep,
                active_vertices=len(active),
                messages_sent=self._messages_sent,
                messages_after_combine=delivered,
            )
        )
        self._c_supersteps.inc()
        self._c_messages.inc(self._messages_sent)
        self._c_delivered.inc(delivered)
        self._h_active.observe(len(active))
        if span is not None:
            span.set_sim(self.superstep, self.superstep + 1)
            span.set("active", len(active))
            span.set("messages", self._messages_sent)
            span.__exit__(None, None, None)
        self._inbox = self._outbox
        self._outbox = {}
        self.aggregated = self._agg_pending
        self._agg_pending = {}
        self.superstep += 1
        return True

    @property
    def total_messages(self) -> int:
        """Messages sent across the whole run (before combining)."""
        return sum(s.messages_sent for s in self.history)

    @property
    def total_messages_delivered(self) -> int:
        """Messages actually delivered (after combining)."""
        return sum(s.messages_after_combine for s in self.history)
