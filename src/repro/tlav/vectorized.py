"""Frontier-at-a-time (dense) TLAV supersteps.

The per-vertex :class:`~repro.tlav.engine.PregelEngine` pays Python
function-call overhead for every vertex in every superstep.  For the
data-parallel programs of the Figure-1 "vertex analytics" path —
PageRank-style fixed-point iterations, BFS/WCC-style label spreading —
a superstep is just a gather/scatter over the CSR arrays, so this module
runs it as whole-frontier numpy kernels (:mod:`repro.graph.kernels`).

Every entry point takes ``graph_or_handle`` — a concrete
:class:`~repro.graph.csr.Graph`, any
:class:`~repro.graph.store.GraphHandle`, or a store-directory path.
Dense supersteps consume the handle through ``iter_csr_runs()``: for an
in-memory graph that is the whole CSR in one run; for a
:class:`~repro.graph.store.StoredGraph` it is one run per maximal span
of consecutive global ids in the same partition, paged through the
shard cache as each superstep touches it.

Equivalence contract
--------------------
``pagerank_dense`` is **bit-identical** to the per-vertex engine's
:func:`repro.tlav.algorithms.pagerank`, not merely close — and to
itself across in-memory and stored handles.  Three facts make that
work:

1. the engine's sender-side combiner folds messages per destination in
   ascending-source order (``compute`` runs vertices in id order);
2. ``np.add.at`` applies increments in element order, and the CSR edge
   array is source-major — runs are yielded ascending and each run is
   source-major, so the per-run scatter-adds perform the *same
   additions in the same order* regardless of how the CSR is sharded;
3. the dangling-mass aggregator is folded in ascending vertex order,
   which the dense path reproduces with an explicit left fold.

``bfs_dense`` / ``wcc_dense`` are integer label spreads, equal to their
engine counterparts by construction.

Parallel partitions
-------------------
Pass an ``executor`` (:class:`repro.parallel.ParallelExecutor`) to
partition each superstep's scatter over contiguous source ranges.
Results are then *chunk-deterministic*: fixed by the chunk layout, not
the backend — serial/thread/process with the same chunking agree
bit-for-bit (floating-point partial sums are folded in chunk order).
The executor path needs the CSR in shared memory, so a stored handle
is materialized with ``to_graph()`` first (documented trade-off: the
parallel dense path is not out-of-core).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.kernels import expand_frontier, scatter_add_ordered
from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import MetricsRegistry

__all__ = ["pagerank_dense", "bfs_dense", "wcc_dense"]


def _scatter_shares_task(graph: Graph, payload: Tuple) -> np.ndarray:
    """Partial incoming-mass vector from the source range ``[lo, hi)``.

    Module-level so the process backend can ship it; the CSR arrays come
    from shared memory, the payload carries only the span and the current
    share vector.
    """
    lo, hi, shares = payload
    indptr, indices = graph.indptr, graph.indices
    degrees = indptr[lo + 1: hi + 1] - indptr[lo: hi]
    partial = np.zeros(graph.num_vertices, dtype=np.float64)
    dst = indices[indptr[lo]: indptr[hi]]
    scatter_add_ordered(partial, dst, np.repeat(shares[lo:hi], degrees))
    return partial


def _frontier_neighbors(handle, frontier: np.ndarray) -> np.ndarray:
    """All neighbors of ``frontier`` vertices, paged when stored."""
    if hasattr(handle, "indptr"):
        _, neighbors = expand_frontier(handle.indptr, handle.indices, frontier)
        return neighbors
    slices = [handle.neighbors(int(v)) for v in frontier]
    if not slices:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(slices)


def pagerank_dense(
    graph_or_handle=None,
    damping: float = 0.85,
    iterations: int = 20,
    obs: Optional[MetricsRegistry] = None,
    executor: Optional["ParallelExecutor"] = None,
    *,
    graph: Optional[Graph] = None,
) -> np.ndarray:
    """PageRank as dense supersteps; bit-identical to the engine path.

    Without an ``executor`` every superstep scatters run-by-run through
    ``iter_csr_runs()`` — one vectorized gather/scatter for an in-memory
    graph, shard-cache paging for a stored one, same bits either way.
    With an ``executor``, the scatter partitions over source-range
    chunks that run on real cores; partial vectors fold in chunk order,
    so any backend with the same chunking yields the same bits.
    """
    handle = as_handle(
        resolve_graph_argument("pagerank_dense", graph_or_handle, graph)
    )
    n = handle.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    obs = obs if obs is not None else MetricsRegistry()
    c_steps = obs.counter("tlav.dense.supersteps", "dense supersteps executed")
    c_edges = obs.counter(
        "tlav.dense.edges_processed", "CSR edges gathered/scattered"
    )
    degrees = np.asarray(handle.degrees(), dtype=np.int64)
    dangling_vertices = np.flatnonzero(degrees == 0)
    has_out = degrees > 0
    values = np.full(n, 1.0 / n, dtype=np.float64)
    if executor is not None:
        shared = handle.to_graph()  # executor backends need shared CSR
        spans = executor.spans(n)
    num_slots = handle.num_edge_slots
    for _ in range(iterations):
        shares = np.divide(
            values, degrees, out=np.zeros(n, dtype=np.float64), where=has_out
        )
        # Left fold in ascending vertex order — the aggregator's order.
        dangling = 0.0
        for v in dangling_vertices:
            dangling += values[v]
        incoming = np.zeros(n, dtype=np.float64)
        if executor is None:
            for lo, hi, run_ptr, run_idx in handle.iter_csr_runs():
                run_src = np.repeat(
                    np.arange(lo, hi, dtype=np.int64), np.diff(run_ptr)
                )
                scatter_add_ordered(incoming, run_idx, shares[run_src])
        else:
            payloads = [(lo, hi, shares) for lo, hi in spans]
            for partial in executor.map_graph(
                _scatter_shares_task, shared, payloads
            ):
                incoming += partial
        values = (1.0 - damping) / n + damping * (incoming + dangling / n)
        c_steps.inc()
        c_edges.inc(int(num_slots))
    return values


def bfs_dense(
    graph_or_handle=None, source: int = 0, *, graph: Optional[Graph] = None
) -> np.ndarray:
    """BFS levels from ``source`` as whole-frontier gathers.

    Equal to :func:`repro.tlav.algorithms.bfs` (and to
    :func:`repro.graph.properties.bfs_levels`): unreachable vertices
    keep ``-1``.
    """
    handle = as_handle(resolve_graph_argument("bfs_dense", graph_or_handle, graph))
    n = handle.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        neighbors = _frontier_neighbors(handle, frontier)
        fresh = neighbors[level[neighbors] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        depth += 1
        level[frontier] = depth
    return level


def wcc_dense(
    graph_or_handle=None,
    max_rounds: Optional[int] = None,
    *,
    graph: Optional[Graph] = None,
) -> np.ndarray:
    """Hash-min connected components as dense scatter-min rounds.

    Equal to :func:`repro.tlav.algorithms.wcc`: every vertex ends with
    the smallest vertex id in its (weakly) connected component.
    """
    handle = as_handle(resolve_graph_argument("wcc_dense", graph_or_handle, graph))
    n = handle.num_vertices
    labels = np.arange(n, dtype=np.int64)
    rounds = n if max_rounds is None else max_rounds
    for _ in range(rounds):
        spread = labels.copy()
        # Labels travel along out-edges, exactly like the vertex program
        # (for undirected graphs the CSR holds both directions); min is
        # order-independent, so per-run scatters equal the global one.
        for lo, hi, run_ptr, run_idx in handle.iter_csr_runs():
            run_src = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(run_ptr)
            )
            np.minimum.at(spread, run_idx, labels[run_src])
        if np.array_equal(spread, labels):
            break
        labels = spread
    return labels
