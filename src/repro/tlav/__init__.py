"""Think-like-a-vertex (Pregel-family) engines and algorithms."""

from .algorithms import (
    bfs,
    luby_mis,
    label_propagation,
    pagerank,
    random_walks,
    sssp,
    triangle_count_tlav,
    wcc,
)
from .distributed import DistributedPregel, run_distributed
from .fault_tolerance import CheckpointedEngine, FaultStats
from .mirroring import MirrorPlan, message_cost, mirroring_plan, optimal_threshold
from .ppr import ppr_forward_push, ppr_power_iteration
from .queries import PointQuery, QuegelEngine, QueryOutcome
from .engine import Aggregator, PregelEngine, VertexContext, VertexProgram
from .vectorized import bfs_dense, pagerank_dense, wcc_dense

__all__ = [
    "Aggregator",
    "PregelEngine",
    "VertexContext",
    "VertexProgram",
    "DistributedPregel",
    "run_distributed",
    "pagerank",
    "sssp",
    "bfs",
    "wcc",
    "label_propagation",
    "random_walks",
    "triangle_count_tlav",
    "luby_mis",
    "CheckpointedEngine",
    "FaultStats",
    "MirrorPlan",
    "mirroring_plan",
    "message_cost",
    "optimal_threshold",
    "QuegelEngine",
    "PointQuery",
    "QueryOutcome",
    "ppr_power_iteration",
    "ppr_forward_push",
    "pagerank_dense",
    "bfs_dense",
    "wcc_dense",
]
