"""Compilation-based subgraph enumeration (the AutoMine approach).

AutoMine [26] harmonizes "high-level abstraction and high performance"
by *compiling* each pattern + matching order into specialized nested
loops instead of interpreting a generic backtracking engine; GraphPi and
GraphZero inherit the idea.  This module does the same thing in Python:
:func:`generate_source` emits the source of a function with one ``for``
level per pattern vertex — candidate iteration, constant-time adjacency
checks, symmetry-breaking bounds and injectivity all specialized and
inlined — and :func:`compile_matcher` ``exec``-compiles it.

The compiled function consumes a *prepared* adjacency (plain Python
lists for iteration, frozensets for membership) built once per graph by
:func:`prepare_adjacency` — the analogue of AutoMine's load-time graph
preprocessing.  Bench C3 measures the compiled-vs-interpreted gap and
the order/symmetry-breaking effects on the same kernel.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..graph.csr import Graph
from .pattern import PatternGraph, symmetry_breaking_restrictions
from .plan import GraphStats, Planner

__all__ = [
    "prepare_adjacency",
    "generate_source",
    "compile_matcher",
    "compiled_count",
]


def prepare_adjacency(graph: Graph) -> Tuple[List[List[int]], List[frozenset]]:
    """Convert CSR adjacency into iteration lists + membership sets."""
    adj: List[List[int]] = []
    adjset: List[frozenset] = []
    for v in graph.vertices():
        nbrs = [int(w) for w in graph.neighbors(v)]
        adj.append(nbrs)
        adjset.append(frozenset(nbrs))
    return adj, adjset


def generate_source(
    pattern: PatternGraph,
    order: Sequence[int],
    restrictions: Sequence[Tuple[int, int]],
    func_name: str = "count_pattern",
) -> str:
    """Emit Python source for a pattern-specialized counting function.

    The generated function has signature
    ``func(adj, adjset, num_vertices) -> int`` with one nested loop per
    pattern vertex in ``order``.
    """
    n = pattern.n
    position_of = {pv: i for i, pv in enumerate(order)}
    lines: List[str] = [
        f"def {func_name}(adj, adjset, num_vertices):",
        "    count = 0",
    ]
    indent = "    "
    for i, pv in enumerate(order):
        pad = indent * (i + 1)
        backward = sorted(
            position_of[q] for q in pattern.adj[pv] if position_of[q] < i
        )
        lower = [
            position_of[u]
            for (u, v) in restrictions
            if v == pv and position_of[u] < i
        ]
        upper = [
            position_of[v]
            for (u, v) in restrictions
            if u == pv and position_of[v] < i
        ]
        if not backward:
            lines.append(f"{pad}for v{i} in range(num_vertices):")
        else:
            lines.append(f"{pad}for v{i} in adj[v{backward[0]}]:")
        checks: List[str] = []
        for j in backward[1:]:
            checks.append(f"v{i} in adjset[v{j}]")
        for j in lower:
            checks.append(f"v{i} > v{j}")
        for j in upper:
            checks.append(f"v{i} < v{j}")
        # Injectivity against earlier vertices not already implied
        # distinct by adjacency or an order constraint.
        for j in range(i):
            if j not in backward and j not in lower and j not in upper:
                checks.append(f"v{i} != v{j}")
        body_pad = pad + indent
        if checks:
            lines.append(f"{body_pad}if not ({' and '.join(checks)}):")
            lines.append(f"{body_pad}{indent}continue")
        if i == n - 1:
            lines.append(f"{body_pad}count += 1")
    lines.append("    return count")
    return "\n".join(lines) + "\n"


def compile_matcher(
    pattern: PatternGraph,
    order: Optional[Sequence[int]] = None,
    restrictions: Optional[Sequence[Tuple[int, int]]] = None,
) -> Callable[[List[List[int]], List[frozenset], int], int]:
    """Compile a counting function for ``pattern``.

    The order defaults to the planner's choice under a generic power-law
    stats profile; restrictions default to the pattern's
    symmetry-breaking set (pass ``[]`` to count all automorphic images).
    """
    if order is None:
        planner = Planner(
            GraphStats(num_vertices=100_000, avg_degree=16.0, max_degree=1000)
        )
        order = planner.plan(pattern).order
    if restrictions is None:
        restrictions = symmetry_breaking_restrictions(pattern)
    source = generate_source(pattern, order, restrictions)
    namespace: dict = {}
    exec(compile(source, "<pattern-codegen>", "exec"), namespace)
    func = namespace["count_pattern"]
    func.__source__ = source  # for inspection/tests
    return func


def compiled_count(graph: Graph, pattern: PatternGraph, order=None) -> int:
    """Count distinct instances of ``pattern`` using a compiled matcher."""
    func = compile_matcher(pattern, order=order)
    adj, adjset = prepare_adjacency(graph)
    return int(func(adj, adjset, graph.num_vertices))
