"""Densest-subgraph extraction by greedy peeling (Charikar's 2-approx).

The degree-ordered peeling that underlies k-core also yields the
classic 1/2-approximation to the densest subgraph (max average degree
/ 2): repeatedly remove the minimum-degree vertex and keep the prefix
with the best density.  Dense-subgraph discovery is the "community
detection" instance of the tutorial's structure-analytics path, and is
the polynomial-time cousin of the quasi-clique mining G-thinker
parallelizes.

:func:`densest_subgraph` returns ``(vertices, density)`` where density
is ``|E(S)| / |S|``; the guarantee ``density >= optimum / 2`` is
checked in tests against brute force on small graphs.
"""

from __future__ import annotations

import heapq
from typing import List, Set, Tuple

import numpy as np

from ..graph.csr import Graph

__all__ = ["density", "densest_subgraph"]


def density(graph: Graph, vertices: Set[int]) -> float:
    """|E(S)| / |S| for the vertex-induced subgraph on ``vertices``."""
    if not vertices:
        return 0.0
    edges = sum(
        1
        for u in vertices
        for w in graph.neighbors(u)
        if int(w) in vertices and u < int(w)
    )
    return edges / len(vertices)


def densest_subgraph(graph: Graph) -> Tuple[Set[int], float]:
    """Charikar's greedy peeling 1/2-approximation.

    Peels minimum-degree vertices one at a time, tracking the density
    of every suffix; returns the best suffix and its density.
    """
    n = graph.num_vertices
    if n == 0:
        return set(), 0.0
    degree = graph.degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    heap = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    edges_left = graph.num_edges
    vertices_left = n
    order: List[int] = []  # peeling order

    best_density = edges_left / max(vertices_left, 1)
    best_cut = 0  # peel prefix length achieving the best density

    while vertices_left > 0 and heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue
        removed[v] = True
        order.append(v)
        edges_left -= int(degree[v])
        vertices_left -= 1
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (int(degree[w]), w))
        if vertices_left > 0:
            current = edges_left / vertices_left
            if current > best_density:
                best_density = current
                best_cut = len(order)

    survivors = set(range(n)) - set(order[:best_cut])
    return survivors, density(graph, survivors)
