"""Candidate filtering for subgraph matching (the filter-and-join stage).

GPU matchers are built as *filter-then-join* pipelines: GSI [67] builds
per-query-vertex candidate sets before joining, and EGSM [36] maintains
them in its hash-trie structure.  CPU matchers (CFL, GraphQL families)
use the same idea.  This module implements the standard filter ladder:

* **LDF** (label-degree filter) — candidates must match the label and
  have at least the query vertex's degree;
* **NLF** (neighbor-label frequency) — candidates must have at least
  as many neighbors of each label as the query vertex requires;
* **refinement** — iterated arc-consistency: a candidate for query
  vertex ``u`` survives only if every query neighbor ``q`` of ``u``
  has a candidate adjacent to it; repeat until a fixed point.

All three stages run as batched array kernels over the sorted CSR
(:mod:`repro.graph.kernels`): LDF is one boolean mask over the degree
and label arrays, NLF scatter-counts neighbor labels for *all*
candidates of a query vertex in one :func:`~repro.graph.kernels.expand_frontier`
gather, and refinement replaces the per-candidate ``w in candidates[q]``
probes with a single batched ``searchsorted``
(:func:`~repro.graph.kernels.in_sorted`) plus an ownership reduction —
the same transformation PR 2 applied to triangle counting.  Candidate
sets are therefore *sorted int64 arrays* (membership, ``len`` and
iteration behave like the former Python sets).

:func:`build_candidates` returns the per-query-vertex candidate arrays
plus :class:`FilterStats` (set sizes after each stage — the pruning
power measurement every matching paper tabulates), and
:func:`filtered_match` plugs the sets into the backtracking kernel as
an additional per-step membership test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.kernels import any_true_per_owner, expand_frontier, in_sorted
from .backtrack import MatchStats, match
from .pattern import PatternGraph

__all__ = ["FilterStats", "build_candidates", "filtered_match"]


@dataclass
class FilterStats:
    """Candidate-set sizes after each filter stage."""

    after_ldf: List[int] = field(default_factory=list)
    after_nlf: List[int] = field(default_factory=list)
    after_refinement: List[int] = field(default_factory=list)
    refinement_rounds: int = 0

    @property
    def total_after_ldf(self) -> int:
        return sum(self.after_ldf)

    @property
    def total_after_refinement(self) -> int:
        return sum(self.after_refinement)


def build_candidates(
    graph: Graph,
    pattern: PatternGraph,
    use_nlf: bool = True,
    refine: bool = True,
) -> Tuple[List[np.ndarray], FilterStats]:
    """The LDF -> NLF -> refinement filter ladder (batched kernels)."""
    stats = FilterStats()
    n = pattern.n
    num_vertices = graph.num_vertices
    degrees = np.asarray(graph.degrees(), dtype=np.int64)
    labels = graph.vertex_labels
    indptr = graph.indptr
    indices = graph.indices

    # Stage 1: LDF — one mask over the degree/label arrays per query
    # vertex.  An unlabeled graph carries implicit label 0 everywhere.
    candidates: List[np.ndarray] = []
    for u in range(n):
        want_label = pattern.label(u)
        mask = degrees >= pattern.degree(u)
        if labels is not None:
            mask &= labels == want_label
        elif want_label != 0:
            mask = np.zeros(num_vertices, dtype=bool)
        cand = np.flatnonzero(mask).astype(np.int64)
        candidates.append(cand)
        stats.after_ldf.append(int(cand.size))

    # Stage 2: NLF — scatter-count neighbor labels for every candidate
    # of ``u`` in one frontier gather.  Without vertex labels every
    # neighbor carries label 0 and LDF's degree bound already implies
    # the requirement, so the stage is skipped.
    if use_nlf and labels is not None:
        for u in range(n):
            need: Dict[int, int] = {}
            for q in pattern.adj[u]:
                lbl = pattern.label(q)
                need[lbl] = need.get(lbl, 0) + 1
            cand = candidates[u]
            if not need or cand.size == 0:
                continue
            owners, nbrs = expand_frontier(indptr, indices, cand)
            nbr_labels = labels[nbrs]
            keep = np.ones(cand.size, dtype=bool)
            for lbl, cnt in need.items():
                have = np.zeros(cand.size, dtype=np.int64)
                np.add.at(have, owners[nbr_labels == lbl], 1)
                keep &= have >= cnt
            candidates[u] = cand[keep]
    stats.after_nlf = [int(c.size) for c in candidates]

    # Stage 3: arc-consistency refinement to a fixed point.  The former
    # per-candidate ``any(w in candidates[q])`` probe is one batched
    # binary search over the gathered neighborhoods plus an ownership
    # reduction.
    if refine:
        changed = True
        while changed:
            changed = False
            stats.refinement_rounds += 1
            for u in range(n):
                for q in pattern.adj[u]:
                    cand = candidates[u]
                    if cand.size == 0:
                        continue
                    owners, nbrs = expand_frontier(indptr, indices, cand)
                    hit = in_sorted(candidates[q], nbrs)
                    keep = any_true_per_owner(owners, hit, cand.size)
                    if int(keep.sum()) != cand.size:
                        candidates[u] = cand[keep]
                        changed = True
    stats.after_refinement = [int(c.size) for c in candidates]
    return candidates, stats


def filtered_match(
    graph: Graph,
    pattern: PatternGraph,
    order: Optional[Sequence[int]] = None,
    use_nlf: bool = True,
    refine: bool = True,
    stats: Optional[MatchStats] = None,
) -> Tuple[int, FilterStats]:
    """Backtracking matching restricted to the filtered candidate sets.

    Returns ``(count, filter_stats)``; the count always equals the
    unfiltered matcher's (tests assert it) — filtering only removes
    work, never results.
    """
    candidates, filter_stats = build_candidates(
        graph, pattern, use_nlf=use_nlf, refine=refine
    )
    if any(len(c) == 0 for c in candidates):
        return 0, filter_stats
    match_stats = stats if stats is not None else MatchStats()
    total = match(
        graph,
        pattern,
        order=order,
        stats=match_stats,
        allowed=candidates,
    )
    return total, filter_stats
