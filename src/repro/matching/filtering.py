"""Candidate filtering for subgraph matching (the filter-and-join stage).

GPU matchers are built as *filter-then-join* pipelines: GSI [67] builds
per-query-vertex candidate sets before joining, and EGSM [36] maintains
them in its hash-trie structure.  CPU matchers (CFL, GraphQL families)
use the same idea.  This module implements the standard filter ladder:

* **LDF** (label-degree filter) — candidates must match the label and
  have at least the query vertex's degree;
* **NLF** (neighbor-label frequency) — candidates must have at least
  as many neighbors of each label as the query vertex requires;
* **refinement** — iterated arc-consistency: a candidate for query
  vertex ``u`` survives only if every query neighbor ``q`` of ``u``
  has a candidate adjacent to it; repeat until a fixed point.

:func:`build_candidates` returns the per-query-vertex candidate sets
plus :class:`FilterStats` (set sizes after each stage — the pruning
power measurement every matching paper tabulates), and
:func:`filtered_match` plugs the sets into the backtracking kernel as
an additional per-step membership test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph.csr import Graph
from .backtrack import MatchStats, match
from .pattern import PatternGraph

__all__ = ["FilterStats", "build_candidates", "filtered_match"]


@dataclass
class FilterStats:
    """Candidate-set sizes after each filter stage."""

    after_ldf: List[int] = field(default_factory=list)
    after_nlf: List[int] = field(default_factory=list)
    after_refinement: List[int] = field(default_factory=list)
    refinement_rounds: int = 0

    @property
    def total_after_ldf(self) -> int:
        return sum(self.after_ldf)

    @property
    def total_after_refinement(self) -> int:
        return sum(self.after_refinement)


def build_candidates(
    graph: Graph,
    pattern: PatternGraph,
    use_nlf: bool = True,
    refine: bool = True,
) -> Tuple[List[Set[int]], FilterStats]:
    """The LDF -> NLF -> refinement filter ladder."""
    stats = FilterStats()
    n = pattern.n
    label_of = (
        (lambda v: int(graph.vertex_labels[v]))
        if graph.vertex_labels is not None
        else (lambda v: 0)
    )

    # Stage 1: LDF.
    candidates: List[Set[int]] = []
    for u in range(n):
        want_label = pattern.label(u)
        want_degree = pattern.degree(u)
        cand = {
            v
            for v in range(graph.num_vertices)
            if label_of(v) == want_label and graph.degree(v) >= want_degree
        }
        candidates.append(cand)
        stats.after_ldf.append(len(cand))

    # Stage 2: NLF.
    if use_nlf:
        for u in range(n):
            need: Dict[int, int] = {}
            for q in pattern.adj[u]:
                lbl = pattern.label(q)
                need[lbl] = need.get(lbl, 0) + 1
            surviving = set()
            for v in candidates[u]:
                have: Dict[int, int] = {}
                for w in graph.neighbors(v):
                    lbl = label_of(int(w))
                    have[lbl] = have.get(lbl, 0) + 1
                if all(have.get(lbl, 0) >= cnt for lbl, cnt in need.items()):
                    surviving.add(v)
            candidates[u] = surviving
    stats.after_nlf = [len(c) for c in candidates]

    # Stage 3: arc-consistency refinement to a fixed point.
    if refine:
        changed = True
        while changed:
            changed = False
            stats.refinement_rounds += 1
            for u in range(n):
                for q in pattern.adj[u]:
                    surviving = set()
                    for v in candidates[u]:
                        nbrs = graph.neighbors(v)
                        # v survives if some candidate of q is adjacent.
                        ok = any(
                            int(w) in candidates[q] for w in nbrs
                        )
                        if ok:
                            surviving.add(v)
                    if len(surviving) != len(candidates[u]):
                        candidates[u] = surviving
                        changed = True
    stats.after_refinement = [len(c) for c in candidates]
    return candidates, stats


def filtered_match(
    graph: Graph,
    pattern: PatternGraph,
    order: Optional[Sequence[int]] = None,
    use_nlf: bool = True,
    refine: bool = True,
    stats: Optional[MatchStats] = None,
) -> Tuple[int, FilterStats]:
    """Backtracking matching restricted to the filtered candidate sets.

    Returns ``(count, filter_stats)``; the count always equals the
    unfiltered matcher's (tests assert it) — filtering only removes
    work, never results.
    """
    candidates, filter_stats = build_candidates(
        graph, pattern, use_nlf=use_nlf, refine=refine
    )
    if any(not c for c in candidates):
        return 0, filter_stats
    match_stats = stats if stats is not None else MatchStats()
    total = match(
        graph,
        pattern,
        order=order,
        stats=match_stats,
        allowed=candidates,
    )
    return total, filter_stats
