"""Matching-order planning.

AutoMine [26], GraphPi [33] and GraphZero [25] showed that the vertex
matching order dominates subgraph-enumeration cost: a good order matches
high-connectivity pattern vertices early, so candidate sets shrink after
cheap intersections; a bad order defers constraints and explodes the
search tree.

:class:`Planner` reproduces that style of planning:

* enumerate every *connected* order of the (small) pattern;
* score each with a cardinality-style cost model driven by data-graph
  statistics (vertex count, average degree, label frequencies): the
  estimated candidate count at step ``i`` starts from ``n`` for a free
  vertex or ``d_avg`` after one adjacency constraint, and each
  additional backward neighbor multiplies by the edge density
  ``d_avg / n`` (the probability a random pair is adjacent);
* return the argmin (and, for benches, the argmax — the "worst order").

GraphPi additionally co-optimizes the symmetry-breaking restriction set
with the order; we reuse the GraphZero-style restrictions from
:mod:`repro.matching.pattern` and account for them as a constant-factor
reduction ``1/|Aut(P)|`` on the final level, which preserves the
relative ranking of orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from ..graph.csr import Graph
from .pattern import PatternGraph, automorphisms, symmetry_breaking_restrictions

__all__ = ["GraphStats", "MatchingPlan", "Planner", "connected_orders"]


@dataclass
class GraphStats:
    """Data-graph statistics that drive the cost model."""

    num_vertices: int
    avg_degree: float
    max_degree: int

    @staticmethod
    def of(graph: Graph) -> "GraphStats":
        degs = graph.degrees()
        return GraphStats(
            num_vertices=graph.num_vertices,
            avg_degree=float(degs.mean()) if degs.size else 0.0,
            max_degree=int(degs.max()) if degs.size else 0,
        )


@dataclass
class MatchingPlan:
    """A chosen order plus its restrictions and estimated cost."""

    order: Tuple[int, ...]
    restrictions: Tuple[Tuple[int, int], ...]
    estimated_cost: float


def connected_orders(pattern: PatternGraph) -> List[Tuple[int, ...]]:
    """All orders whose every prefix induces a connected subpattern."""
    orders = []
    for perm in permutations(range(pattern.n)):
        ok = True
        for i in range(1, pattern.n):
            if not any(perm[j] in pattern.adj[perm[i]] for j in range(i)):
                ok = False
                break
        if ok:
            orders.append(perm)
    return orders


class Planner:
    """Cost-based matching-order selection."""

    def __init__(self, stats: GraphStats) -> None:
        self.stats = stats

    def estimate_order_cost(self, pattern: PatternGraph, order: Sequence[int]) -> float:
        """Estimated search-tree node count for ``order``.

        A per-level cardinality product: level 0 contributes ``n``
        candidates; a level with ``b >= 1`` backward neighbors contributes
        ``d_avg * density^(b-1)`` candidates (one adjacency list, then
        each extra constraint thins by the edge density).  The cost sums
        the partial products — the number of partial embeddings the
        backtracking matcher touches.
        """
        n = max(self.stats.num_vertices, 1)
        d = max(self.stats.avg_degree, 1e-9)
        density = min(d / n, 1.0)
        total = 0.0
        level_size = 1.0
        placed: List[int] = []
        for pv in order:
            backward = sum(1 for q in placed if q in pattern.adj[pv])
            if backward == 0:
                fanout = float(n)
            else:
                fanout = d * (density ** (backward - 1))
            level_size *= max(fanout, 1e-12)
            total += level_size
            placed.append(pv)
        return total

    def plan(self, pattern: PatternGraph) -> MatchingPlan:
        """Best connected order under the cost model."""
        return self._extreme(pattern, best=True)

    def worst_plan(self, pattern: PatternGraph) -> MatchingPlan:
        """Worst connected order — the strawman benches compare against."""
        return self._extreme(pattern, best=False)

    def _extreme(self, pattern: PatternGraph, best: bool) -> MatchingPlan:
        orders = connected_orders(pattern)
        if not orders:
            raise ValueError("pattern has no connected order (is it connected?)")
        scored = [(self.estimate_order_cost(pattern, o), o) for o in orders]
        cost, order = min(scored) if best else max(scored)
        num_aut = len(automorphisms(pattern))
        return MatchingPlan(
            order=order,
            restrictions=tuple(symmetry_breaking_restrictions(pattern)),
            estimated_cost=cost / num_aut,
        )
