"""Subgraph matching/enumeration: patterns, plans, codegen, cliques, triangles."""

from .backtrack import MatchStats, count_matches, find_matches, match
from .cliques import (
    count_k_cliques,
    k_cliques,
    maximal_cliques,
    maximal_quasi_cliques,
    maximum_clique,
)
from .codegen import compile_matcher, compiled_count, generate_source, prepare_adjacency
from .pattern import (
    PatternGraph,
    automorphisms,
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    house_pattern,
    path_pattern,
    star_pattern,
    symmetry_breaking_restrictions,
    tailed_triangle_pattern,
    triangle_pattern,
)
from .plan import GraphStats, MatchingPlan, Planner, connected_orders
from .densest import densest_subgraph, density
from .filtering import FilterStats, build_candidates, filtered_match
from .triangles import triangle_count, triangle_count_with_work, triangle_list
from .truss import k_truss, max_truss, truss_numbers

__all__ = [
    "MatchStats",
    "match",
    "count_matches",
    "find_matches",
    "PatternGraph",
    "automorphisms",
    "symmetry_breaking_restrictions",
    "triangle_pattern",
    "path_pattern",
    "cycle_pattern",
    "clique_pattern",
    "star_pattern",
    "tailed_triangle_pattern",
    "diamond_pattern",
    "house_pattern",
    "GraphStats",
    "MatchingPlan",
    "Planner",
    "connected_orders",
    "compile_matcher",
    "compiled_count",
    "generate_source",
    "prepare_adjacency",
    "maximal_cliques",
    "maximum_clique",
    "k_cliques",
    "count_k_cliques",
    "maximal_quasi_cliques",
    "triangle_count",
    "triangle_count_with_work",
    "triangle_list",
    "truss_numbers",
    "k_truss",
    "max_truss",
    "densest_subgraph",
    "density",
    "FilterStats",
    "build_candidates",
    "filtered_match",
]
