"""k-truss decomposition.

Trusses are the other canonical dense-substructure workload of the
TLAG/G-thinker ecosystem (alongside cliques and quasi-cliques): the
k-truss of a graph is its maximal subgraph in which every edge lies on
at least ``k - 2`` triangles.  Unlike cliques, the decomposition is
polynomial — the standard peeling algorithm below — which makes it the
"cheap" structural primitive pipelines use for community seeding.

* :func:`truss_numbers` — the trussness of every edge (the largest k
  whose k-truss contains it), by iterative support peeling;
* :func:`k_truss` — the edge set of the k-truss;
* :func:`max_truss` — the largest k with a non-empty k-truss.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..graph.csr import Graph

__all__ = ["truss_numbers", "k_truss", "max_truss"]


def _edge_key(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def truss_numbers(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Trussness of every edge by support peeling.

    An edge's support is the number of triangles through it in the
    *remaining* graph; peeling removes minimum-support edges, assigning
    trussness ``support + 2`` monotonically (Wang & Cheng's algorithm).
    """
    if graph.directed:
        raise ValueError("truss decomposition is defined for undirected graphs")
    adj: List[Set[int]] = [
        set(int(w) for w in graph.neighbors(v)) for v in graph.vertices()
    ]
    support: Dict[Tuple[int, int], int] = {}
    for u, v in graph.edges():
        support[_edge_key(u, v)] = len(adj[u] & adj[v])

    trussness: Dict[Tuple[int, int], int] = {}
    remaining = set(support)
    current_k = 2
    while remaining:
        # Peel all edges whose support cannot reach the next level.
        min_support = min(support[e] for e in remaining)
        current_k = max(current_k, min_support + 2)
        peel = [e for e in remaining if support[e] <= current_k - 2]
        while peel:
            edge = peel.pop()
            if edge not in remaining:
                continue
            remaining.discard(edge)
            trussness[edge] = current_k
            u, v = edge
            # Removing (u, v) lowers the support of edges in its triangles.
            for w in adj[u] & adj[v]:
                for other in (_edge_key(u, w), _edge_key(v, w)):
                    if other in remaining:
                        support[other] -= 1
                        if support[other] <= current_k - 2:
                            peel.append(other)
            adj[u].discard(v)
            adj[v].discard(u)
    return trussness


def k_truss(graph: Graph, k: int) -> Set[Tuple[int, int]]:
    """Edges of the k-truss (every edge in >= k - 2 triangles within it)."""
    if k < 2:
        raise ValueError("k must be >= 2")
    return {e for e, t in truss_numbers(graph).items() if t >= k}


def max_truss(graph: Graph) -> int:
    """The largest k with a non-empty k-truss (2 for triangle-free graphs)."""
    numbers = truss_numbers(graph)
    return max(numbers.values()) if numbers else 2
