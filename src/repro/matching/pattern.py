"""Pattern graphs, automorphisms, and symmetry-breaking restrictions.

Subgraph enumeration engines must not report the same embedding once per
pattern automorphism: a triangle query would otherwise return every
triangle 6 times.  AutoMine [26], GraphPi [33] and GraphZero [25] solve
this with *restrictions*: a set of ``id(pattern_u) < id(pattern_v)``
constraints on the matched data-vertex ids, derived from the pattern's
automorphism group, that exactly one member of each duplicate class
satisfies.

:func:`automorphisms` computes the group by backtracking (patterns are
small); :func:`symmetry_breaking_restrictions` derives the constraints
with the classic stabilizer-chain construction:

    while the group is non-trivial:
        pick the smallest vertex u moved by any automorphism;
        emit ``u < sigma(u)`` for every automorphism sigma moving u;
        continue with the stabilizer of u.

Tests verify the defining property on random graphs: the number of
embeddings satisfying the restrictions times ``|Aut(P)|`` equals the
total embedding count.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from ..graph.csr import Graph

__all__ = [
    "PatternGraph",
    "automorphisms",
    "default_order",
    "symmetry_breaking_restrictions",
    "triangle_pattern",
    "path_pattern",
    "cycle_pattern",
    "clique_pattern",
    "star_pattern",
    "tailed_triangle_pattern",
    "diamond_pattern",
    "house_pattern",
]


class PatternGraph:
    """A small query graph.

    Wraps a :class:`~repro.graph.csr.Graph` with the convenience lookups
    the planner and matcher need (adjacency sets, labels).  Patterns must
    be connected and undirected.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.directed:
            raise ValueError("patterns must be undirected")
        self.graph = graph
        self.n = graph.num_vertices
        self.adj: List[FrozenSet[int]] = [
            frozenset(int(w) for w in graph.neighbors(v)) for v in range(self.n)
        ]
        if self.n > 1 and not self._connected():
            raise ValueError("patterns must be connected")

    def _connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for w in self.adj[u]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == self.n

    @staticmethod
    def from_edges(
        edges: Sequence[Tuple[int, int]],
        vertex_labels: Sequence[int] = None,
    ) -> "PatternGraph":
        n = max(max(u, v) for u, v in edges) + 1
        return PatternGraph(
            Graph.from_edges(edges, num_vertices=n, vertex_labels=vertex_labels)
        )

    def label(self, v: int) -> int:
        return self.graph.vertex_label(v)

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def degree(self, v: int) -> int:
        return len(self.adj[v])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PatternGraph(n={self.n}, m={self.num_edges})"


def default_order(pattern: PatternGraph, start: int = 0) -> List[int]:
    """A prefix-connected matching order (BFS from ``start``).

    Any connected pattern admits one; matchers use this when the caller
    does not supply a planned order.
    """
    order = [start]
    seen = {start}
    while len(order) < pattern.n:
        for v in range(pattern.n):
            if v not in seen and any(q in seen for q in pattern.adj[v]):
                order.append(v)
                seen.add(v)
                break
    return order


def automorphisms(pattern: PatternGraph) -> List[Tuple[int, ...]]:
    """All automorphisms of the pattern, as permutation tuples.

    Backtracking over degree- and label-compatible assignments; patterns
    in this library are tiny (<= ~8 vertices), so this is instant.
    """
    n = pattern.n
    degrees = [pattern.degree(v) for v in range(n)]
    labels = [pattern.label(v) for v in range(n)]
    perms: List[Tuple[int, ...]] = []
    assignment = [-1] * n
    used = [False] * n

    def backtrack(u: int) -> None:
        if u == n:
            perms.append(tuple(assignment))
            return
        for candidate in range(n):
            if used[candidate]:
                continue
            if degrees[candidate] != degrees[u] or labels[candidate] != labels[u]:
                continue
            ok = True
            for prev in range(u):
                prev_adj = prev in pattern.adj[u]
                cand_adj = assignment[prev] in pattern.adj[candidate]
                if prev_adj != cand_adj:
                    ok = False
                    break
            if ok:
                assignment[u] = candidate
                used[candidate] = True
                backtrack(u + 1)
                used[candidate] = False
                assignment[u] = -1

    backtrack(0)
    return perms


def symmetry_breaking_restrictions(
    pattern: PatternGraph,
) -> List[Tuple[int, int]]:
    """Restrictions ``(u, v)`` meaning "data id of u < data id of v".

    Exactly one embedding per automorphism class satisfies all returned
    restrictions (the GraphZero conditional-rules construction).
    """
    group = automorphisms(pattern)
    restrictions: List[Tuple[int, int]] = []
    current: List[Tuple[int, ...]] = group
    while len(current) > 1:
        moved = None
        for u in range(pattern.n):
            if any(perm[u] != u for perm in current):
                moved = u
                break
        if moved is None:  # only the identity remains
            break
        for perm in current:
            if perm[moved] != moved:
                restrictions.append((moved, perm[moved]))
        current = [perm for perm in current if perm[moved] == moved]
    # Deduplicate while preserving order.
    seen: Set[Tuple[int, int]] = set()
    unique = []
    for r in restrictions:
        if r not in seen:
            seen.add(r)
            unique.append(r)
    return unique


# ----------------------------------------------------------------------
# Common query patterns used by the benches and examples
# ----------------------------------------------------------------------


def triangle_pattern() -> PatternGraph:
    """K3."""
    return PatternGraph.from_edges([(0, 1), (1, 2), (0, 2)])


def path_pattern(k: int) -> PatternGraph:
    """Path on ``k`` vertices."""
    return PatternGraph.from_edges([(i, i + 1) for i in range(k - 1)])


def cycle_pattern(k: int) -> PatternGraph:
    """Cycle on ``k`` vertices."""
    return PatternGraph.from_edges([(i, (i + 1) % k) for i in range(k)])


def clique_pattern(k: int) -> PatternGraph:
    """K_k."""
    return PatternGraph.from_edges(
        [(i, j) for i in range(k) for j in range(i + 1, k)]
    )


def star_pattern(k: int) -> PatternGraph:
    """K_{1,k}: hub 0 with k leaves."""
    return PatternGraph.from_edges([(0, i) for i in range(1, k + 1)])


def tailed_triangle_pattern() -> PatternGraph:
    """Triangle with a pendant vertex."""
    return PatternGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])


def diamond_pattern() -> PatternGraph:
    """K4 minus one edge."""
    return PatternGraph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


def house_pattern() -> PatternGraph:
    """4-cycle with a roof triangle (5 vertices, 6 edges)."""
    return PatternGraph.from_edges(
        [(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)]
    )
