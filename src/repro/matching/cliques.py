"""Clique algorithms: the killer applications of the TLAG systems.

G-thinker's flagship workloads are maximal clique enumeration and
maximal quasi-clique mining [14, 20]; k-clique listing is the standard
pattern workload of AutoMine/Pangolin-class systems.  This module holds
the serial kernels; :mod:`repro.tlag.programs` wraps them as
:class:`~repro.tlag.task.TaskProgram` for the parallel engine.

* :func:`maximal_cliques` — Bron–Kerbosch with Tomita pivoting;
* :func:`maximum_clique` — branch-and-bound with a greedy-coloring
  upper bound;
* :func:`k_cliques` — degree-ordered DFS listing (Chiba–Nishizeki
  style);
* :func:`maximal_quasi_cliques` — gamma-quasi-clique enumeration with
  the degree-based pruning used by [14] (every member of a
  gamma-quasi-clique has internal degree >= gamma * (|S| - 1)).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

import numpy as np

from ..graph.csr import Graph

__all__ = [
    "maximal_cliques",
    "maximum_clique",
    "k_cliques",
    "count_k_cliques",
    "maximal_quasi_cliques",
]


def _adjacency_sets(graph: Graph) -> List[Set[int]]:
    return [set(int(w) for w in graph.neighbors(v)) for v in graph.vertices()]


def maximal_cliques(graph: Graph) -> Iterator[Tuple[int, ...]]:
    """Bron–Kerbosch with pivoting; yields each maximal clique once."""
    adj = _adjacency_sets(graph)

    def expand(r: List[int], p: Set[int], x: Set[int]) -> Iterator[Tuple[int, ...]]:
        if not p and not x:
            yield tuple(sorted(r))
            return
        # Tomita pivot: the vertex of P ∪ X with most neighbors in P.
        pivot = max(p | x, key=lambda u: len(adj[u] & p))
        for v in sorted(p - adj[pivot]):
            yield from expand(r + [v], p & adj[v], x & adj[v])
            p.remove(v)
            x.add(v)

    yield from expand([], set(graph.vertices()), set())


def maximum_clique(graph: Graph) -> Tuple[int, ...]:
    """A maximum clique, by branch-and-bound with greedy coloring bounds."""
    adj = _adjacency_sets(graph)
    # Order vertices by degeneracy-ish heuristic: ascending degree.
    best: List[int] = []

    def coloring_bound(candidates: List[int]) -> int:
        """Greedy coloring of the candidate set; colors used bounds clique size."""
        colors: dict = {}
        for v in candidates:
            taken = {colors[w] for w in adj[v] if w in colors}
            c = 0
            while c in taken:
                c += 1
            colors[v] = c
        return 1 + max(colors.values()) if colors else 0

    def expand(r: List[int], candidates: List[int]) -> None:
        nonlocal best
        if not candidates:
            if len(r) > len(best):
                best = r[:]
            return
        if len(r) + coloring_bound(candidates) <= len(best):
            return
        for i, v in enumerate(candidates):
            if len(r) + len(candidates) - i <= len(best):
                return
            expand(r + [v], [w for w in candidates[i + 1:] if w in adj[v]])

    order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    expand([], order)
    return tuple(sorted(best))


def k_cliques(graph: Graph, k: int) -> Iterator[Tuple[int, ...]]:
    """List all k-cliques once, via degree-ordered DFS."""
    if k < 1:
        return
    if k == 1:
        for v in graph.vertices():
            yield (v,)
        return
    oriented = graph.orient_by_degree()
    out = [set(int(w) for w in oriented.neighbors(v)) for v in oriented.vertices()]

    def extend(clique: List[int], candidates: Set[int]) -> Iterator[Tuple[int, ...]]:
        if len(clique) == k:
            yield tuple(sorted(clique))
            return
        for v in sorted(candidates):
            yield from extend(clique + [v], candidates & out[v])

    for v in graph.vertices():
        yield from extend([v], set(out[v]))


def count_k_cliques(graph: Graph, k: int) -> int:
    """Number of k-cliques (counting via :func:`k_cliques`)."""
    return sum(1 for _ in k_cliques(graph, k))


def maximal_quasi_cliques(
    graph: Graph,
    gamma: float,
    min_size: int = 3,
    max_results: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Maximal gamma-quasi-cliques of size >= ``min_size``.

    A vertex set S is a gamma-quasi-clique when every member has at
    least ``ceil(gamma * (|S| - 1))`` neighbors inside S.  Enumeration
    follows the set-enumeration tree with the degree pruning of [14]:
    a candidate can only ever help if its degree into S ∪ candidates
    can still reach the threshold at the final size.

    Quasi-cliques are not hereditary, so maximality is verified by
    attempted extension with every outside vertex.  Exponential in the
    worst case — intended for the small planted benches, exactly the
    regime [14] parallelizes with G-thinker.
    """
    adj = _adjacency_sets(graph)
    n = graph.num_vertices
    results: List[Tuple[int, ...]] = []
    seen: Set[Tuple[int, ...]] = set()

    def is_quasi_clique(s: Set[int]) -> bool:
        if len(s) < 2:
            return True
        need = int(np.ceil(gamma * (len(s) - 1)))
        return all(len(adj[v] & s) >= need for v in s)

    def is_maximal(s: Set[int]) -> bool:
        return not any(
            v not in s and is_quasi_clique(s | {v}) for v in range(n)
        )

    def expand(s: Set[int], candidates: List[int]) -> None:
        if max_results is not None and len(results) >= max_results:
            return
        if len(s) >= min_size and is_quasi_clique(s) and is_maximal(s):
            key = tuple(sorted(s))
            if key not in seen:
                seen.add(key)
                results.append(key)
        for i, v in enumerate(candidates):
            new_s = s | {v}
            # Prune: v must connect to enough of the current set that the
            # quasi-clique condition is still reachable.
            if len(new_s) >= 2:
                inside = len(adj[v] & s)
                # v's internal degree can grow by at most the remaining
                # candidates; the requirement grows with the set.
                remaining = len(candidates) - i - 1
                final_possible = inside + remaining
                need_now = int(np.ceil(gamma * (len(new_s) - 1)))
                if final_possible < need_now:
                    continue
            # Candidates stay unfiltered by adjacency: a quasi-clique's
            # ascending-id prefix need not be connected, so any
            # connectivity filter here would lose maximal results.
            expand(new_s, candidates[i + 1:])

    order = sorted(range(n))
    expand(set(), order)
    return results
