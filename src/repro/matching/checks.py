"""Differential checks for subgraph matching.

The interpreted backtracking matcher is the reference; the generated-
and-compiled matcher (codegen), the TLAV message-passing triangle
counter, and the enumeration path must all agree exactly — pattern
counting is deterministic integer work, so every relation here is
bit-identical.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..check.registry import BIT_IDENTICAL, pair
from ..check.invariants import same_values
from ..check.workloads import gen_graph_params, make_graph
from ..tlav.algorithms import triangle_count_tlav
from .backtrack import count_matches
from .codegen import compiled_count
from .pattern import (
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    house_pattern,
    path_pattern,
    star_pattern,
    tailed_triangle_pattern,
    triangle_pattern,
)
from .triangles import triangle_count, triangle_list

PATTERNS = (
    ("triangle", triangle_pattern),
    ("path3", lambda: path_pattern(3)),
    ("star3", lambda: star_pattern(3)),
    ("cycle4", lambda: cycle_pattern(4)),
    ("diamond", diamond_pattern),
    ("tailed_triangle", tailed_triangle_pattern),
    ("house", house_pattern),
    ("clique4", lambda: clique_pattern(4)),
)


def _gen_pattern(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    params["pattern"] = int(rng.integers(len(PATTERNS)))
    return params


@pair(
    "matching.patterns.backtrack_vs_codegen", "matching", BIT_IDENTICAL,
    gen=_gen_pattern, floors={"n": 4, "pattern": 0},
    description="The compiled matcher must count exactly what the "
    "interpreted backtracker counts, for every pattern in the zoo.",
)
def _check_codegen(params: Dict) -> List[str]:
    graph = make_graph(params)
    name, build = PATTERNS[int(params["pattern"]) % len(PATTERNS)]
    pattern = build()
    return same_values(
        count_matches(graph, pattern),
        compiled_count(graph, pattern),
        f"count[{name}]",
    )


def _gen_graph(rng: np.random.Generator) -> Dict:
    return gen_graph_params(rng, n_range=(8, 64))


@pair(
    "matching.triangles.serial_vs_tlav", "matching", BIT_IDENTICAL,
    gen=_gen_graph, floors={"n": 4},
    description="The oriented-intersection triangle counter and the "
    "TLAV message-passing counter are independent algorithms for the "
    "same integer.",
)
def _check_tlav_triangles(params: Dict) -> List[str]:
    graph = make_graph(params)
    count, _messages = triangle_count_tlav(graph)
    return same_values(triangle_count(graph), count, "triangles")


@pair(
    "matching.triangles.count_vs_list", "matching", BIT_IDENTICAL,
    gen=_gen_graph, floors={"n": 4},
    description="triangle_count equals the length of triangle_list, "
    "and every listed triple is a real oriented triangle.",
)
def _check_count_vs_list(params: Dict) -> List[str]:
    graph = make_graph(params)
    listed = list(triangle_list(graph))
    out = same_values(triangle_count(graph), len(listed), "count")
    if len(set(listed)) != len(listed):
        out.append("triangles: duplicate triples in triangle_list")
    for (u, v, w) in listed:
        if not (
            graph.has_edge(u, v) and graph.has_edge(v, w) and graph.has_edge(u, w)
        ):
            out.append(f"triangles: listed non-triangle ({u}, {v}, {w})")
            break
    return out
