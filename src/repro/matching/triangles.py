"""Serial triangle counting/listing (the Chu & Cheng [9] argument).

The tutorial's Section 1 cites triangle counting as the canonical case
where a well-engineered serial algorithm embarrasses massive
parallelism: Chu & Cheng's external-memory listing took 0.5 minutes
where the state-of-the-art MapReduce job took 5.33 minutes on 1636
machines.  The in-memory core of that algorithm is degree-ordered
adjacency intersection:

1. orient each edge from the lower-(degree, id) endpoint to the higher;
2. for every directed edge ``u -> v``, intersect the out-neighborhoods
   of ``u`` and ``v``; every common vertex closes one triangle, counted
   exactly once.

Total work is ``sum over edges of min-degree`` = O(m^1.5) worst case and
near-linear on power-law graphs.  Bench C1 compares this against the
TLAV triangle program's message volume.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..graph.csr import Graph

__all__ = ["triangle_count", "triangle_list", "triangle_count_with_work"]


def triangle_count(graph: Graph) -> int:
    """Number of distinct triangles."""
    count, _ = triangle_count_with_work(graph)
    return count


def triangle_count_with_work(graph: Graph) -> Tuple[int, int]:
    """Count triangles; also return the intersection work performed.

    The second component counts adjacency-entry comparisons — the unit
    bench C1 uses to compare against TLAV message counts.
    """
    oriented = graph.orient_by_degree()
    count = 0
    work = 0
    for u in oriented.vertices():
        out_u = oriented.neighbors(u)
        for v in out_u:
            out_v = oriented.neighbors(int(v))
            i = j = 0
            while i < out_u.size and j < out_v.size:
                work += 1
                a, b = out_u[i], out_v[j]
                if a == b:
                    count += 1
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
    return count, work


def triangle_list(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Yield each triangle once as a sorted vertex triple."""
    oriented = graph.orient_by_degree()
    for u in oriented.vertices():
        out_u = oriented.neighbors(u)
        for v in out_u:
            v = int(v)
            out_v = oriented.neighbors(v)
            i = j = 0
            while i < out_u.size and j < out_v.size:
                a, b = int(out_u[i]), int(out_v[j])
                if a == b:
                    yield tuple(sorted((u, v, a)))
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
