"""Triangle counting/listing (the Chu & Cheng [9] argument).

The tutorial's Section 1 cites triangle counting as the canonical case
where a well-engineered serial algorithm embarrasses massive
parallelism: Chu & Cheng's external-memory listing took 0.5 minutes
where the state-of-the-art MapReduce job took 5.33 minutes on 1636
machines.  The in-memory core of that algorithm is degree-ordered
adjacency intersection:

1. orient each edge from the lower-(degree, id) endpoint to the higher;
2. for every directed edge ``u -> v``, intersect the out-neighborhoods
   of ``u`` and ``v``; every common vertex closes one triangle, counted
   exactly once.

Total work is ``sum over edges of min-degree`` = O(m^1.5) worst case and
near-linear on power-law graphs.  Bench C1 compares this against the
TLAV triangle program's message volume.

Two execution paths:

* :func:`triangle_count` — the hot path: per source vertex, gather the
  concatenated out-neighborhoods of all out-neighbors and test them
  against the source's list with one batched binary search
  (:mod:`repro.graph.kernels`).  Pass an ``executor`` to fan the source
  range out across cores; orientation happens once in the caller and the
  oriented CSR is what workers share.
* :func:`triangle_count_with_work` — the *instrumented* merge-join that
  counts every adjacency comparison; bench C1 needs the comparison count
  as its work unit, so this path intentionally stays element-at-a-time.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.kernels import expand_frontier, in_sorted
from ..graph.store.handle import as_handle, resolve_graph_argument

__all__ = ["triangle_count", "triangle_list", "triangle_count_with_work"]


def _count_span_task(oriented: Graph, span: Tuple[int, int]) -> int:
    """Triangles whose lowest-(degree, id) corner lies in ``[lo, hi)``."""
    lo, hi = span
    indptr, indices = oriented.indptr, oriented.indices
    total = 0
    for u in range(lo, hi):
        out_u = indices[indptr[u]: indptr[u + 1]]
        if out_u.size < 2:
            continue
        # Second hop: every out-neighbor of every v in out_u, batched.
        _, second = expand_frontier(indptr, indices, out_u)
        total += int(np.count_nonzero(in_sorted(out_u, second)))
    return total


def triangle_count(
    graph_or_handle=None,
    executor: Optional["ParallelExecutor"] = None,
    *,
    graph: Optional[Graph] = None,
) -> int:
    """Number of distinct triangles.

    With an ``executor`` the oriented source range is chunked and counted
    on real cores; every triangle is counted at exactly one source, so
    chunk sums equal the serial count under any backend.  Orientation
    reorders the whole CSR, so a stored handle is materialized first.
    """
    handle = as_handle(
        resolve_graph_argument("triangle_count", graph_or_handle, graph)
    )
    oriented = handle.to_graph().orient_by_degree()
    n = oriented.num_vertices
    if executor is None:
        return _count_span_task(oriented, (0, n))
    return sum(executor.map_graph(_count_span_task, oriented, executor.spans(n)))


def triangle_count_with_work(graph: Graph) -> Tuple[int, int]:
    """Count triangles; also return the intersection work performed.

    The second component counts adjacency-entry comparisons — the unit
    bench C1 uses to compare against TLAV message counts.  (Kept as an
    explicit merge join: the comparison count *is* the measurement; the
    fast path lives in :func:`triangle_count`.)
    """
    oriented = graph.orient_by_degree()
    count = 0
    work = 0
    for u in oriented.vertices():
        out_u = oriented.neighbors(u)
        for v in out_u:
            out_v = oriented.neighbors(int(v))
            i = j = 0
            while i < out_u.size and j < out_v.size:
                work += 1
                a, b = out_u[i], out_v[j]
                if a == b:
                    count += 1
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
    return count, work


def triangle_list(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Yield each triangle once as a sorted vertex triple."""
    oriented = graph.orient_by_degree()
    for u in oriented.vertices():
        out_u = oriented.neighbors(u)
        for v in out_u:
            v = int(v)
            out_v = oriented.neighbors(v)
            i = j = 0
            while i < out_u.size and j < out_v.size:
                a, b = int(out_u[i]), int(out_v[j])
                if a == b:
                    yield tuple(sorted((u, v, a)))
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
