"""Generic backtracking subgraph matcher.

The common kernel behind every DFS-style system in Table 1 (G-thinker,
Fractal, STMatch, T-DFS): extend a partial embedding one pattern vertex
at a time along a *matching order*, computing the candidate set of each
step by intersecting the adjacency lists of already-matched neighbors
(plus label and injectivity filters and the symmetry-breaking
restrictions of :mod:`repro.matching.pattern`).

The matcher is deliberately order-parameterized: the cost difference
between orders is what AutoMine/GraphPi/GraphZero exploit, and bench C3
measures it by running this same kernel under different plans.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.kernels import in_sorted, intersect_multi
from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import StatsViewMixin, merge_counters
from .pattern import PatternGraph, default_order, symmetry_breaking_restrictions

__all__ = ["MatchStats", "match", "count_matches", "find_matches"]


class MatchStats(StatsViewMixin):
    """Work counters for one matching run (a :class:`~repro.obs.StatsView`).

    Parallel runs keep one instance per worker and fold them with
    :meth:`merge`; all four counters are additive, so merged stats equal
    what a serial run over the same roots would have recorded.
    """

    __slots__ = ("embeddings", "nodes_visited", "intersections", "candidates_scanned")

    def __init__(self) -> None:
        self.embeddings = 0
        self.nodes_visited = 0
        self.intersections = 0
        self.candidates_scanned = 0

    def merge(self, other: "MatchStats") -> "MatchStats":
        """Fold another worker's counters into this one (in place)."""
        return merge_counters(
            self,
            other,
            sum_fields=(
                "embeddings",
                "nodes_visited",
                "intersections",
                "candidates_scanned",
            ),
        )

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "embeddings": self.embeddings,
            "nodes_visited": self.nodes_visited,
            "intersections": self.intersections,
            "candidates_scanned": self.candidates_scanned,
        }


def _validate_order(pattern: PatternGraph, order: Sequence[int]) -> List[int]:
    order = list(order)
    if sorted(order) != list(range(pattern.n)):
        raise ValueError("order must be a permutation of the pattern vertices")
    for i in range(1, len(order)):
        if not any(order[j] in pattern.adj[order[i]] for j in range(i)):
            raise ValueError("order must keep the matched prefix connected")
    return order


def match(
    graph: Graph,
    pattern: PatternGraph,
    order: Optional[Sequence[int]] = None,
    restrictions: Optional[Sequence[Tuple[int, int]]] = None,
    on_match: Optional[Callable[[Tuple[int, ...]], None]] = None,
    stats: Optional[MatchStats] = None,
    anchor: Optional[Tuple[int, int]] = None,
    allowed: Optional[Sequence[set]] = None,
    roots: Optional[Sequence[int]] = None,
) -> int:
    """Enumerate embeddings of ``pattern`` in ``graph``.

    Parameters
    ----------
    order:
        Matching order (a prefix-connected permutation of pattern
        vertices); defaults to a BFS order from pattern vertex 0.
    restrictions:
        ``(u, v)`` pairs enforcing ``data_id(u) < data_id(v)``.  Pass the
        output of :func:`symmetry_breaking_restrictions` to count each
        subgraph instance exactly once; pass ``[]`` to enumerate every
        automorphic image (the duplicated regime bench C3 contrasts).
        ``None`` means "derive them from the pattern".
    on_match:
        Callback per embedding (mapping pattern vertex -> data vertex, in
        pattern-vertex index order).  When ``None``, embeddings are only
        counted — no materialization, the G-thinker property.
    anchor:
        Optional ``(pattern_vertex, data_vertex)`` pin, used by the task
        engine to spawn one task per candidate of the first order vertex.
    allowed:
        Optional per-pattern-vertex candidate sets (indexed by pattern
        vertex id); a step only considers data vertices in the set.
        Accepts the sorted arrays :mod:`repro.matching.filtering`
        produces or any iterable of vertex ids; membership is tested
        with one batched ``searchsorted`` per step, not per element.
    roots:
        Optional data vertices to consider for the *first* order vertex
        (default: all).  Embeddings partition exactly by their root, so
        disjoint root chunks sum to the full count — the task fan-out
        :func:`count_matches` uses for multicore execution.

    Returns the embedding count.
    """
    if order is None:
        order = default_order(pattern)
    order = _validate_order(pattern, order)
    if restrictions is None:
        restrictions = symmetry_breaking_restrictions(pattern)
    stats = stats if stats is not None else MatchStats()

    n = pattern.n
    # position_of[pattern_vertex] = index in order
    position_of = {pv: i for i, pv in enumerate(order)}
    # For each step i, the earlier steps whose pattern vertex neighbors order[i].
    backward_neighbors: List[List[int]] = []
    for i, pv in enumerate(order):
        backward_neighbors.append(
            [position_of[q] for q in pattern.adj[pv] if position_of[q] < i]
        )
    # A restriction (u, v) means data(u) < data(v); check it at the later
    # of the two steps, when both endpoints are known.
    lt_at_step: List[List[int]] = [[] for _ in range(n)]  # upper bounds
    gt_at_step: List[List[int]] = [[] for _ in range(n)]  # lower bounds
    for u, v in restrictions:
        iu, iv = position_of[u], position_of[v]
        if iu < iv:
            # at step iv require data(order[iv]) > data at step iu
            gt_at_step[iv].append(iu)
        else:
            # at step iu require data(order[iu]) < data at step iv
            lt_at_step[iu].append(iv)

    labels = graph.vertex_labels
    check_edge_labels = (
        pattern.graph.edge_labels is not None and graph.edge_labels is not None
    )
    # Normalize the candidate sets once into sorted arrays so every step
    # can run one batched binary-search membership test instead of a
    # per-element ``x in allowed[pv]`` probe (the filtering module hands
    # these over pre-sorted; sets/lists are converted here).
    allowed_arrays: Optional[List[np.ndarray]] = None
    if allowed is not None:
        allowed_arrays = []
        for entry in allowed:
            arr = np.asarray(
                entry if isinstance(entry, np.ndarray) else list(entry),
                dtype=np.int64,
            )
            if arr.size > 1 and np.any(np.diff(arr) < 0):
                arr = np.sort(arr)
            allowed_arrays.append(arr)
    embedding = [0] * n  # indexed by step
    matched_set: set = set()

    def candidates(step: int) -> Iterator[int]:
        pv = order[step]
        want_label = pattern.label(pv)
        back = backward_neighbors[step]
        if not back:
            # Unconstrained start vertex: scan the root set (all data
            # vertices, unless a parallel fan-out pinned a chunk).
            if roots is None:
                base = np.arange(graph.num_vertices, dtype=np.int64)
            elif isinstance(roots, range):
                base = np.arange(roots.start, roots.stop, dtype=np.int64)
            else:
                base = np.asarray(list(roots), dtype=np.int64)
        else:
            # Intersect adjacency lists of the already-matched neighbors,
            # smallest list first — one batched binary search per list
            # instead of a per-element probe (the merge-join kernel).
            lists = [graph.neighbors(embedding[j]) for j in back]
            stats.intersections += len(lists) - 1 if len(lists) > 1 else 0
            base = intersect_multi(lists)
        # Cheap filters run batched over the whole candidate array:
        # symmetry bounds, candidate-set membership, and vertex labels
        # are each one vectorized pass.  ``candidates_scanned`` counts
        # the pre-filter batch, matching the former per-element scan.
        stats.candidates_scanned += int(base.size)
        if base.size:
            lo = max((embedding[j] for j in gt_at_step[step]), default=-1)
            hi = min(
                (embedding[j] for j in lt_at_step[step]), default=graph.num_vertices
            )
            mask = (base > lo) & (base < hi)
            if allowed_arrays is not None:
                mask &= in_sorted(allowed_arrays[pv], base)
            if labels is not None:
                mask &= labels[base] == want_label
            base = base[mask]
        for x in base:
            x = int(x)
            if x in matched_set:
                continue
            if check_edge_labels:
                ok = True
                for j in backward_neighbors[step]:
                    want_edge = pattern.graph.edge_label(order[step], order[j])
                    if graph.edge_label(embedding[j], x) != want_edge:
                        ok = False
                        break
                if not ok:
                    continue
            yield x

    start_step = 0
    pinned: Optional[int] = None
    if anchor is not None:
        pv, dv = anchor
        if position_of[pv] != 0:
            raise ValueError("anchor must pin the first vertex of the order")
        pinned = int(dv)

    def extend(step: int) -> None:
        if step == n:
            stats.embeddings += 1
            if on_match is not None:
                by_pattern_vertex = [0] * n
                for i, pv in enumerate(order):
                    by_pattern_vertex[pv] = embedding[i]
                on_match(tuple(by_pattern_vertex))
            return
        if step == 0 and pinned is not None:
            want = pattern.label(order[0])
            ok = labels is None or int(labels[pinned]) == want
            candidate_source: Iterator[int] = iter([pinned] if ok else [])
        else:
            candidate_source = candidates(step)
        for x in candidate_source:
            stats.nodes_visited += 1
            embedding[step] = x
            matched_set.add(x)
            extend(step + 1)
            matched_set.discard(x)

    extend(start_step)
    return stats.embeddings


def _count_roots_task(graph: Graph, payload: Tuple) -> MatchStats:
    """Process-pool task: count embeddings rooted in ``[lo, hi)``.

    Module-level so the process backend can pickle it by reference; the
    graph arrives through the executor (shared memory, not the payload).
    """
    pattern, order, restrictions, lo, hi = payload
    stats = MatchStats()
    match(
        graph,
        pattern,
        order=order,
        restrictions=restrictions,
        stats=stats,
        roots=range(lo, hi),
    )
    return stats


def count_matches(
    graph_or_handle=None,
    pattern: Optional[PatternGraph] = None,
    order: Optional[Sequence[int]] = None,
    distinct: bool = True,
    executor: Optional["ParallelExecutor"] = None,
    stats: Optional[MatchStats] = None,
    *,
    graph: Optional[Graph] = None,
) -> int:
    """Count embeddings; ``distinct=True`` counts subgraph instances once.

    With an ``executor`` (:class:`repro.parallel.ParallelExecutor`), the
    candidates of the first order vertex are split into root chunks and
    counted concurrently — every embedding has exactly one root, so the
    chunk counts sum to the serial answer for any backend and chunking.
    Per-worker :class:`MatchStats` are folded into ``stats`` (when given)
    via :meth:`MatchStats.merge`, so merged counters equal a serial run.
    """
    handle = as_handle(
        resolve_graph_argument("count_matches", graph_or_handle, graph)
    )
    if pattern is None:
        raise TypeError("count_matches() missing required 'pattern' argument")
    restrictions: Optional[Sequence[Tuple[int, int]]] = None if distinct else []
    if executor is None:
        # The serial matcher consumes the handle directly — a stored
        # graph pages its adjacency through the shard cache.
        return match(
            handle, pattern, order=order, restrictions=restrictions, stats=stats
        )
    if order is None:
        order = default_order(pattern)
    order = tuple(_validate_order(pattern, order))
    if restrictions is None:
        restrictions = symmetry_breaking_restrictions(pattern)
    restrictions = tuple(restrictions)
    shared = handle.to_graph()  # executor backends need the CSR in shared memory
    payloads = [
        (pattern, order, restrictions, lo, hi)
        for lo, hi in executor.spans(shared.num_vertices)
    ]
    merged = stats if stats is not None else MatchStats()
    for part in executor.map_graph(_count_roots_task, shared, payloads):
        merged.merge(part)
    return merged.embeddings


def find_matches(
    graph_or_handle=None,
    pattern: Optional[PatternGraph] = None,
    order: Optional[Sequence[int]] = None,
    limit: Optional[int] = None,
    *,
    graph: Optional[Graph] = None,
) -> List[Tuple[int, ...]]:
    """Materialize embeddings (pattern-vertex order); optionally capped."""
    handle = as_handle(
        resolve_graph_argument("find_matches", graph_or_handle, graph)
    )
    if pattern is None:
        raise TypeError("find_matches() missing required 'pattern' argument")
    found: List[Tuple[int, ...]] = []

    class _Stop(Exception):
        pass

    def record(embedding: Tuple[int, ...]) -> None:
        found.append(embedding)
        if limit is not None and len(found) >= limit:
            raise _Stop

    try:
        match(handle, pattern, order=order, on_match=record)
    except _Stop:
        pass
    return found
