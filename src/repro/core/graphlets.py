"""Graphlet census: small-motif counts as structural graph features.

Counting 3- and 4-vertex connected motifs ("graphlets") is the classic
structure-analytics featurization — the same family of "classic graph
structural features" that [35] found competitive with embeddings, and a
direct application of the compiled pattern matchers of
:mod:`repro.matching.codegen`.

* :func:`graphlet_census` — global counts of each connected motif on
  3 and 4 vertices (8 motifs), computed with pattern-compiled matchers;
* :func:`graphlet_feature_vector` — normalized census, usable as a
  graph-level feature vector;
* :data:`GRAPHLET_PATTERNS` — the motif inventory, in a fixed order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph.csr import Graph
from ..matching.codegen import compile_matcher, prepare_adjacency
from ..matching.pattern import (
    PatternGraph,
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    path_pattern,
    star_pattern,
    tailed_triangle_pattern,
    triangle_pattern,
)

__all__ = ["GRAPHLET_PATTERNS", "graphlet_census", "graphlet_feature_vector"]

# The 2 connected 3-vertex motifs and the 6 connected 4-vertex motifs.
GRAPHLET_PATTERNS: List[Tuple[str, PatternGraph]] = [
    ("path3", path_pattern(3)),
    ("triangle", triangle_pattern()),
    ("path4", path_pattern(4)),
    ("star4", star_pattern(3)),
    ("cycle4", cycle_pattern(4)),
    ("tailed_triangle", tailed_triangle_pattern()),
    ("diamond", diamond_pattern()),
    ("clique4", clique_pattern(4)),
]

_COMPILED = {name: compile_matcher(pattern) for name, pattern in GRAPHLET_PATTERNS}


def graphlet_census(graph: Graph) -> Dict[str, int]:
    """Counts of each connected 3/4-vertex motif (distinct instances)."""
    adj, adjset = prepare_adjacency(graph)
    return {
        name: int(func(adj, adjset, graph.num_vertices))
        for name, func in _COMPILED.items()
    }


def graphlet_feature_vector(graph: Graph, log_scale: bool = True) -> np.ndarray:
    """The census as a fixed-order feature vector (optionally log1p)."""
    census = graphlet_census(graph)
    values = np.asarray(
        [census[name] for name, _ in GRAPHLET_PATTERNS], dtype=np.float64
    )
    return np.log1p(values) if log_scale else values
