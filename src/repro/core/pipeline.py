"""The Figure-1 pipeline: composable graph analytics + ML.

Figure 1 of the tutorial describes four analytics paths:

1. **Vertex Analytics** — a score per vertex;
2. **Vertex Analytics + ML** — vertex embeddings/features feeding a
   downstream model;
3. **Structure Analytics** — subgraph structures (patterns/instances);
4. **Structure Analytics + ML** — structural features feeding graph
   classification/regression.

:class:`Pipeline` makes the paths first-class: stages are named
callables over a shared :class:`PipelineContext` (holding the graph or
transaction DB plus intermediate artifacts), and the built-in stage
constructors cover the tutorial's examples — PageRank scoring, DeepWalk
embeddings + logistic classification, clique/pattern mining, FSM
features + graph classification.  Bench F1 runs all four paths
end-to-end; the examples build custom ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from ..graph.transactions import TransactionDatabase
from ..matching.cliques import maximal_cliques
from ..tlav.algorithms import pagerank
from .features import (
    deepwalk_embeddings,
    logistic_regression,
    topology_features,
)
from .structure_features import degree_histogram_features, pattern_feature_matrix

__all__ = ["PipelineContext", "Stage", "Pipeline", "stages"]


@dataclass
class PipelineContext:
    """Shared state flowing through a pipeline run."""

    graph: Optional[Graph] = None
    database: Optional[TransactionDatabase] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def require_graph(self) -> Graph:
        if self.graph is None:
            raise ValueError("this stage needs a graph input")
        return self.graph

    def require_database(self) -> TransactionDatabase:
        if self.database is None:
            raise ValueError("this stage needs a transaction database input")
        return self.database


@dataclass
class Stage:
    """One named pipeline step."""

    name: str
    run: Callable[[PipelineContext], Any]
    output: str = ""  # artifact key the result is stored under


class Pipeline:
    """An ordered list of stages executed over one context."""

    def __init__(self, stages_list: Optional[Sequence[Stage]] = None) -> None:
        self.stages: List[Stage] = list(stages_list) if stages_list else []

    def add(self, stage: Stage) -> "Pipeline":
        self.stages.append(stage)
        return self

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Execute stages in order, accumulating artifacts."""
        for stage in self.stages:
            result = stage.run(ctx)
            key = stage.output or stage.name
            ctx.artifacts[key] = result
        return ctx


class stages:
    """Constructors for the tutorial's canonical stages."""

    # ---- Path 1: vertex analytics

    @staticmethod
    def pagerank_scores(iterations: int = 20) -> Stage:
        def run(ctx: PipelineContext):
            return pagerank(ctx.require_graph(), iterations=iterations)

        return Stage(name="pagerank", run=run, output="scores")

    @staticmethod
    def structural_vertex_features() -> Stage:
        def run(ctx: PipelineContext):
            return topology_features(ctx.require_graph())

        return Stage(name="topology-features", run=run, output="features")

    # ---- Path 2: vertex analytics + ML

    @staticmethod
    def deepwalk(dim: int = 32, walk_length: int = 10,
                 walks_per_vertex: int = 4, seed: int = 0) -> Stage:
        def run(ctx: PipelineContext):
            return deepwalk_embeddings(
                ctx.require_graph(),
                dim=dim,
                walk_length=walk_length,
                walks_per_vertex=walks_per_vertex,
                seed=seed,
            )

        return Stage(name="deepwalk", run=run, output="embeddings")

    @staticmethod
    def node_classifier(
        labels: np.ndarray,
        train_mask: np.ndarray,
        features_key: str = "embeddings",
    ) -> Stage:
        def run(ctx: PipelineContext):
            x = ctx.artifacts[features_key]
            model = logistic_regression(x[train_mask], labels[train_mask])
            predictions = model.predict(x)
            return {
                "model": model,
                "predictions": predictions,
                "accuracy": float((predictions == labels).mean()),
            }

        return Stage(name="node-classifier", run=run, output="node_ml")

    # ---- Path 3: structure analytics

    @staticmethod
    def mine_maximal_cliques(min_size: int = 3) -> Stage:
        def run(ctx: PipelineContext):
            return [
                c
                for c in maximal_cliques(ctx.require_graph())
                if len(c) >= min_size
            ]

        return Stage(name="maximal-cliques", run=run, output="structures")

    # ---- Path 4: structure analytics + ML

    @staticmethod
    def pattern_features(
        min_support: int, max_edges: int = 3, max_patterns: Optional[int] = 32
    ) -> Stage:
        def run(ctx: PipelineContext):
            x, patterns = pattern_feature_matrix(
                ctx.require_database(),
                min_support=min_support,
                max_edges=max_edges,
                max_patterns=max_patterns,
            )
            ctx.artifacts["patterns"] = patterns
            return x

        return Stage(name="pattern-features", run=run, output="features")

    @staticmethod
    def degree_baseline_features() -> Stage:
        def run(ctx: PipelineContext):
            return degree_histogram_features(ctx.require_database())

        return Stage(name="degree-features", run=run, output="features")

    @staticmethod
    def graph_classifier(
        labels: np.ndarray,
        train_mask: np.ndarray,
        features_key: str = "features",
    ) -> Stage:
        def run(ctx: PipelineContext):
            x = ctx.artifacts[features_key]
            model = logistic_regression(x[train_mask], labels[train_mask])
            predictions = model.predict(x)
            test = ~train_mask
            return {
                "model": model,
                "predictions": predictions,
                "accuracy": float((predictions == labels).mean()),
                "test_accuracy": float(
                    (predictions[test] == labels[test]).mean()
                ) if test.any() else float("nan"),
            }

        return Stage(name="graph-classifier", run=run, output="graph_ml")
