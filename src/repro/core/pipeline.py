"""The Figure-1 pipeline: composable graph analytics + ML.

Figure 1 of the tutorial describes four analytics paths:

1. **Vertex Analytics** — a score per vertex;
2. **Vertex Analytics + ML** — vertex embeddings/features feeding a
   downstream model;
3. **Structure Analytics** — subgraph structures (patterns/instances);
4. **Structure Analytics + ML** — structural features feeding graph
   classification/regression.

:class:`Pipeline` makes the paths first-class: stages are named
callables over a shared :class:`PipelineContext` (holding the graph or
transaction DB plus intermediate artifacts), and the built-in stage
constructors cover the tutorial's examples — PageRank scoring, DeepWalk
embeddings + logistic classification, clique/pattern mining, FSM
features + graph classification.  Bench F1 runs all four paths
end-to-end; the examples build custom ones.

``Pipeline.run`` accepts a :class:`~repro.graph.csr.Graph` or a
:class:`~repro.graph.transactions.TransactionDatabase` directly (the
pipeline builds the context itself) and returns a
:class:`PipelineResult`: the accumulated artifacts plus one
:class:`~repro.obs.Span` per stage, so every run carries its own
per-stage timing profile.  Passing a pre-built ``PipelineContext``
still works — the result exposes ``.artifacts`` (the same dict object
the context holds), so old call sites read it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..graph.csr import Graph
from ..graph.transactions import TransactionDatabase
from ..matching.cliques import maximal_cliques
from ..obs import MetricsRegistry, Span, StatsViewMixin, Tracer
from ..tlav.algorithms import pagerank
from .features import (
    deepwalk_embeddings,
    logistic_regression,
    topology_features,
)
from .structure_features import degree_histogram_features, pattern_feature_matrix

__all__ = ["PipelineContext", "PipelineResult", "Stage", "Pipeline", "stages"]


@dataclass
class PipelineContext:
    """Shared state flowing through a pipeline run."""

    graph: Optional[Graph] = None
    database: Optional[TransactionDatabase] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def require_graph(self) -> Graph:
        if self.graph is None:
            raise ValueError("this stage needs a graph input")
        return self.graph

    def require_database(self) -> TransactionDatabase:
        if self.database is None:
            raise ValueError("this stage needs a transaction database input")
        return self.database


@dataclass
class Stage:
    """One named pipeline step."""

    name: str
    run: Callable[[PipelineContext], Any]
    output: str = ""  # artifact key the result is stored under


class PipelineResult(StatsViewMixin):
    """What a pipeline run produced: artifacts plus per-stage spans.

    ``artifacts`` is the *same* dict object the context accumulated
    into, so code written against the old ``run(ctx).artifacts``
    pattern reads it unchanged; ``result["key"]`` is a shorthand.
    ``spans`` holds one finished :class:`~repro.obs.Span` per stage
    (in execution order); ``stage_seconds`` flattens them to a
    ``{stage_name: wall_seconds}`` dict for quick reporting.
    """

    def __init__(self, context: PipelineContext, spans: List[Span]) -> None:
        self.context = context
        self.artifacts = context.artifacts
        self.spans = spans

    @property
    def graph(self) -> Optional[Graph]:
        return self.context.graph

    @property
    def database(self) -> Optional[TransactionDatabase]:
        return self.context.database

    @property
    def stage_seconds(self) -> Dict[str, float]:
        return {s.name: s.wall_seconds for s in self.spans}

    @property
    def total_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.spans)

    def __getitem__(self, key: str) -> Any:
        return self.artifacts[key]

    def __contains__(self, key: str) -> bool:
        return key in self.artifacts

    def __iter__(self) -> Iterator[str]:
        return iter(self.artifacts)

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "artifacts": sorted(self.artifacts),
            "stage_seconds": self.stage_seconds,
            "total_seconds": self.total_seconds,
            "spans": [s.as_dict() for s in self.spans],
        }

    def merge(self, other: "PipelineResult") -> "PipelineResult":
        """Adopt a later run's artifacts and spans (chained pipelines)."""
        self.artifacts.update(other.artifacts)
        self.spans.extend(other.spans)
        return self


PipelineInput = Union[PipelineContext, Graph, TransactionDatabase]


class Pipeline:
    """An ordered list of stages executed over one context.

    ``obs`` and ``tracer`` are optional shared observability handles:
    stage timings always come back on the :class:`PipelineResult`, and
    additionally land in the given tracer (nested under any open span)
    and as ``core.pipeline.*`` metrics in the given registry.
    """

    def __init__(
        self,
        stages_list: Optional[Sequence[Stage]] = None,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.stages: List[Stage] = list(stages_list) if stages_list else []
        self.obs = obs
        self.tracer = tracer

    def add(self, stage: Stage) -> "Pipeline":
        self.stages.append(stage)
        return self

    @staticmethod
    def _coerce(data: PipelineInput) -> PipelineContext:
        if isinstance(data, PipelineContext):
            return data  # legacy context-passing pattern
        if isinstance(data, Graph):
            return PipelineContext(graph=data)
        if isinstance(data, TransactionDatabase):
            return PipelineContext(database=data)
        raise TypeError(
            "Pipeline.run expects a Graph, TransactionDatabase, or "
            f"PipelineContext, not {type(data).__name__}"
        )

    def run(self, data: PipelineInput) -> PipelineResult:
        """Execute stages in order over ``data``; returns the result.

        ``data`` may be a graph or transaction database (the pipeline
        builds the context) or an explicit :class:`PipelineContext`
        (the pre-redesign calling convention, kept working).
        """
        ctx = self._coerce(data)
        tracer = self.tracer if self.tracer is not None else Tracer()
        spans: List[Span] = []
        for stage in self.stages:
            with tracer.span(f"stage:{stage.name}") as span:
                result = stage.run(ctx)
            key = stage.output or stage.name
            ctx.artifacts[key] = result
            span.set("output", key)
            spans.append(span)
            if self.obs is not None:
                self.obs.counter(
                    "core.pipeline.stages", "pipeline stages executed"
                ).inc(stage=stage.name)
                self.obs.histogram(
                    "core.pipeline.stage_seconds", "wall seconds per stage",
                    buckets=(0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0),
                ).observe(span.wall_seconds, stage=stage.name)
        return PipelineResult(ctx, spans)


class stages:
    """Constructors for the tutorial's canonical stages."""

    # ---- Path 1: vertex analytics

    @staticmethod
    def pagerank_scores(iterations: int = 20) -> Stage:
        def run(ctx: PipelineContext):
            return pagerank(ctx.require_graph(), iterations=iterations)

        return Stage(name="pagerank", run=run, output="scores")

    @staticmethod
    def structural_vertex_features() -> Stage:
        def run(ctx: PipelineContext):
            return topology_features(ctx.require_graph())

        return Stage(name="topology-features", run=run, output="features")

    # ---- Path 2: vertex analytics + ML

    @staticmethod
    def deepwalk(dim: int = 32, walk_length: int = 10,
                 walks_per_vertex: int = 4, seed: int = 0) -> Stage:
        def run(ctx: PipelineContext):
            return deepwalk_embeddings(
                ctx.require_graph(),
                dim=dim,
                walk_length=walk_length,
                walks_per_vertex=walks_per_vertex,
                seed=seed,
            )

        return Stage(name="deepwalk", run=run, output="embeddings")

    @staticmethod
    def node_classifier(
        labels: np.ndarray,
        train_mask: np.ndarray,
        features_key: str = "embeddings",
    ) -> Stage:
        def run(ctx: PipelineContext):
            x = ctx.artifacts[features_key]
            model = logistic_regression(x[train_mask], labels[train_mask])
            predictions = model.predict(x)
            return {
                "model": model,
                "predictions": predictions,
                "accuracy": float((predictions == labels).mean()),
            }

        return Stage(name="node-classifier", run=run, output="node_ml")

    # ---- Path 3: structure analytics

    @staticmethod
    def mine_maximal_cliques(min_size: int = 3) -> Stage:
        def run(ctx: PipelineContext):
            return [
                c
                for c in maximal_cliques(ctx.require_graph())
                if len(c) >= min_size
            ]

        return Stage(name="maximal-cliques", run=run, output="structures")

    # ---- Path 4: structure analytics + ML

    @staticmethod
    def pattern_features(
        min_support: int, max_edges: int = 3, max_patterns: Optional[int] = 32
    ) -> Stage:
        def run(ctx: PipelineContext):
            x, patterns = pattern_feature_matrix(
                ctx.require_database(),
                min_support=min_support,
                max_edges=max_edges,
                max_patterns=max_patterns,
            )
            ctx.artifacts["patterns"] = patterns
            return x

        return Stage(name="pattern-features", run=run, output="features")

    @staticmethod
    def degree_baseline_features() -> Stage:
        def run(ctx: PipelineContext):
            return degree_histogram_features(ctx.require_database())

        return Stage(name="degree-features", run=run, output="features")

    @staticmethod
    def graph_classifier(
        labels: np.ndarray,
        train_mask: np.ndarray,
        features_key: str = "features",
    ) -> Stage:
        def run(ctx: PipelineContext):
            x = ctx.artifacts[features_key]
            model = logistic_regression(x[train_mask], labels[train_mask])
            predictions = model.predict(x)
            test = ~train_mask
            return {
                "model": model,
                "predictions": predictions,
                "accuracy": float((predictions == labels).mean()),
                "test_accuracy": float(
                    (predictions[test] == labels[test]).mean()
                ) if test.any() else float("nan"),
            }

        return Stage(name="graph-classifier", run=run, output="graph_ml")
