"""Structural pattern features for graph classification.

The tutorial's motivation for combining the two trends: frequent
subgraph patterns are informative features for conventional graph
classification/regression models (gBoost [31], Pan & Zhu [28]), and
classic structural features can outperform neural embeddings [35].

:func:`pattern_feature_matrix` turns a transaction database into a
binary (or count) feature matrix over mined frequent patterns — the
"Structure Analytics + ML" path of Figure 1 — evaluated by bench C14
against a degree-histogram baseline with the shallow classifier of
:mod:`repro.core.features`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..fsm.gspan import FrequentPattern, GSpan
from ..graph.csr import Graph
from ..graph.transactions import TransactionDatabase
from ..matching.backtrack import match
from ..matching.pattern import PatternGraph

__all__ = [
    "pattern_feature_matrix",
    "degree_histogram_features",
    "contains_pattern",
]


def contains_pattern(graph: Graph, pattern: PatternGraph) -> bool:
    """Does ``graph`` contain at least one embedding of ``pattern``?"""
    found: List[int] = []

    class _Stop(Exception):
        pass

    def first(_emb: Tuple[int, ...]) -> None:
        found.append(1)
        raise _Stop

    try:
        match(graph, pattern, restrictions=[], on_match=first)
    except _Stop:
        pass
    return bool(found)


def pattern_feature_matrix(
    db: TransactionDatabase,
    min_support: int,
    max_edges: int = 3,
    min_edges: int = 1,
    max_patterns: Optional[int] = None,
    counts: bool = False,
) -> Tuple[np.ndarray, List[FrequentPattern]]:
    """Mine frequent patterns and featurize each transaction by them.

    Returns ``(X, patterns)``: ``X[t, p]`` is 1 (or the embedding count
    with ``counts=True``) when transaction ``t`` contains pattern ``p``.
    Patterns are ordered by descending discriminative potential proxy
    (support closest to half the database), then truncated to
    ``max_patterns``.
    """
    miner = GSpan(min_support=min_support, max_edges=max_edges, min_edges=min_edges)
    patterns = miner.run(db)
    half = len(db) / 2.0
    patterns.sort(key=lambda p: (abs(p.support - half), -p.num_edges))
    if max_patterns is not None:
        patterns = patterns[:max_patterns]
    x = np.zeros((len(db), len(patterns)))
    pattern_graphs = [PatternGraph(p.to_graph()) for p in patterns]
    for t_index, transaction in enumerate(db):
        for p_index, (record, pg) in enumerate(zip(patterns, pattern_graphs)):
            if transaction.graph_id in record.graph_ids:
                if counts:
                    x[t_index, p_index] = match(
                        transaction.graph, pg, restrictions=None
                    )
                else:
                    x[t_index, p_index] = 1.0
    return x, patterns


def degree_histogram_features(
    db: TransactionDatabase, max_degree: int = 8
) -> np.ndarray:
    """Baseline featurization: per-graph degree histogram + label counts."""
    label_values = sorted(
        {t.graph.vertex_label(v) for t in db for v in t.graph.vertices()}
    )
    label_index = {lbl: i for i, lbl in enumerate(label_values)}
    x = np.zeros((len(db), max_degree + 1 + len(label_values)))
    for t_index, transaction in enumerate(db):
        g = transaction.graph
        for v in g.vertices():
            d = min(g.degree(v), max_degree)
            x[t_index, d] += 1
            x[t_index, max_degree + 1 + label_index[g.vertex_label(v)]] += 1
    return x
