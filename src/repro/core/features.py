"""Vertex features and embeddings for the Figure-1 pipeline.

The "Vertex Analytics (+ ML)" paths need vertex representations; the
tutorial names the three sources this module implements:

* **topology features** — in/out-degrees, clustering coefficient, core
  number, PageRank (:func:`topology_features`), the "classic graph
  structural features" of Stolman et al. [35];
* **DeepWalk** — random walks + skip-gram with negative sampling
  (:func:`deepwalk_embeddings`), trained with a hand-rolled numpy SGNS;
* **node2vec** — the biased second-order walks (:func:`node2vec_walks`)
  feeding the same SGNS trainer.

Also here: :func:`logistic_regression` — the shallow downstream model
used to evaluate embeddings and structural features (benches C14/F1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from ..graph.properties import clustering_coefficients, core_numbers
from ..tlav.algorithms import pagerank, random_walks

__all__ = [
    "topology_features",
    "deepwalk_embeddings",
    "node2vec_walks",
    "skipgram_train",
    "logistic_regression",
    "LogisticModel",
]


def topology_features(graph: Graph) -> np.ndarray:
    """Per-vertex structural feature matrix.

    Columns: degree, log-degree, clustering coefficient, core number,
    PageRank, mean neighbor degree.
    """
    n = graph.num_vertices
    deg = graph.degrees().astype(np.float64)
    clust = clustering_coefficients(graph)
    cores = core_numbers(graph).astype(np.float64)
    pr = pagerank(graph, iterations=15)
    mean_nbr_deg = np.zeros(n)
    for v in range(n):
        nbrs = graph.neighbors(v)
        mean_nbr_deg[v] = deg[nbrs].mean() if nbrs.size else 0.0
    return np.column_stack(
        [deg, np.log1p(deg), clust, cores, pr * n, mean_nbr_deg]
    )


# ----------------------------------------------------------------------
# Skip-gram with negative sampling (the word2vec core of DeepWalk)
# ----------------------------------------------------------------------


def skipgram_train(
    walks: Sequence[Sequence[int]],
    num_vertices: int,
    dim: int = 32,
    window: int = 3,
    negatives: int = 4,
    epochs: int = 2,
    lr: float = 0.025,
    seed: int = 0,
) -> np.ndarray:
    """Train SGNS embeddings from walk corpora.

    Plain numpy SGD over (center, context) pairs with ``negatives``
    noise samples drawn from the unigram^0.75 distribution.
    """
    rng = np.random.default_rng(seed)
    emb_in = (rng.random((num_vertices, dim)) - 0.5) / dim
    emb_out = np.zeros((num_vertices, dim))
    counts = np.zeros(num_vertices)
    for walk in walks:
        for v in walk:
            counts[v] += 1
    noise = counts ** 0.75
    total = noise.sum()
    if total == 0:
        return emb_in
    noise = noise / total

    def sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    for _ in range(epochs):
        for walk in walks:
            for i, center in enumerate(walk):
                lo = max(0, i - window)
                hi = min(len(walk), i + window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    context = walk[j]
                    negs = rng.choice(num_vertices, size=negatives, p=noise)
                    targets = np.concatenate(([context], negs)).astype(np.int64)
                    labels = np.zeros(len(targets))
                    labels[0] = 1.0
                    vecs = emb_out[targets]  # (k, dim)
                    score = sigmoid(vecs @ emb_in[center])
                    gradient = (score - labels)[:, None]
                    grad_center = (gradient * vecs).sum(axis=0)
                    emb_out[targets] -= lr * gradient * emb_in[center]
                    emb_in[center] -= lr * grad_center
    return emb_in


def deepwalk_embeddings(
    graph: Graph,
    dim: int = 32,
    walk_length: int = 10,
    walks_per_vertex: int = 4,
    window: int = 3,
    epochs: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """DeepWalk: uniform random walks (via the TLAV engine) + SGNS."""
    walks = random_walks(
        graph,
        walk_length=walk_length,
        walks_per_vertex=walks_per_vertex,
        seed=seed,
    )
    return skipgram_train(
        walks,
        graph.num_vertices,
        dim=dim,
        window=window,
        epochs=epochs,
        seed=seed,
    )


def node2vec_walks(
    graph: Graph,
    walk_length: int = 10,
    walks_per_vertex: int = 4,
    p: float = 1.0,
    q: float = 1.0,
    seed: int = 0,
) -> List[List[int]]:
    """Second-order biased walks (node2vec).

    Transition weights from ``t -> v`` to candidate ``x``:
    ``1/p`` to return (x == t), ``1`` if x neighbors t, ``1/q``
    otherwise.  ``p = q = 1`` degenerates to DeepWalk's uniform walks.
    """
    rng = np.random.default_rng(seed)
    walks: List[List[int]] = []
    nbr_sets = [set(int(w) for w in graph.neighbors(v)) for v in graph.vertices()]
    for start in graph.vertices():
        for _ in range(walks_per_vertex):
            walk = [start]
            while len(walk) < walk_length + 1:
                cur = walk[-1]
                nbrs = graph.neighbors(cur)
                if nbrs.size == 0:
                    break
                if len(walk) == 1:
                    nxt = int(nbrs[rng.integers(nbrs.size)])
                else:
                    prev = walk[-2]
                    weights = np.empty(nbrs.size)
                    for k, x in enumerate(nbrs):
                        x = int(x)
                        if x == prev:
                            weights[k] = 1.0 / p
                        elif x in nbr_sets[prev]:
                            weights[k] = 1.0
                        else:
                            weights[k] = 1.0 / q
                    weights /= weights.sum()
                    nxt = int(nbrs[rng.choice(nbrs.size, p=weights)])
                walk.append(nxt)
            walks.append(walk)
    return walks


# ----------------------------------------------------------------------
# Shallow downstream model
# ----------------------------------------------------------------------


class LogisticModel:
    """Multinomial logistic regression (numpy, full-batch GD)."""

    def __init__(self, weights: np.ndarray, bias: np.ndarray,
                 mean: np.ndarray, std: np.ndarray) -> None:
        self.weights = weights
        self.bias = bias
        self.mean = mean
        self.std = std

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        z = (x - self.mean) / self.std @ self.weights + self.bias
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())


def logistic_regression(
    x: np.ndarray,
    y: np.ndarray,
    num_classes: Optional[int] = None,
    epochs: int = 200,
    lr: float = 0.5,
    weight_decay: float = 1e-3,
) -> LogisticModel:
    """Fit multinomial logistic regression with standardized inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    k = num_classes if num_classes is not None else int(y.max()) + 1
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    xs = (x - mean) / std
    n, d = xs.shape
    w = np.zeros((d, k))
    b = np.zeros(k)
    onehot = np.eye(k)[y]
    for _ in range(epochs):
        z = xs @ w + b
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        probs = e / e.sum(axis=1, keepdims=True)
        gz = (probs - onehot) / n
        w -= lr * (xs.T @ gz + weight_decay * w)
        b -= lr * gz.sum(axis=0)
    return LogisticModel(w, b, mean, std)
