"""The paper's pipeline (Figure 1) and system taxonomy (Tables 1-2)."""

from .graphlets import GRAPHLET_PATTERNS, graphlet_census, graphlet_feature_vector
from .features import (
    LogisticModel,
    deepwalk_embeddings,
    logistic_regression,
    node2vec_walks,
    skipgram_train,
    topology_features,
)
from .pipeline import Pipeline, PipelineContext, Stage, stages
from .structure_features import (
    contains_pattern,
    degree_histogram_features,
    pattern_feature_matrix,
)
from .taxonomy import (
    GNNSystem,
    SubgraphSystem,
    TABLE1_SYSTEMS,
    TABLE2_SYSTEMS,
    render_table1,
    render_table2,
)

__all__ = [
    "Pipeline",
    "PipelineContext",
    "Stage",
    "stages",
    "topology_features",
    "deepwalk_embeddings",
    "node2vec_walks",
    "skipgram_train",
    "logistic_regression",
    "LogisticModel",
    "pattern_feature_matrix",
    "degree_histogram_features",
    "contains_pattern",
    "SubgraphSystem",
    "GNNSystem",
    "TABLE1_SYSTEMS",
    "TABLE2_SYSTEMS",
    "render_table1",
    "render_table2",
    "GRAPHLET_PATTERNS",
    "graphlet_census",
    "graphlet_feature_vector",
]
