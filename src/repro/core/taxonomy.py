"""Machine-readable registry of the surveyed systems.

The tutorial's two tables *are* its evaluation artifacts:

* **Table 1** — systems for subgraph search, categorized by computing
  model (BFS/DFS/hybrid extension), platform, problem coverage (SF /
  FSM / matching-only), and techniques (work stealing, compilation,
  GPU partitioning, interactive querying, ...);
* **Table 2** — distributed GNN training systems, categorized by the
  five technique columns the paper prints: graph partitioning /
  operator scheduling (pipelining), asynchronous training (staleness),
  compression/quantization, communication optimizations, and
  CPU-offload or other hardware tricks.

Every row carries ``repro``: the module in this repository that
implements the family's defining technique, so ``render_table`` both
regenerates the paper's table and serves as the cross-index of
DESIGN.md.  Benches T1/T2 print these tables next to measured runs of
the corresponding modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "SubgraphSystem",
    "GNNSystem",
    "TABLE1_SYSTEMS",
    "TABLE2_SYSTEMS",
    "render_table1",
    "render_table2",
]


@dataclass(frozen=True)
class SubgraphSystem:
    """One row of Table 1."""

    name: str
    platform: str           # "CPU-dist", "CPU-single", "GPU"
    extension: str          # "BFS", "DFS", "hybrid", "compiled"
    supports_sf: bool       # general subgraph finding
    supports_fsm: bool      # frequent subgraph mining
    matching_only: bool = False
    work_stealing: bool = False
    compilation: bool = False
    interactive: bool = False
    memory_bounding: str = ""   # e.g. "AIMD chunking", "host spill"
    repro: str = ""             # module here that implements the idea


TABLE1_SYSTEMS: List[SubgraphSystem] = [
    SubgraphSystem("Arabesque", "CPU-dist", "BFS", True, True,
                   repro="repro.tlag.bfs_engine"),
    SubgraphSystem("RStream", "CPU-single", "BFS", True, True,
                   repro="repro.tlag.bfs_engine"),
    SubgraphSystem("Pangolin", "CPU/GPU", "BFS", True, True,
                   repro="repro.tlag.bfs_engine"),
    SubgraphSystem("G-thinker", "CPU-dist", "DFS", True, False,
                   work_stealing=True, repro="repro.tlag.engine"),
    SubgraphSystem("G-Miner", "CPU-dist", "DFS", True, False,
                   work_stealing=True, repro="repro.tlag.engine"),
    SubgraphSystem("Fractal", "CPU-dist", "DFS", True, True,
                   work_stealing=True, repro="repro.tlag.engine"),
    SubgraphSystem("G-thinkerQ", "CPU-dist", "DFS", True, False,
                   work_stealing=True, interactive=True,
                   repro="repro.tlag.query"),
    SubgraphSystem("AutoMine", "CPU-single", "compiled", True, False,
                   matching_only=True, compilation=True,
                   repro="repro.matching.codegen"),
    SubgraphSystem("GraphPi", "CPU-dist", "compiled", False, False,
                   matching_only=True, compilation=True,
                   repro="repro.matching.plan"),
    SubgraphSystem("GraphZero", "CPU-single", "compiled", False, False,
                   matching_only=True, compilation=True,
                   repro="repro.matching.pattern"),
    SubgraphSystem("ScaleMine", "CPU-dist", "DFS", False, True,
                   repro="repro.fsm.single_graph"),
    SubgraphSystem("DistGraph", "CPU-dist", "DFS", False, True,
                   repro="repro.fsm.single_graph"),
    SubgraphSystem("T-FSM", "CPU-dist", "DFS", False, True,
                   work_stealing=True, repro="repro.fsm.single_graph"),
    SubgraphSystem("PrefixFPM", "CPU-single", "DFS", False, True,
                   work_stealing=True, repro="repro.fsm.prefixfpm"),
    SubgraphSystem("GSI", "GPU", "BFS", False, False, matching_only=True,
                   repro="repro.tlag.aimd"),
    SubgraphSystem("cuTS", "GPU", "BFS", False, False, matching_only=True,
                   repro="repro.tlag.aimd"),
    SubgraphSystem("PBE", "GPU", "BFS", False, False, matching_only=True,
                   memory_bounding="graph partitioning",
                   repro="repro.graph.partition"),
    SubgraphSystem("VSGM", "GPU", "BFS", False, False, matching_only=True,
                   memory_bounding="graph partitioning",
                   repro="repro.graph.partition"),
    SubgraphSystem("SGSI", "GPU", "BFS", False, False, matching_only=True,
                   memory_bounding="graph partitioning",
                   repro="repro.graph.partition"),
    SubgraphSystem("G2-AIMD", "GPU", "BFS", True, False,
                   memory_bounding="AIMD chunking + host spill",
                   repro="repro.tlag.aimd"),
    SubgraphSystem("STMatch", "GPU", "DFS", False, False,
                   matching_only=True, work_stealing=True,
                   repro="repro.tlag.warp"),
    SubgraphSystem("T-DFS", "GPU", "DFS", False, False,
                   matching_only=True, work_stealing=True,
                   repro="repro.tlag.warp"),
    SubgraphSystem("EGSM", "GPU", "hybrid", False, False,
                   matching_only=True,
                   memory_bounding="BFS-DFS fallback",
                   repro="repro.tlag.hybrid"),
]


@dataclass(frozen=True)
class GNNSystem:
    """One row of Table 2 (the five technique columns of the paper)."""

    name: str
    platform: str                  # "CPU", "GPU", "serverless"
    partitioning: bool = False     # graph partitioning / data placement
    scheduling: bool = False       # operator scheduling / pipelining
    asynchrony: bool = False       # bounded staleness etc.
    compression: bool = False      # quantized communication
    comm_optimization: bool = False  # topology-aware plans etc.
    cpu_offload: bool = False      # host-memory offload
    repro: str = ""


TABLE2_SYSTEMS: List[GNNSystem] = [
    GNNSystem("Euler", "CPU", scheduling=True,
              repro="repro.gnn.sampling"),
    GNNSystem("AliGraph", "CPU", scheduling=True,
              repro="repro.gnn.caching"),
    GNNSystem("DistDGL", "CPU", partitioning=True,
              repro="repro.gnn.distributed"),
    GNNSystem("AGL", "CPU", partitioning=True,
              repro="repro.gnn.sampling"),
    GNNSystem("P3", "GPU", partitioning=True, scheduling=True,
              asynchrony=True, repro="repro.gnn.p3"),
    GNNSystem("NeutronStar", "GPU", scheduling=True,
              repro="repro.gnn.tensor"),
    GNNSystem("ByteGNN", "CPU", partitioning=True, scheduling=True,
              repro="repro.gnn.pipeline"),
    GNNSystem("DGCL", "GPU", partitioning=True, comm_optimization=True,
              repro="repro.gnn.comm_plan"),
    GNNSystem("BGL", "GPU", partitioning=True, scheduling=True,
              repro="repro.gnn.caching"),
    GNNSystem("Sancus", "GPU", asynchrony=True, comm_optimization=True,
              repro="repro.gnn.staleness"),
    GNNSystem("Dorylus", "serverless", scheduling=True, asynchrony=True,
              comm_optimization=True, repro="repro.gnn.serverless"),
    GNNSystem("DistGNN", "CPU", partitioning=True, cpu_offload=True,
              repro="repro.gnn.staleness"),
    GNNSystem("HongTu", "GPU", partitioning=True, cpu_offload=True,
              repro="repro.gnn.offload"),
    GNNSystem("EC-Graph", "CPU", compression=True,
              repro="repro.gnn.quantization"),
    GNNSystem("EXACT", "GPU", compression=True,
              repro="repro.gnn.quantization"),
    GNNSystem("F2CGT", "GPU", compression=True,
              repro="repro.gnn.quantization"),
    GNNSystem("Sylvie", "GPU", compression=True,
              repro="repro.gnn.quantization"),
]


def _mark(flag: bool) -> str:
    return "x" if flag else ""


def render_table1(systems: Optional[Sequence[SubgraphSystem]] = None) -> str:
    """Table 1 as fixed-width text (the bench prints this)."""
    systems = list(systems) if systems is not None else TABLE1_SYSTEMS
    header = (
        f"{'system':<12} {'platform':<11} {'ext.':<9} {'SF':<3} {'FSM':<4} "
        f"{'match':<6} {'steal':<6} {'compile':<8} {'online':<7} "
        f"{'memory bounding':<26} {'reproduced by':<24}"
    )
    lines = [header, "-" * len(header)]
    for s in systems:
        lines.append(
            f"{s.name:<12} {s.platform:<11} {s.extension:<9} "
            f"{_mark(s.supports_sf):<3} {_mark(s.supports_fsm):<4} "
            f"{_mark(s.matching_only):<6} {_mark(s.work_stealing):<6} "
            f"{_mark(s.compilation):<8} {_mark(s.interactive):<7} "
            f"{s.memory_bounding:<26} {s.repro:<24}"
        )
    return "\n".join(lines)


def render_table2(systems: Optional[Sequence[GNNSystem]] = None) -> str:
    """Table 2 as fixed-width text (the bench prints this)."""
    systems = list(systems) if systems is not None else TABLE2_SYSTEMS
    header = (
        f"{'system':<12} {'platform':<11} {'partit.':<8} {'sched.':<7} "
        f"{'async':<6} {'compress':<9} {'comm-opt':<9} {'offload':<8} "
        f"{'reproduced by':<24}"
    )
    lines = [header, "-" * len(header)]
    for s in systems:
        lines.append(
            f"{s.name:<12} {s.platform:<11} {_mark(s.partitioning):<8} "
            f"{_mark(s.scheduling):<7} {_mark(s.asynchrony):<6} "
            f"{_mark(s.compression):<9} {_mark(s.comm_optimization):<9} "
            f"{_mark(s.cpu_offload):<8} {s.repro:<24}"
        )
    return "\n".join(lines)
