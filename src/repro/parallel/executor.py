"""The executor abstraction: one fan-out API, three backends + auto.

``ParallelExecutor.map_graph(fn, graph, payloads)`` applies a
module-level function ``fn(graph, payload)`` to every payload and
returns the results in order.  The backend decides what that costs:

* ``serial`` — a plain loop in the calling process (the reference
  semantics every other backend must reproduce bit-for-bit);
* ``thread`` — a ``ThreadPoolExecutor``; useful when ``fn`` spends its
  time in numpy kernels that release the GIL;
* ``process`` — a ``ProcessPoolExecutor`` where the graph is shared
  zero-copy through :mod:`repro.parallel.shm`: workers attach the CSR
  segments once and every task ships only its payload (a chunk
  descriptor, not the graph);
* ``auto`` (the default) — a calibrated
  :class:`~repro.parallel.costmodel.CostModel` picks one of the three
  per call from the work estimate, the per-backend overhead constants,
  and whether the pool is already warm / the graph already shared.

Pools and shared graphs are *long-lived*: executors borrow
:class:`~repro.parallel.pool.WorkerPool` instances from a process-wide
registry keyed by ``(backend, workers)`` (``reuse_pool=False`` opts out),
so worker spawn and the CSR copy into shared memory happen once per
session, not once per fan-out.  Each graph is published to shared memory
exactly once per (pool, graph) pair and reused across ``map_graph``
calls; segments are torn down through the shm ``_LIVE``/atexit hygiene.

Determinism contract: callers split work with the chunking policy of
:mod:`repro.parallel.chunking` and reduce results *in payload order*.
Because the chunk structure — not the backend — fixes the computation
graph, every backend produces identical output (see DESIGN.md).

The executor meters itself into a :class:`~repro.obs.MetricsRegistry`
(``parallel.*``): per-worker busy seconds, chunk latency histogram,
pool warm-up seconds (spawn + CSR publish, counted separately), and the
``parallel.efficiency`` gauge ``busy / ((wall - warmup) * workers)`` —
1.0 means perfect scaling of the steady state; one-time setup no longer
drags the gauge below 1.

Crash tolerance: chunks are pure functions of ``(graph, payload)``, so
a dead worker costs work, never answers.  When a process worker dies —
organically (``BrokenProcessPool``) or under an injected
:class:`~repro.resilience.FaultPlan` — the executor rebuilds the pool's
futures executor (shared segments stay mapped, so no re-copy) and
re-dispatches the unfinished ``(lo, hi)`` spans to the survivors; after
``max_pool_failures`` pool losses in one fan-out it degrades to
``thread`` for the rest of its life (auto mode simply stops choosing
``process``).  Shared segments for the failing graph are unlinked on
every exception path.  Recovery is metered under ``resilience.*``
(re-dispatched chunks, pool failures, degradations) and traced as
``resilience.recover`` spans.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graph.csr import Graph
from ..obs import MetricsRegistry, Tracer
from ..resilience import FaultInjector
from .chunking import chunk_spans, default_chunk_size
from .costmodel import CostModel, default_cost_model
from .pool import WorkerPool, get_pool, pool_registry
from .shm import SharedGraph, attach_graph

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "available_workers",
    "resolve_backend",
    "resolve_workers",
]

#: The executable backends; ``auto`` resolves to one of these per call.
BACKENDS = ("serial", "thread", "process")

#: Environment knobs: ``REPRO_BACKEND`` picks the default backend,
#: ``REPRO_WORKERS`` the default worker count.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"


def available_workers() -> int:
    """Usable CPUs (cgroup/affinity-aware where the platform allows)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_backend(backend: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_BACKEND``, else ``auto``."""
    if backend is None:
        backend = os.environ.get(ENV_BACKEND) or "auto"
    backend = backend.lower()
    if backend != "auto" and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS + ('auto',)}"
        )
    return backend


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_WORKERS``, else all CPUs."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        workers = int(env) if env else available_workers()
    if workers < 1:
        raise ValueError("need at least one worker")
    return workers


def _timed(fn: Callable[[Graph, Any], Any], graph: Graph, payload: Any):
    start = time.perf_counter()
    result = fn(graph, payload)
    return result, time.perf_counter() - start


def _fn_key(fn: Callable) -> str:
    """Stable per-function calibration key for the cost model."""
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    return f"{module}.{name}"


def _process_task(handle, fn, payload, crash=False):
    """Process-backend task: reattach the shared graph, run the chunk.

    ``crash=True`` is the injected worker death: the child exits hard
    (no exception back, no cleanup), which surfaces in the parent as the
    genuine ``BrokenProcessPool`` a production failure produces.
    """
    if crash:
        os._exit(3)
    graph = attach_graph(handle)
    return _timed(fn, graph, payload)


class ParallelExecutor:
    """Backend-selectable fan-out over an immutable graph.

    Parameters
    ----------
    backend:
        ``serial`` / ``thread`` / ``process`` / ``auto``; ``None``
        consults ``$REPRO_BACKEND`` and defaults to ``auto``.
    workers:
        Worker count; ``None`` consults ``$REPRO_WORKERS`` then the CPU
        count.  The serial backend always reports 1.
    chunk_size:
        Default chunk size for :meth:`spans`; ``None`` derives one from
        the item count and worker count (the shared chunking policy —
        in auto mode the cost model widens chunks once calibrated).
    obs:
        Optional shared :class:`~repro.obs.MetricsRegistry` receiving the
        ``parallel.*`` metrics (private registry when omitted).
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; its
        ``crash_worker(chunk=c)`` faults kill the worker executing
        payload index ``c`` (a real ``os._exit`` under the process
        backend, a re-dispatched attempt under serial/thread).
    tracer:
        Optional :class:`~repro.obs.Tracer`; every recovery wave is
        recorded as a ``resilience.recover`` span.
    max_pool_failures:
        Pool losses tolerated within one fan-out before the executor
        degrades to ``thread`` for the rest of its life.
    reuse_pool:
        Borrow warm pools (and their shared graphs) from the
        process-wide registry.  ``False`` gives the executor private
        pools torn down by :meth:`close` — the pre-pool behaviour, used
        by hygiene tests and one-shot scripts.
    cost_model:
        The :class:`CostModel` behind ``auto``; ``None`` uses the
        process-wide default, so calibration persists across executors
        within a session.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        obs: Optional[MetricsRegistry] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        max_pool_failures: int = 2,
        reuse_pool: bool = True,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)
        self.chunk_size = chunk_size
        self.obs = obs if obs is not None else MetricsRegistry()
        self.injector = injector
        self.tracer = tracer
        self.max_pool_failures = max_pool_failures
        self.reuse_pool = reuse_pool
        self.cost_model = cost_model if cost_model is not None else default_cost_model()
        self._pools: Dict[str, WorkerPool] = {}
        self._private_pools: List[WorkerPool] = []
        self._degraded = False
        self._span_state: Optional[Tuple[int, int]] = None
        self._warmup = 0.0
        self._spinup = 0.0
        self._last_backend = "serial" if self.backend == "auto" else self.backend
        self._c_maps = self.obs.counter("parallel.maps", "map_graph fan-outs issued")
        self._c_chunks = self.obs.counter("parallel.chunks", "chunk tasks executed")
        self._c_busy = self.obs.counter(
            "parallel.busy_seconds", "summed in-chunk compute seconds"
        )
        self._c_wall = self.obs.counter(
            "parallel.wall_seconds", "wall seconds spent inside map_graph"
        )
        self._c_warmup = self.obs.counter(
            "parallel.warmup_seconds",
            "one-time setup seconds (pool spawn + CSR publish), kept out "
            "of the efficiency gauge",
        )
        self._c_cold_starts = self.obs.counter(
            "parallel.pool_cold_starts", "futures pools spawned from cold"
        )
        self._c_shm_shares = self.obs.counter(
            "parallel.shm_shares", "CSR copies published to shared memory"
        )
        self._c_shm_reuses = self.obs.counter(
            "parallel.shm_reuses", "fan-outs served by an already-shared CSR"
        )
        self._c_auto = self.obs.counter(
            "parallel.auto_decisions", "auto-mode backend choices"
        )
        self._h_chunk = self.obs.histogram(
            "parallel.chunk_seconds",
            "per-chunk latency (seconds)",
            buckets=tuple(10.0 ** e for e in range(-6, 3)),
        )
        self._g_workers = self.obs.gauge("parallel.workers", "configured workers")
        self._g_efficiency = self.obs.gauge(
            "parallel.efficiency",
            "busy / ((wall - warmup) * workers) of the last fan-out",
        )
        self._g_shared = self.obs.gauge(
            "parallel.shared_bytes", "bytes of CSR state in shared memory"
        )
        self._c_redispatched = self.obs.counter(
            "resilience.redispatched_chunks",
            "chunk spans re-dispatched after a worker death",
        )
        self._c_pool_failures = self.obs.counter(
            "resilience.pool_failures", "process pools lost and rebuilt"
        )
        self._g_degraded = self.obs.gauge(
            "resilience.degraded",
            "1 once the executor fell back to a weaker backend",
        )
        self._g_workers.set(self.workers, backend=self.backend)

    # -- chunking ----------------------------------------------------------

    def spans(self, num_items: int):
        """Contiguous ``(lo, hi)`` chunks under this executor's policy.

        Auto mode consults the cost model once calibrated: chunks widen
        until each carries ~:data:`~repro.parallel.costmodel.TARGET_CHUNK_SECONDS`
        of measured work (never finer than the default policy, never
        coarser than one chunk per worker).  The span layout is also what
        tells :meth:`map_graph` how many underlying work items a payload
        list covers, so the model calibrates in per-item units.
        """
        size = self.chunk_size
        if size is None and self.backend == "auto":
            size = self.cost_model.auto_chunk_size(num_items, self.workers)
        spans = chunk_spans(num_items, size, self.workers)
        self._span_state = (num_items, len(spans))
        return spans

    def effective_chunk_size(self, num_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if self.backend == "auto":
            auto = self.cost_model.auto_chunk_size(num_items, self.workers)
            if auto is not None:
                return auto
        return default_chunk_size(num_items, self.workers)

    # -- fan-out -----------------------------------------------------------

    def map_graph(
        self,
        fn: Callable[[Graph, Any], Any],
        graph: Graph,
        payloads: Sequence[Any],
    ) -> List[Any]:
        """Apply ``fn(graph, payload)`` per payload; results in order.

        ``fn`` must be a module-level function for the process backend
        (it is pickled by reference; the graph never is).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        key = _fn_key(fn)
        items = self._work_items(len(payloads))
        backend = self._select_backend(key, graph, items)
        self._warmup = 0.0
        self._spinup = 0.0
        self._finish_backend = backend
        wall_start = time.perf_counter()
        try:
            if backend == "process":
                timed = self._map_process(fn, graph, payloads)
                backend = self._finish_backend  # degraded runs finish on threads
            else:
                timed = self._map_local(backend, fn, graph, payloads)
        except BaseException:
            # Failure path: never leave this graph's shared segments
            # behind, whatever the caller does with the exception.
            self._discard_shared(graph)
            raise
        wall = time.perf_counter() - wall_start
        self._record(key, backend, len(payloads), items, [t for _, t in timed], wall)
        return [r for r, _ in timed]

    # -- auto-mode selection -----------------------------------------------

    def _work_items(self, num_payloads: int) -> int:
        """Underlying work units a payload list covers.

        When the payloads came from the most recent :meth:`spans` call,
        the spans' item count is the honest work measure (a payload is a
        chunk, not a unit); otherwise each payload counts as one item.
        """
        if self._span_state is not None and self._span_state[1] == num_payloads:
            return self._span_state[0]
        return num_payloads

    def _peek_pool(self, backend: str) -> Optional[WorkerPool]:
        """The pool a backend *would* use, without creating one."""
        pool = self._pools.get(backend)
        if pool is None and self.reuse_pool:
            pool = pool_registry().get((backend, self.workers))
        return pool

    def _select_backend(self, key: str, graph: Graph, items: int) -> str:
        if self.backend != "auto":
            return self.backend
        allowed = ("serial", "thread") if self._degraded else BACKENDS
        indptr = getattr(graph, "indptr", None)
        indices = getattr(graph, "indices", None)
        num_vertices = int(getattr(graph, "num_vertices", 0) or 0)
        num_slots = int(indices.size) if indices is not None else 0
        graph_bytes = (indptr.nbytes if indptr is not None else 0) + (
            indices.nbytes if indices is not None else 0
        )
        warm = [
            backend
            for backend in ("thread", "process")
            if (pool := self._peek_pool(backend)) is not None and pool.warm
        ]
        process_pool = self._peek_pool("process")
        decision = self.cost_model.choose(
            key,
            items,
            self.workers,
            work_prior=self.cost_model.work_prior(num_vertices, num_slots, items),
            graph_bytes=graph_bytes,
            warm=warm,
            shared=process_pool is not None and process_pool.is_shared(graph),
            allowed=allowed,
        )
        self._c_auto.inc(backend=decision.backend)
        return decision.backend

    # -- resilient fan-out paths -------------------------------------------

    def _attempt_chunk(
        self, fn: Callable[[Graph, Any], Any], graph: Graph, payload: Any, index: int
    ) -> Tuple[Any, float, int]:
        """Run one chunk, re-dispatching past injected worker deaths.

        Serial/thread analogue of the process backend's pool rebuild:
        a crashed attempt costs nothing but time, the chunk is simply
        run again.  Returns ``(result, seconds, redispatches)``.
        """
        redispatches = 0
        while self.injector is not None and self.injector.take_worker_crash(index):
            redispatches += 1
        result, secs = _timed(fn, graph, payload)
        return result, secs, redispatches

    def _map_local(
        self,
        backend: str,
        fn: Callable[[Graph, Any], Any],
        graph: Graph,
        payloads: List[Any],
    ) -> List[Tuple[Any, float]]:
        indexed = list(enumerate(payloads))
        if backend == "serial":
            attempts = [self._attempt_chunk(fn, graph, p, i) for i, p in indexed]
        else:
            pool = self._thread_pool()
            attempts = list(
                pool.map(lambda ip: self._attempt_chunk(fn, graph, ip[1], ip[0]), indexed)
            )
        redispatched = sum(n for _, _, n in attempts)
        if redispatched:
            self._c_redispatched.inc(redispatched, backend=backend)
            self._recover_span(redispatched, rebuilt_pool=False)
        return [(r, s) for r, s, _ in attempts]

    def _map_process(
        self, fn: Callable[[Graph, Any], Any], graph: Graph, payloads: List[Any]
    ) -> List[Tuple[Any, float]]:
        n = len(payloads)
        timed: List[Optional[Tuple[Any, float]]] = [None] * n
        remaining = list(range(n))
        pool_losses = 0
        pool = self._pool_for("process")
        while remaining:
            handle = self._share(graph).handle
            fpool = pool.executor()
            self._absorb_spinup(pool, "process")
            futures: List[Tuple[int, Any]] = []
            failed: List[int] = []
            try:
                for i in remaining:
                    crash = (
                        self.injector is not None
                        and self.injector.take_worker_crash(i)
                    )
                    futures.append(
                        (i, fpool.submit(_process_task, handle, fn, payloads[i], crash))
                    )
            except BrokenExecutor:
                failed.extend(i for i in remaining
                              if i not in {j for j, _ in futures})
            for i, fut in futures:
                try:
                    timed[i] = fut.result()
                except BrokenExecutor:
                    failed.append(i)
            if not failed:
                break
            # A worker died and took the futures pool with it: respawn
            # the workers (the shared CSR stays mapped — rebuild never
            # re-copies) and re-dispatch the unfinished spans.
            pool_losses += 1
            self._c_pool_failures.inc()
            self._c_redispatched.inc(len(failed), backend="process")
            pool.rebuild()
            failed.sort()
            if pool_losses >= self.max_pool_failures:
                self._degrade()
                self._finish_backend = "thread"
                self._recover_span(len(failed), rebuilt_pool=False, degraded=True)
                tpool = self._thread_pool()
                for i, attempt in zip(
                    failed,
                    tpool.map(
                        lambda i: self._attempt_chunk(fn, graph, payloads[i], i),
                        failed,
                    ),
                ):
                    timed[i] = attempt[:2]
                break
            self._recover_span(len(failed), rebuilt_pool=True)
            remaining = failed
        assert all(t is not None for t in timed)
        return timed  # type: ignore[return-value]

    def _recover_span(
        self, redispatched: int, rebuilt_pool: bool, degraded: bool = False
    ) -> None:
        if self.tracer is None:
            return
        with self.tracer.span(
            "resilience.recover",
            engine="executor",
            backend=self.backend,
            redispatched=redispatched,
            rebuilt_pool=rebuilt_pool,
            degraded=degraded,
        ):
            pass

    def _degrade(self) -> None:
        """Give up on process workers; survive on threads instead."""
        self._degraded = True
        if self.backend == "process":
            self.backend = "thread"
        self._g_degraded.set(1, to="thread")
        self._g_workers.set(self.workers, backend=self.backend)

    # -- backend plumbing --------------------------------------------------

    def _pool_for(self, backend: str) -> WorkerPool:
        pool = self._pools.get(backend)
        if pool is None:
            if self.reuse_pool:
                pool = get_pool(backend, self.workers)
            else:
                pool = WorkerPool(backend, self.workers)
                self._private_pools.append(pool)
            self._pools[backend] = pool
        return pool

    def _absorb_spinup(self, pool: WorkerPool, backend: str) -> None:
        if pool.last_spinup_seconds:
            self._spinup += pool.last_spinup_seconds
            self._warmup += pool.last_spinup_seconds
            self._c_cold_starts.inc(backend=backend)

    def _thread_pool(self):
        pool = self._pool_for("thread")
        fpool = pool.executor()
        self._absorb_spinup(pool, "thread")
        return fpool

    def _share(self, graph: Graph) -> SharedGraph:
        """Publish ``graph`` to shared memory (once per pool + graph)."""
        pool = self._pool_for("process")
        already = pool.is_shared(graph)
        shared = pool.share(graph)
        if already:
            self._c_shm_reuses.inc()
        else:
            self._warmup += pool.last_share_seconds
            self._c_shm_shares.inc()
        self._g_shared.set(pool.shared_bytes)
        return shared

    def _discard_shared(self, graph: Graph) -> None:
        for pool in self._pools.values():
            if pool.backend == "process":
                pool.discard(graph)
                self._g_shared.set(pool.shared_bytes)

    def _record(
        self,
        key: str,
        backend: str,
        chunks: int,
        items: int,
        chunk_seconds: List[float],
        wall: float,
    ) -> None:
        busy = sum(chunk_seconds)
        warmup = self._warmup
        self._c_maps.inc()
        self._c_chunks.inc(chunks, backend=backend)
        self._c_busy.inc(busy, backend=backend)
        self._c_wall.inc(wall, backend=backend)
        if warmup > 0:
            self._c_warmup.inc(warmup, backend=backend)
        for sec in chunk_seconds:
            self._h_chunk.observe(sec, backend=backend)
        workers = 1 if backend == "serial" else self.workers
        steady = max(wall - warmup, 0.0)
        if steady > 0:
            self._g_efficiency.set(
                min(1.0, busy / (steady * workers)), backend=backend
            )
        self._last_backend = backend
        if self.cost_model is not None:
            self.cost_model.observe(
                key,
                backend,
                items=items,
                busy=busy,
                wall=wall,
                warmup=warmup,
                spinup=self._spinup,
            )

    @property
    def efficiency(self) -> float:
        """The ``parallel.efficiency`` gauge for the last backend used."""
        return float(self._g_efficiency.value(backend=self._last_backend))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release this executor's pools (idempotent).

        Private pools (``reuse_pool=False``) are shut down and their
        shared segments unlinked.  Borrowed registry pools are left warm
        on purpose — that is the amortization; the registry's atexit
        hook (and the shm ``_LIVE`` sweep) guarantee teardown at
        interpreter exit.
        """
        for pool in self._private_pools:
            pool.close()
        self._private_pools = []
        self._pools = {}

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelExecutor(backend={self.backend!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size})"
        )
