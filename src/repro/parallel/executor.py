"""The executor abstraction: one fan-out API, three backends.

``ParallelExecutor.map_graph(fn, graph, payloads)`` applies a
module-level function ``fn(graph, payload)`` to every payload and
returns the results in order.  The backend decides what that costs:

* ``serial`` — a plain loop in the calling process (the reference
  semantics every other backend must reproduce bit-for-bit);
* ``thread`` — a ``ThreadPoolExecutor``; useful when ``fn`` spends its
  time in numpy kernels that release the GIL;
* ``process`` — a ``ProcessPoolExecutor`` where the graph is shared
  zero-copy through :mod:`repro.parallel.shm`: workers attach the CSR
  segments once and every task ships only its payload (a chunk
  descriptor, not the graph).

Determinism contract: callers split work with the chunking policy of
:mod:`repro.parallel.chunking` and reduce results *in payload order*.
Because the chunk structure — not the backend — fixes the computation
graph, every backend produces identical output (see DESIGN.md).

The executor meters itself into a :class:`~repro.obs.MetricsRegistry`
(``parallel.*``): per-worker busy seconds, chunk latency histogram, and
the ``parallel.efficiency`` gauge ``busy / (wall * workers)`` — 1.0
means perfect scaling, 1/workers means the fan-out bought nothing.

Crash tolerance: chunks are pure functions of ``(graph, payload)``, so
a dead worker costs work, never answers.  When a process worker dies —
organically (``BrokenProcessPool``) or under an injected
:class:`~repro.resilience.FaultPlan` — the executor rebuilds the pool
and re-dispatches the unfinished ``(lo, hi)`` spans to the survivors;
after ``max_pool_failures`` pool losses in one fan-out it degrades the
backend to ``thread`` and finishes there.  Shared-memory segments are
unlinked on every failure path.  Recovery is metered under
``resilience.*`` (re-dispatched chunks, pool failures, degradations)
and traced as ``resilience.recover`` spans.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..graph.csr import Graph
from ..obs import MetricsRegistry, Tracer
from ..resilience import FaultInjector
from .chunking import chunk_spans, default_chunk_size
from .shm import SharedGraph, attach_graph

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "available_workers",
    "resolve_backend",
    "resolve_workers",
]

BACKENDS = ("serial", "thread", "process")

#: Environment knobs: ``REPRO_BACKEND`` picks the default backend,
#: ``REPRO_WORKERS`` the default worker count.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"


def available_workers() -> int:
    """Usable CPUs (cgroup/affinity-aware where the platform allows)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_backend(backend: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_BACKEND``, else ``serial``."""
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "serial")
    backend = backend.lower()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_WORKERS``, else all CPUs."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        workers = int(env) if env else available_workers()
    if workers < 1:
        raise ValueError("need at least one worker")
    return workers


def _timed(fn: Callable[[Graph, Any], Any], graph: Graph, payload: Any):
    start = time.perf_counter()
    result = fn(graph, payload)
    return result, time.perf_counter() - start


def _process_task(handle, fn, payload, crash=False):
    """Process-backend task: reattach the shared graph, run the chunk.

    ``crash=True`` is the injected worker death: the child exits hard
    (no exception back, no cleanup), which surfaces in the parent as the
    genuine ``BrokenProcessPool`` a production failure produces.
    """
    if crash:
        os._exit(3)
    graph = attach_graph(handle)
    return _timed(fn, graph, payload)


class ParallelExecutor:
    """Backend-selectable fan-out over an immutable graph.

    Parameters
    ----------
    backend:
        ``serial`` / ``thread`` / ``process``; ``None`` consults
        ``$REPRO_BACKEND``.
    workers:
        Worker count; ``None`` consults ``$REPRO_WORKERS`` then the CPU
        count.  The serial backend always reports 1.
    chunk_size:
        Default chunk size for :meth:`spans`; ``None`` derives one from
        the item count and worker count (the shared chunking policy).
    obs:
        Optional shared :class:`~repro.obs.MetricsRegistry` receiving the
        ``parallel.*`` metrics (private registry when omitted).
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; its
        ``crash_worker(chunk=c)`` faults kill the worker executing
        payload index ``c`` (a real ``os._exit`` under the process
        backend, a re-dispatched attempt under serial/thread).
    tracer:
        Optional :class:`~repro.obs.Tracer`; every recovery wave is
        recorded as a ``resilience.recover`` span.
    max_pool_failures:
        Pool losses tolerated within one fan-out before the executor
        degrades the backend to ``thread`` for the rest of its life.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        obs: Optional[MetricsRegistry] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        max_pool_failures: int = 2,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)
        self.chunk_size = chunk_size
        self.obs = obs if obs is not None else MetricsRegistry()
        self.injector = injector
        self.tracer = tracer
        self.max_pool_failures = max_pool_failures
        self._pool: Optional[_FuturesExecutor] = None
        self._shared: Optional[SharedGraph] = None
        # Strong reference, not an id(): ids are reused after gc, which
        # would let a dead graph's shared segments serve a new graph.
        self._shared_graph: Optional[Graph] = None
        self._c_maps = self.obs.counter("parallel.maps", "map_graph fan-outs issued")
        self._c_chunks = self.obs.counter("parallel.chunks", "chunk tasks executed")
        self._c_busy = self.obs.counter(
            "parallel.busy_seconds", "summed in-chunk compute seconds"
        )
        self._c_wall = self.obs.counter(
            "parallel.wall_seconds", "wall seconds spent inside map_graph"
        )
        self._h_chunk = self.obs.histogram(
            "parallel.chunk_seconds",
            "per-chunk latency (seconds)",
            buckets=tuple(10.0 ** e for e in range(-6, 3)),
        )
        self._g_workers = self.obs.gauge("parallel.workers", "configured workers")
        self._g_efficiency = self.obs.gauge(
            "parallel.efficiency", "busy / (wall * workers) of the last fan-out"
        )
        self._g_shared = self.obs.gauge(
            "parallel.shared_bytes", "bytes of CSR state in shared memory"
        )
        self._c_redispatched = self.obs.counter(
            "resilience.redispatched_chunks",
            "chunk spans re-dispatched after a worker death",
        )
        self._c_pool_failures = self.obs.counter(
            "resilience.pool_failures", "process pools lost and rebuilt"
        )
        self._g_degraded = self.obs.gauge(
            "resilience.degraded",
            "1 once the executor fell back to a weaker backend",
        )
        self._g_workers.set(self.workers, backend=self.backend)

    # -- chunking ----------------------------------------------------------

    def spans(self, num_items: int):
        """Contiguous ``(lo, hi)`` chunks under this executor's policy."""
        return chunk_spans(num_items, self.chunk_size, self.workers)

    def effective_chunk_size(self, num_items: int) -> int:
        return (
            self.chunk_size
            if self.chunk_size is not None
            else default_chunk_size(num_items, self.workers)
        )

    # -- fan-out -----------------------------------------------------------

    def map_graph(
        self,
        fn: Callable[[Graph, Any], Any],
        graph: Graph,
        payloads: Sequence[Any],
    ) -> List[Any]:
        """Apply ``fn(graph, payload)`` per payload; results in order.

        ``fn`` must be a module-level function for the process backend
        (it is pickled by reference; the graph never is).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        wall_start = time.perf_counter()
        try:
            if self.backend == "process":
                timed = self._map_process(fn, graph, payloads)
            else:
                timed = self._map_local(fn, graph, payloads)
        except BaseException:
            # Failure path: never leave shared segments behind, whatever
            # the caller does with the exception.
            self._release_shared()
            raise
        wall = time.perf_counter() - wall_start
        self._record(len(payloads), [t for _, t in timed], wall)
        return [r for r, _ in timed]

    # -- resilient fan-out paths -------------------------------------------

    def _attempt_chunk(
        self, fn: Callable[[Graph, Any], Any], graph: Graph, payload: Any, index: int
    ) -> Tuple[Any, float, int]:
        """Run one chunk, re-dispatching past injected worker deaths.

        Serial/thread analogue of the process backend's pool rebuild:
        a crashed attempt costs nothing but time, the chunk is simply
        run again.  Returns ``(result, seconds, redispatches)``.
        """
        redispatches = 0
        while self.injector is not None and self.injector.take_worker_crash(index):
            redispatches += 1
        result, secs = _timed(fn, graph, payload)
        return result, secs, redispatches

    def _map_local(
        self, fn: Callable[[Graph, Any], Any], graph: Graph, payloads: List[Any]
    ) -> List[Tuple[Any, float]]:
        indexed = list(enumerate(payloads))
        if self.backend == "serial":
            attempts = [self._attempt_chunk(fn, graph, p, i) for i, p in indexed]
        else:
            pool = self._thread_pool()
            attempts = list(
                pool.map(lambda ip: self._attempt_chunk(fn, graph, ip[1], ip[0]), indexed)
            )
        redispatched = sum(n for _, _, n in attempts)
        if redispatched:
            self._c_redispatched.inc(redispatched, backend=self.backend)
            self._recover_span(redispatched, rebuilt_pool=False)
        return [(r, s) for r, s, _ in attempts]

    def _map_process(
        self, fn: Callable[[Graph, Any], Any], graph: Graph, payloads: List[Any]
    ) -> List[Tuple[Any, float]]:
        n = len(payloads)
        timed: List[Optional[Tuple[Any, float]]] = [None] * n
        remaining = list(range(n))
        pool_losses = 0
        while remaining:
            handle = self._share(graph).handle
            pool = self._process_pool()
            futures: List[Tuple[int, Any]] = []
            failed: List[int] = []
            try:
                for i in remaining:
                    crash = (
                        self.injector is not None
                        and self.injector.take_worker_crash(i)
                    )
                    futures.append(
                        (i, pool.submit(_process_task, handle, fn, payloads[i], crash))
                    )
            except BrokenExecutor:
                failed.extend(i for i in remaining
                              if i not in {j for j, _ in futures})
            for i, fut in futures:
                try:
                    timed[i] = fut.result()
                except BrokenExecutor:
                    failed.append(i)
            if not failed:
                break
            # A worker died and took the pool with it: rebuild and
            # re-dispatch the spans it left unfinished.
            pool_losses += 1
            self._c_pool_failures.inc()
            self._c_redispatched.inc(len(failed), backend="process")
            self._teardown_pool()
            failed.sort()
            if pool_losses >= self.max_pool_failures:
                self._degrade_to_thread()
                self._recover_span(len(failed), rebuilt_pool=False, degraded=True)
                pool = self._thread_pool()
                for i, attempt in zip(
                    failed,
                    pool.map(
                        lambda i: self._attempt_chunk(fn, graph, payloads[i], i),
                        failed,
                    ),
                ):
                    timed[i] = attempt[:2]
                break
            self._recover_span(len(failed), rebuilt_pool=True)
            remaining = failed
        assert all(t is not None for t in timed)
        return timed  # type: ignore[return-value]

    def _recover_span(
        self, redispatched: int, rebuilt_pool: bool, degraded: bool = False
    ) -> None:
        if self.tracer is None:
            return
        with self.tracer.span(
            "resilience.recover",
            engine="executor",
            backend=self.backend,
            redispatched=redispatched,
            rebuilt_pool=rebuilt_pool,
            degraded=degraded,
        ):
            pass

    def _degrade_to_thread(self) -> None:
        """Give up on process workers; survive on threads instead."""
        self._release_shared()
        self.backend = "thread"
        self._g_degraded.set(1, to="thread")
        self._g_workers.set(self.workers, backend=self.backend)

    # -- backend plumbing --------------------------------------------------

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool  # type: ignore[return-value]

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool  # type: ignore[return-value]

    def _share(self, graph: Graph) -> SharedGraph:
        """Publish ``graph`` to shared memory (cached across fan-outs)."""
        if self._shared is not None and self._shared_graph is graph:
            return self._shared
        if self._shared is not None:
            self._shared.close()
        self._shared = SharedGraph(graph)
        self._shared_graph = graph
        self._g_shared.set(self._shared.nbytes)
        return self._shared

    def _record(self, chunks: int, chunk_seconds: List[float], wall: float) -> None:
        busy = sum(chunk_seconds)
        self._c_maps.inc()
        self._c_chunks.inc(chunks, backend=self.backend)
        self._c_busy.inc(busy, backend=self.backend)
        self._c_wall.inc(wall, backend=self.backend)
        for sec in chunk_seconds:
            self._h_chunk.observe(sec, backend=self.backend)
        if wall > 0:
            self._g_efficiency.set(
                min(1.0, busy / (wall * self.workers)), backend=self.backend
            )

    @property
    def efficiency(self) -> float:
        """The ``parallel.efficiency`` gauge for this backend."""
        return float(self._g_efficiency.value(backend=self.backend))

    # -- lifecycle ---------------------------------------------------------

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _release_shared(self) -> None:
        if self._shared is not None:
            self._shared.close()
            self._shared = None
            self._shared_graph = None
            self._g_shared.set(0)

    def close(self) -> None:
        """Shut the pool down and unlink shared segments (idempotent)."""
        self._teardown_pool()
        self._release_shared()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelExecutor(backend={self.backend!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size})"
        )
