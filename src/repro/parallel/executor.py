"""The executor abstraction: one fan-out API, three backends.

``ParallelExecutor.map_graph(fn, graph, payloads)`` applies a
module-level function ``fn(graph, payload)`` to every payload and
returns the results in order.  The backend decides what that costs:

* ``serial`` — a plain loop in the calling process (the reference
  semantics every other backend must reproduce bit-for-bit);
* ``thread`` — a ``ThreadPoolExecutor``; useful when ``fn`` spends its
  time in numpy kernels that release the GIL;
* ``process`` — a ``ProcessPoolExecutor`` where the graph is shared
  zero-copy through :mod:`repro.parallel.shm`: workers attach the CSR
  segments once and every task ships only its payload (a chunk
  descriptor, not the graph).

Determinism contract: callers split work with the chunking policy of
:mod:`repro.parallel.chunking` and reduce results *in payload order*.
Because the chunk structure — not the backend — fixes the computation
graph, every backend produces identical output (see DESIGN.md).

The executor meters itself into a :class:`~repro.obs.MetricsRegistry`
(``parallel.*``): per-worker busy seconds, chunk latency histogram, and
the ``parallel.efficiency`` gauge ``busy / (wall * workers)`` — 1.0
means perfect scaling, 1/workers means the fan-out bought nothing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

from ..graph.csr import Graph
from ..obs import MetricsRegistry
from .chunking import chunk_spans, default_chunk_size
from .shm import SharedGraph, attach_graph

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "available_workers",
    "resolve_backend",
    "resolve_workers",
]

BACKENDS = ("serial", "thread", "process")

#: Environment knobs: ``REPRO_BACKEND`` picks the default backend,
#: ``REPRO_WORKERS`` the default worker count.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"


def available_workers() -> int:
    """Usable CPUs (cgroup/affinity-aware where the platform allows)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_backend(backend: Optional[str] = None) -> str:
    """Explicit argument, else ``$REPRO_BACKEND``, else ``serial``."""
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "serial")
    backend = backend.lower()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    return backend


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_WORKERS``, else all CPUs."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        workers = int(env) if env else available_workers()
    if workers < 1:
        raise ValueError("need at least one worker")
    return workers


def _timed(fn: Callable[[Graph, Any], Any], graph: Graph, payload: Any):
    start = time.perf_counter()
    result = fn(graph, payload)
    return result, time.perf_counter() - start


def _process_task(handle, fn, payload):
    """Process-backend task: reattach the shared graph, run the chunk."""
    graph = attach_graph(handle)
    return _timed(fn, graph, payload)


class ParallelExecutor:
    """Backend-selectable fan-out over an immutable graph.

    Parameters
    ----------
    backend:
        ``serial`` / ``thread`` / ``process``; ``None`` consults
        ``$REPRO_BACKEND``.
    workers:
        Worker count; ``None`` consults ``$REPRO_WORKERS`` then the CPU
        count.  The serial backend always reports 1.
    chunk_size:
        Default chunk size for :meth:`spans`; ``None`` derives one from
        the item count and worker count (the shared chunking policy).
    obs:
        Optional shared :class:`~repro.obs.MetricsRegistry` receiving the
        ``parallel.*`` metrics (private registry when omitted).
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.workers = 1 if self.backend == "serial" else resolve_workers(workers)
        self.chunk_size = chunk_size
        self.obs = obs if obs is not None else MetricsRegistry()
        self._pool: Optional[_FuturesExecutor] = None
        self._shared: Optional[SharedGraph] = None
        # Strong reference, not an id(): ids are reused after gc, which
        # would let a dead graph's shared segments serve a new graph.
        self._shared_graph: Optional[Graph] = None
        self._c_maps = self.obs.counter("parallel.maps", "map_graph fan-outs issued")
        self._c_chunks = self.obs.counter("parallel.chunks", "chunk tasks executed")
        self._c_busy = self.obs.counter(
            "parallel.busy_seconds", "summed in-chunk compute seconds"
        )
        self._c_wall = self.obs.counter(
            "parallel.wall_seconds", "wall seconds spent inside map_graph"
        )
        self._h_chunk = self.obs.histogram(
            "parallel.chunk_seconds",
            "per-chunk latency (seconds)",
            buckets=tuple(10.0 ** e for e in range(-6, 3)),
        )
        self._g_workers = self.obs.gauge("parallel.workers", "configured workers")
        self._g_efficiency = self.obs.gauge(
            "parallel.efficiency", "busy / (wall * workers) of the last fan-out"
        )
        self._g_shared = self.obs.gauge(
            "parallel.shared_bytes", "bytes of CSR state in shared memory"
        )
        self._g_workers.set(self.workers, backend=self.backend)

    # -- chunking ----------------------------------------------------------

    def spans(self, num_items: int):
        """Contiguous ``(lo, hi)`` chunks under this executor's policy."""
        return chunk_spans(num_items, self.chunk_size, self.workers)

    def effective_chunk_size(self, num_items: int) -> int:
        return (
            self.chunk_size
            if self.chunk_size is not None
            else default_chunk_size(num_items, self.workers)
        )

    # -- fan-out -----------------------------------------------------------

    def map_graph(
        self,
        fn: Callable[[Graph, Any], Any],
        graph: Graph,
        payloads: Sequence[Any],
    ) -> List[Any]:
        """Apply ``fn(graph, payload)`` per payload; results in order.

        ``fn`` must be a module-level function for the process backend
        (it is pickled by reference; the graph never is).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        wall_start = time.perf_counter()
        if self.backend == "serial":
            timed = [_timed(fn, graph, p) for p in payloads]
        elif self.backend == "thread":
            pool = self._thread_pool()
            timed = list(pool.map(lambda p: _timed(fn, graph, p), payloads))
        else:
            handle = self._share(graph).handle
            pool = self._process_pool()
            timed = list(
                pool.map(_process_task, *zip(*[(handle, fn, p) for p in payloads]))
            )
        wall = time.perf_counter() - wall_start
        self._record(len(payloads), [t for _, t in timed], wall)
        return [r for r, _ in timed]

    # -- backend plumbing --------------------------------------------------

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool  # type: ignore[return-value]

    def _process_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool  # type: ignore[return-value]

    def _share(self, graph: Graph) -> SharedGraph:
        """Publish ``graph`` to shared memory (cached across fan-outs)."""
        if self._shared is not None and self._shared_graph is graph:
            return self._shared
        if self._shared is not None:
            self._shared.close()
        self._shared = SharedGraph(graph)
        self._shared_graph = graph
        self._g_shared.set(self._shared.nbytes)
        return self._shared

    def _record(self, chunks: int, chunk_seconds: List[float], wall: float) -> None:
        busy = sum(chunk_seconds)
        self._c_maps.inc()
        self._c_chunks.inc(chunks, backend=self.backend)
        self._c_busy.inc(busy, backend=self.backend)
        self._c_wall.inc(wall, backend=self.backend)
        for sec in chunk_seconds:
            self._h_chunk.observe(sec, backend=self.backend)
        if wall > 0:
            self._g_efficiency.set(
                min(1.0, busy / (wall * self.workers)), backend=self.backend
            )

    @property
    def efficiency(self) -> float:
        """The ``parallel.efficiency`` gauge for this backend."""
        return float(self._g_efficiency.value(backend=self.backend))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and unlink shared segments (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None
            self._shared_graph = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelExecutor(backend={self.backend!r}, workers={self.workers}, "
            f"chunk_size={self.chunk_size})"
        )
