"""Real multicore execution: executors, shared-memory CSR, chunking.

Until this package the library *simulated* parallelism (the TLAG engine
advances virtual worker clocks).  ``repro.parallel`` runs the same
workloads on actual cores:

* :class:`ParallelExecutor` — one ``map_graph(fn, graph, payloads)``
  fan-out API over ``serial`` / ``thread`` / ``process`` backends,
  selectable per call site or globally via ``$REPRO_BACKEND`` /
  ``$REPRO_WORKERS``;
* :mod:`~repro.parallel.shm` — the process backend shares the immutable
  CSR arrays zero-copy through ``multiprocessing.shared_memory`` instead
  of pickling the graph into every task;
* :mod:`~repro.parallel.chunking` — the chunking policy shared with the
  TLAG task engine (one knob for bench C4 and the real backend).

Hot paths accept an ``executor=``:
``repro.matching.count_matches`` / ``triangle_count`` fan out over root
chunks, and ``repro.tlav.vectorized.pagerank_dense`` partitions vertex
ranges per superstep.  Results are backend-independent by construction
(chunk-deterministic reduction; see DESIGN.md, *Parallel execution*).
"""

from .chunking import chunk_list, chunk_spans, default_chunk_size
from .executor import (
    BACKENDS,
    ParallelExecutor,
    available_workers,
    resolve_backend,
    resolve_workers,
)
from .shm import SharedGraph, SharedGraphHandle, attach_graph

__all__ = [
    "BACKENDS",
    "ParallelExecutor",
    "SharedGraph",
    "SharedGraphHandle",
    "attach_graph",
    "available_workers",
    "chunk_list",
    "chunk_spans",
    "default_chunk_size",
    "resolve_backend",
    "resolve_workers",
]
