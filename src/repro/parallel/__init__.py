"""Real multicore execution: executors, shared-memory CSR, chunking.

Until this package the library *simulated* parallelism (the TLAG engine
advances virtual worker clocks).  ``repro.parallel`` runs the same
workloads on actual cores:

* :class:`ParallelExecutor` — one ``map_graph(fn, graph, payloads)``
  fan-out API over ``serial`` / ``thread`` / ``process`` backends plus
  the calibrated ``auto`` default, selectable per call site or globally
  via ``$REPRO_BACKEND`` / ``$REPRO_WORKERS``;
* :mod:`~repro.parallel.pool` — long-lived :class:`WorkerPool` registry:
  warm futures pools and once-per-(pool, graph) shared-memory CSR
  copies, amortized across fan-outs and executors;
* :mod:`~repro.parallel.costmodel` — the :class:`CostModel` behind
  ``backend="auto"``: per-backend overhead constants x a work estimate
  from vertex/edge counts, self-tuned online from fan-out telemetry;
* :mod:`~repro.parallel.shm` — the process backend shares the immutable
  CSR arrays zero-copy through ``multiprocessing.shared_memory`` instead
  of pickling the graph into every task;
* :mod:`~repro.parallel.chunking` — the chunking policy shared with the
  TLAG task engine (one knob for bench C4 and the real backend).

Hot paths accept an ``executor=``:
``repro.matching.count_matches`` / ``triangle_count`` fan out over root
chunks, and ``repro.tlav.vectorized.pagerank_dense`` partitions vertex
ranges per superstep.  Results are backend-independent by construction
(chunk-deterministic reduction; see DESIGN.md, *Parallel execution*).
"""

from .chunking import chunk_list, chunk_spans, default_chunk_size
from .costmodel import CostModel, Decision, default_cost_model, reset_default_cost_model
from .executor import (
    BACKENDS,
    ParallelExecutor,
    available_workers,
    resolve_backend,
    resolve_workers,
)
from .pool import WorkerPool, get_pool, pool_registry, shutdown_pools
from .shm import SharedGraph, SharedGraphHandle, attach_graph

__all__ = [
    "BACKENDS",
    "CostModel",
    "Decision",
    "ParallelExecutor",
    "SharedGraph",
    "SharedGraphHandle",
    "WorkerPool",
    "attach_graph",
    "available_workers",
    "chunk_list",
    "chunk_spans",
    "default_chunk_size",
    "default_cost_model",
    "get_pool",
    "pool_registry",
    "reset_default_cost_model",
    "resolve_backend",
    "resolve_workers",
    "shutdown_pools",
]
