"""Calibrated backend selection for ``backend="auto"`` fan-outs.

The survey's recurring lesson is that no single execution strategy wins
across workloads: process pools amortize beautifully on big fan-outs and
drown small ones in spawn/pickle overhead (bench C17's seed artifact
shows exactly that).  :class:`CostModel` makes the choice per call from
a classical analytical model —

    cost(backend) = fixed setup not yet amortized        (pool spin-up,
                    + CSR publish for unshared graphs)    per-call share)
                    + items x per-item seconds            (work / speedup
                    + items x dispatch overhead           + task overhead)

— whose constants start from conservative priors and are **self-tuned
online**: every ``map_graph`` feeds the same busy/wall/warm-up numbers
it meters into the ``parallel.*`` registry back into the model, which
keeps exponentially-weighted moving averages per ``(fn, backend)`` pair.
The first call on an uncalibrated workload therefore runs serial (the
priors make parallel backends earn their keep), and subsequent calls
switch as soon as the measured rates justify it.

Everything here is pure arithmetic over recorded state: given the same
observation history, :meth:`choose` is deterministic (ties break toward
the cheaper backend in ``serial < thread < process`` order), which is
what the auto-mode determinism tests pin.

The work prior scales with the graph: ``num_edge_slots`` x a per-edge
constant plus a per-vertex constant, matching how every fan-out in the
library walks CSR ranges.  Calibration replaces the prior after one
observation per ``fn`` key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .chunking import default_chunk_size

__all__ = ["CostModel", "Decision", "default_cost_model", "reset_default_cost_model"]

#: Tie-break order: when estimates are equal, prefer the simpler backend.
BACKEND_ORDER = ("serial", "thread", "process")

#: Target wall seconds of work per chunk once calibrated — enough to
#: amortize dispatch, small enough to keep the makespan balanced.
TARGET_CHUNK_SECONDS = 2e-3


@dataclass(frozen=True)
class Decision:
    """One auto-mode choice: the winner plus the estimates behind it."""

    backend: str
    estimates: Dict[str, float] = field(default_factory=dict)
    calibrated: bool = False


class CostModel:
    """Per-backend cost estimates, self-tuned from fan-out telemetry."""

    #: Pool spin-up seconds when the pool is cold (EWMA-updated online).
    SPINUP = {"serial": 0.0, "thread": 2e-3, "process": 2.5e-1}
    #: Per-task dispatch overhead seconds (submit + pickle payload + IPC).
    CHUNK_OVERHEAD = {"serial": 2e-6, "thread": 2e-4, "process": 1.5e-3}
    #: Shared-memory publish throughput for unshared graphs (bytes/sec).
    SHARE_BYTES_PER_SECOND = 1.5e9
    #: Fraction of the work a backend can actually overlap (Amdahl knob):
    #: threads are GIL-bound outside numpy kernels, processes nearly not.
    PARALLEL_FRACTION = {"thread": 0.35, "process": 0.9}
    #: Work prior: seconds per CSR edge slot / per vertex before any
    #: observation exists for a fn key.
    SECONDS_PER_EDGE = 5e-8
    SECONDS_PER_VERTEX = 1e-7

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: (fn key, backend) -> EWMA wall seconds per work item (all-in:
        #: includes dispatch overhead at the chunking actually used).
        self._wall_per_item: Dict[Tuple[str, str], float] = {}
        #: fn key -> EWMA serial-equivalent compute seconds per work item.
        self._work_per_item: Dict[str, float] = {}
        #: Global per-item compute rate (chunk-size selection fallback).
        self._unit_cost: Optional[float] = None
        #: backend -> EWMA observed cold spin-up seconds.
        self._spinup: Dict[str, float] = dict(self.SPINUP)
        self.observations = 0

    # -- estimation --------------------------------------------------------

    def work_prior(self, num_vertices: int, num_edge_slots: int, items: int) -> float:
        """Prior per-item serial seconds from the graph's size.

        ``items`` is the number of work units the fan-out covers
        (vertices for span fan-outs, payloads otherwise); the prior
        spreads the whole-graph estimate across them.
        """
        total = (
            num_vertices * self.SECONDS_PER_VERTEX
            + num_edge_slots * self.SECONDS_PER_EDGE
        )
        return max(total / max(1, items), 1e-9)

    def estimate(
        self,
        key: str,
        backend: str,
        items: int,
        workers: int,
        *,
        work_prior: float,
        warm: bool = False,
        shared: bool = False,
        graph_bytes: int = 0,
    ) -> float:
        """Predicted wall seconds for running ``items`` on ``backend``."""
        measured = self._wall_per_item.get((key, backend))
        work = self._work_per_item.get(key, work_prior)
        fixed = 0.0
        if backend != "serial" and not warm:
            fixed += self._spinup[backend]
        if backend == "process" and not shared:
            fixed += graph_bytes / self.SHARE_BYTES_PER_SECOND
        if measured is not None:
            return fixed + items * measured
        if backend == "serial":
            return items * (work + self.CHUNK_OVERHEAD["serial"])
        frac = self.PARALLEL_FRACTION[backend]
        speedup_factor = (1.0 - frac) + frac / max(1, workers)
        per_item = work * speedup_factor + self.CHUNK_OVERHEAD[backend]
        return fixed + items * per_item

    def choose(
        self,
        key: str,
        items: int,
        workers: int,
        *,
        work_prior: float,
        graph_bytes: int = 0,
        warm: Sequence[str] = (),
        shared: bool = False,
        allowed: Sequence[str] = BACKEND_ORDER,
    ) -> Decision:
        """Deterministic argmin over the allowed backends."""
        estimates = {
            backend: self.estimate(
                key,
                backend,
                items,
                workers,
                work_prior=work_prior,
                warm=backend in warm,
                shared=shared,
                graph_bytes=graph_bytes,
            )
            for backend in BACKEND_ORDER
            if backend in allowed
        }
        winner = min(estimates, key=lambda b: (estimates[b], BACKEND_ORDER.index(b)))
        calibrated = any((key, b) in self._wall_per_item for b in estimates)
        return Decision(backend=winner, estimates=estimates, calibrated=calibrated)

    # -- calibration -------------------------------------------------------

    def _ewma(self, old: Optional[float], new: float) -> float:
        if old is None:
            return new
        return (1.0 - self.alpha) * old + self.alpha * new

    def observe(
        self,
        key: str,
        backend: str,
        items: int,
        busy: float,
        wall: float,
        warmup: float = 0.0,
        spinup: float = 0.0,
    ) -> None:
        """Fold one fan-out's telemetry into the model.

        ``wall`` minus ``warmup`` is the steady-state cost a *warm*
        repeat of this call would pay — that is what the per-(fn,
        backend) rate tracks.  ``busy`` (summed in-chunk compute
        seconds) calibrates the serial-equivalent work rate; thread
        chunks inflate busy with GIL contention, so only serial and
        process runs update it.
        """
        if items <= 0 or wall < 0:
            return
        steady = max(wall - warmup, 0.0)
        rate_key = (key, backend)
        self._wall_per_item[rate_key] = self._ewma(
            self._wall_per_item.get(rate_key), steady / items
        )
        if backend in ("serial", "process") and busy > 0:
            per_item = busy / items
            self._work_per_item[key] = self._ewma(
                self._work_per_item.get(key), per_item
            )
            self._unit_cost = self._ewma(self._unit_cost, per_item)
        if spinup > 0 and backend in self._spinup:
            self._spinup[backend] = self._ewma(self._spinup[backend], spinup)
        self.observations += 1

    # -- chunk-size selection ----------------------------------------------

    def auto_chunk_size(self, num_items: int, workers: int) -> Optional[int]:
        """Chunk size targeting ``TARGET_CHUNK_SECONDS`` of work per chunk.

        ``None`` until calibrated (callers fall back to the default
        oversubscription policy).  Never chunks finer than the default
        policy, never coarser than one chunk per worker — so balance
        survives, only dispatch overhead shrinks.
        """
        if self._unit_cost is None or num_items <= 0:
            return None
        base = default_chunk_size(num_items, workers)
        target = int(math.ceil(TARGET_CHUNK_SECONDS / max(self._unit_cost, 1e-12)))
        per_worker = -(-num_items // max(1, workers))
        return max(1, min(max(base, target), per_worker))

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Model state for debugging / the CLI profile JSON."""
        return {
            "observations": self.observations,
            "unit_cost": self._unit_cost,
            "spinup": dict(self._spinup),
            "work_per_item": dict(self._work_per_item),
            "wall_per_item": {
                f"{key}|{backend}": rate
                for (key, backend), rate in self._wall_per_item.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(observations={self.observations})"


# ----------------------------------------------------------------------
# Process-wide default: calibration persists across executors in a
# session, so a bench's fixed-backend passes teach auto mode.
# ----------------------------------------------------------------------

_DEFAULT: Optional[CostModel] = None


def default_cost_model() -> CostModel:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CostModel()
    return _DEFAULT


def reset_default_cost_model() -> None:
    """Forget all calibration (tests; fresh-session semantics)."""
    global _DEFAULT
    _DEFAULT = None
