"""Long-lived worker pools with a per-(pool, graph) shared-memory registry.

Bench C17 showed the process backend losing to serial on every workload:
each ``ParallelExecutor`` spawned a fresh ``ProcessPoolExecutor`` and
re-published the CSR into shared memory per executor, so every fan-out
paid the full spawn + copy bill.  :class:`WorkerPool` amortizes both:

* the futures pool (thread or process) is created once and *kept warm*
  across ``map_graph`` calls, executors, and — through the module-level
  registry — across independent call sites that agree on
  ``(backend, workers)``;
* each graph's CSR is copied into ``multiprocessing.shared_memory``
  exactly once per (pool, graph) pair.  The registry is keyed by graph
  *identity* (with a strong reference held, so a collected graph's id
  cannot be reused to serve a different graph) and bounded by an LRU cap;
  evicted and discarded entries unlink their segments immediately.

Teardown rides the existing hygiene machinery: every
:class:`~repro.parallel.shm.SharedGraph` a pool owns is registered in
``shm._LIVE``, so the shm ``atexit`` sweep unlinks segments even if the
pool never reaches :meth:`WorkerPool.close`; a second ``atexit`` hook
(:func:`shutdown_pools`) drains the pool registry itself on interpreter
exit.  Crash recovery composes: :meth:`WorkerPool.rebuild` replaces only
the broken futures pool and keeps the shared segments, so a re-dispatch
after ``BrokenProcessPool`` does not re-copy the graph.
"""

from __future__ import annotations

import atexit
import time
from collections import OrderedDict
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..graph.csr import Graph
from .shm import SharedGraph

__all__ = [
    "MAX_SHARED_GRAPHS",
    "WorkerPool",
    "get_pool",
    "pool_registry",
    "shutdown_pools",
]

#: Shared-memory CSR copies one pool keeps live at once.  Benchmarks and
#: the check harness alternate between a handful of graphs; beyond that
#: the least-recently-shared graph's segments are unlinked.
MAX_SHARED_GRAPHS = 4


def _spinup_probe(seconds: float) -> bool:
    """No-op task used to force a cold process pool to spawn its workers."""
    time.sleep(seconds)
    return True


class WorkerPool:
    """One warm futures pool plus the graphs it has published to shm.

    Parameters
    ----------
    backend:
        ``thread`` or ``process`` (serial fan-outs never need a pool).
    workers:
        Worker count, fixed for the pool's lifetime.
    max_shared_graphs:
        LRU cap on concurrently shared graphs (process pools only).
    """

    def __init__(
        self, backend: str, workers: int, max_shared_graphs: int = MAX_SHARED_GRAPHS
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"WorkerPool backend must be thread|process, got {backend!r}")
        if workers < 1:
            raise ValueError("need at least one worker")
        self.backend = backend
        self.workers = workers
        self.max_shared_graphs = max_shared_graphs
        self._pool: Optional[_FuturesExecutor] = None
        # id(graph) -> (graph, shared); the strong graph reference keeps
        # the id from being recycled while the entry lives.
        self._graphs: "OrderedDict[int, Tuple[Graph, SharedGraph]]" = OrderedDict()
        self.cold_starts = 0
        self.shares = 0
        self.share_hits = 0
        self.last_spinup_seconds = 0.0
        self.last_share_seconds = 0.0

    # -- futures pool ------------------------------------------------------

    @property
    def warm(self) -> bool:
        """True when the futures pool is already spawned."""
        return self._pool is not None

    def executor(self) -> _FuturesExecutor:
        """The live futures pool, spawning (and pre-warming) it when cold.

        A cold process pool is forced to fork all its workers *now* via a
        barrier of no-op tasks, so spawn cost lands in the measured
        warm-up (``last_spinup_seconds``) instead of inflating the first
        fan-out's chunk latencies.
        """
        if self._pool is not None:
            self.last_spinup_seconds = 0.0
            return self._pool
        start = time.perf_counter()
        if self.backend == "thread":
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        else:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            barrier = [
                self._pool.submit(_spinup_probe, 0.001) for _ in range(self.workers)
            ]
            for fut in barrier:
                fut.result()
        self.cold_starts += 1
        self.last_spinup_seconds = time.perf_counter() - start
        return self._pool

    def rebuild(self) -> None:
        """Replace a broken futures pool; shared segments stay mapped.

        The crash-recovery path: after ``BrokenProcessPool`` the futures
        pool is garbage but the shm segments (owned by *this* process)
        are intact, so re-dispatch only pays worker respawn, not a CSR
        re-copy.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- shm registry ------------------------------------------------------

    def is_shared(self, graph: Graph) -> bool:
        entry = self._graphs.get(id(graph))
        return entry is not None and entry[0] is graph

    def share(self, graph: Graph) -> SharedGraph:
        """Publish ``graph`` to shared memory once per (pool, graph) pair.

        Repeat calls with the same graph object are registry hits: they
        return the existing :class:`SharedGraph` without copying a byte
        (``last_share_seconds`` reads 0).
        """
        key = id(graph)
        entry = self._graphs.get(key)
        if entry is not None and entry[0] is graph:
            self._graphs.move_to_end(key)
            self.share_hits += 1
            self.last_share_seconds = 0.0
            return entry[1]
        start = time.perf_counter()
        shared = SharedGraph(graph)
        self._graphs[key] = (graph, shared)
        self.shares += 1
        while len(self._graphs) > self.max_shared_graphs:
            _, (_, evicted) = self._graphs.popitem(last=False)
            evicted.close()
        self.last_share_seconds = time.perf_counter() - start
        return shared

    def discard(self, graph: Graph) -> None:
        """Unlink one graph's segments (failure paths; idempotent)."""
        entry = self._graphs.pop(id(graph), None)
        if entry is not None:
            entry[1].close()

    @property
    def shared_bytes(self) -> int:
        """Total shm bytes currently held for this pool's graphs."""
        return sum(shared.nbytes for _, shared in self._graphs.values())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the futures pool down and unlink every segment (idempotent)."""
        self.rebuild()
        while self._graphs:
            _, (_, shared) = self._graphs.popitem(last=False)
            shared.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkerPool(backend={self.backend!r}, workers={self.workers}, "
            f"warm={self.warm}, shared_graphs={len(self._graphs)})"
        )


# ----------------------------------------------------------------------
# Process-wide registry: executors borrow pools instead of owning them.
# ----------------------------------------------------------------------

_POOLS: Dict[Tuple[str, int], WorkerPool] = {}


def get_pool(backend: str, workers: int) -> WorkerPool:
    """The shared pool for ``(backend, workers)``, created on first use."""
    key = (backend, int(workers))
    pool = _POOLS.get(key)
    if pool is None:
        pool = WorkerPool(backend, int(workers))
        _POOLS[key] = pool
    return pool


def pool_registry() -> Dict[Tuple[str, int], WorkerPool]:
    """A snapshot view of the live pool registry (introspection/tests)."""
    return dict(_POOLS)


def shutdown_pools() -> None:
    """Close every registered pool and empty the registry (idempotent)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)
