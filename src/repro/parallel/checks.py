"""Differential checks for the real-multicore backend.

The design contract of :mod:`repro.parallel` is *backend independence*:
with the same chunking, serial / thread / process backends produce the
same bits, and per-worker stats folded with ``merge`` equal the serial
run's stats exactly (all counters are additive integers).  These checks
enforce that contract on random workloads, plus the chunk-span policy
invariant both the executor and the TLAG engine rely on.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..check.invariants import bounded_error, same_bits, same_stats, same_values
from ..check.registry import BIT_IDENTICAL, invariant, pair
from ..check.workloads import gen_graph_params, make_graph
from ..matching.backtrack import MatchStats, count_matches
from ..matching.pattern import triangle_pattern
from ..matching.triangles import triangle_count
from ..tlav.vectorized import pagerank_dense
from .chunking import chunk_spans
from .costmodel import CostModel
from .executor import ParallelExecutor


def _gen_parallel(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["workers"] = int(rng.integers(2, 5))
    params["chunk_size"] = int(rng.integers(1, 9))
    return params


@pair(
    "parallel.matching.thread_vs_serial", "parallel", BIT_IDENTICAL,
    gen=_gen_parallel, floors={"n": 4, "workers": 2, "chunk_size": 1},
    description="Root-chunked matching on the thread backend: same "
    "count and *exactly* the same merged work counters as the serial "
    "run (additive integers, no tolerance).",
)
def _check_matching_thread(params: Dict) -> List[str]:
    graph = make_graph(params)
    pattern = triangle_pattern()
    serial_stats = MatchStats()
    serial = count_matches(graph, pattern, stats=serial_stats)
    executor = ParallelExecutor(
        backend="thread",
        workers=int(params["workers"]),
        chunk_size=int(params["chunk_size"]),
    )
    try:
        threaded_stats = MatchStats()
        threaded = count_matches(
            graph, pattern, executor=executor, stats=threaded_stats
        )
    finally:
        executor.close()
    out = same_values(serial, threaded, "count")
    out += same_stats(serial_stats, threaded_stats, "match_stats")
    return out


def _gen_pagerank(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 80))
    params["workers"] = int(rng.integers(2, 5))
    params["chunk_size"] = int(rng.integers(4, 33))
    params["iterations"] = int(rng.integers(1, 13))
    return params


@pair(
    "parallel.pagerank_dense.thread_vs_serial", "parallel", BIT_IDENTICAL,
    gen=_gen_pagerank,
    floors={"n": 4, "workers": 2, "chunk_size": 1, "iterations": 1},
    description="Chunk-deterministic scatter reduction: with the same "
    "chunk_size, the thread backend reproduces the serial backend's "
    "bits exactly (partial vectors fold in chunk order); against the "
    "*unchunked* single-scatter path the sums re-associate, so that "
    "comparison is bounded-error only.",
)
def _check_pagerank_thread(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    chunk = int(params["chunk_size"])
    with ParallelExecutor(backend="serial", chunk_size=chunk) as serial:
        reference = pagerank_dense(graph, iterations=iters, executor=serial)
    with ParallelExecutor(
        backend="thread", workers=int(params["workers"]), chunk_size=chunk
    ) as threads:
        threaded = pagerank_dense(graph, iterations=iters, executor=threads)
    out = same_bits(reference, threaded, "pagerank")
    out += bounded_error(
        pagerank_dense(graph, iterations=iters), threaded, atol=1e-12,
        label="pagerank_vs_unchunked",
    )
    return out


def _gen_process(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(16, 64))
    params["workers"] = 2
    params["chunk_size"] = int(rng.integers(4, 17))
    return params


@pair(
    "parallel.triangles.process_vs_serial", "parallel", BIT_IDENTICAL,
    gen=_gen_process, floors={"n": 4, "workers": 2, "chunk_size": 1},
    suites=("full",),
    description="The process backend (shared-memory CSR, pickled "
    "payloads) counts the same triangles as serial; full suite only — "
    "pool spin-up dominates quick-gate latency.",
)
def _check_triangles_process(params: Dict) -> List[str]:
    graph = make_graph(params)
    reference = triangle_count(graph)
    executor = ParallelExecutor(
        backend="process",
        workers=int(params["workers"]),
        chunk_size=int(params["chunk_size"]),
    )
    try:
        parallel = triangle_count(graph, executor=executor)
    finally:
        executor.close()
    return same_values(reference, parallel, "triangles")


def _gen_auto(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["workers"] = int(rng.integers(2, 5))
    params["chunk_size"] = int(rng.integers(1, 9))
    params["repeats"] = int(rng.integers(1, 4))
    return params


@pair(
    "parallel.matching.auto_vs_serial", "parallel", BIT_IDENTICAL,
    gen=_gen_auto,
    floors={"n": 4, "workers": 2, "chunk_size": 1, "repeats": 1},
    description="backend='auto' keeps the backend-independence "
    "contract: whichever backend the cost model picks (and however "
    "calibration shifts the pick across repeated calls), counts and "
    "merged work counters equal the serial run's exactly.",
)
def _check_matching_auto(params: Dict) -> List[str]:
    graph = make_graph(params)
    pattern = triangle_pattern()
    out: List[str] = []
    serial_stats = MatchStats()
    serial = count_matches(graph, pattern, stats=serial_stats)
    # A fresh model per case: the oracle must hold from the uncalibrated
    # first call onward, not depend on ambient session history.
    executor = ParallelExecutor(
        backend="auto",
        workers=int(params["workers"]),
        chunk_size=int(params["chunk_size"]),
        cost_model=CostModel(),
        reuse_pool=False,
    )
    try:
        for rep in range(int(params["repeats"])):
            auto_stats = MatchStats()
            auto = count_matches(
                graph, pattern, executor=executor, stats=auto_stats
            )
            out += same_values(serial, auto, f"count[{rep}]")
            out += same_stats(serial_stats, auto_stats, f"match_stats[{rep}]")
    finally:
        executor.close()
    return out


def _gen_spans(rng: np.random.Generator) -> Dict:
    return {
        "num_items": int(rng.integers(0, 200)),
        "chunk_size": int(rng.integers(1, 17)),
        "workers": int(rng.integers(1, 9)),
    }


@invariant(
    "parallel.chunking.spans_cover", "parallel", gen=_gen_spans,
    floors={"num_items": 0, "chunk_size": 1, "workers": 1},
    description="chunk_spans partitions range(num_items) exactly: "
    "contiguous, disjoint, in order, nothing dropped — the property "
    "both the executor and crash re-dispatch assume.",
)
def _check_spans(params: Dict) -> List[str]:
    num_items = int(params["num_items"])
    spans = chunk_spans(
        num_items,
        chunk_size=int(params["chunk_size"]),
        workers=int(params["workers"]),
    )
    out: List[str] = []
    cursor = 0
    for lo, hi in spans:
        if lo != cursor:
            out.append(f"spans: gap or overlap at {lo} (expected {cursor})")
            break
        if hi <= lo:
            out.append(f"spans: empty or inverted span ({lo}, {hi})")
            break
        cursor = hi
    if not out and cursor != num_items:
        out.append(f"spans: cover {cursor} of {num_items} items")
    return out
