"""The chunking policy shared by every task fan-out in the library.

Root-level parallel matching, the dense TLAV vertex partitions, and the
TLAG task engine's initial deal all split an index range into contiguous
chunks.  Keeping the policy in one place means the work-stealing bench
(C4) and the real multicore backend turn the *same knob*: a chunk is the
unit a worker claims, so smaller chunks trade scheduling overhead for
balance exactly as task splitting does in the simulated engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TypeVar

__all__ = ["default_chunk_size", "chunk_spans", "chunk_list"]

T = TypeVar("T")

#: Chunks per worker the default policy aims for: enough surplus chunks
#: that the slowest chunk cannot dominate the makespan, few enough that
#: per-chunk dispatch cost stays negligible.
OVERSUBSCRIPTION = 4


def default_chunk_size(num_items: int, workers: int) -> int:
    """Chunk size giving each worker ~``OVERSUBSCRIPTION`` chunks."""
    if num_items <= 0:
        return 1
    target_chunks = max(1, workers) * OVERSUBSCRIPTION
    return max(1, -(-num_items // target_chunks))


def chunk_spans(
    num_items: int, chunk_size: Optional[int] = None, workers: int = 1
) -> List[Tuple[int, int]]:
    """Split ``range(num_items)`` into contiguous ``(lo, hi)`` spans."""
    if num_items <= 0:
        return []
    if chunk_size is None:
        chunk_size = default_chunk_size(num_items, workers)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (lo, min(lo + chunk_size, num_items))
        for lo in range(0, num_items, chunk_size)
    ]


def chunk_list(
    items: Sequence[T], chunk_size: Optional[int] = None, workers: int = 1
) -> List[List[T]]:
    """Split a concrete list of items along :func:`chunk_spans`."""
    return [list(items[lo:hi]) for lo, hi in chunk_spans(len(items), chunk_size, workers)]
