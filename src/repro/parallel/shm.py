"""Zero-copy sharing of the immutable CSR graph across processes.

The process backend's whole point is that the data graph is *not*
pickled into every task.  A :class:`SharedGraph` copies the graph's
arrays (``indptr``, ``indices``, optional vertex/edge labels) once into
``multiprocessing.shared_memory`` segments; workers receive only a tiny
:class:`SharedGraphHandle` (segment names + dtypes + shapes) and rebuild
a :class:`~repro.graph.csr.Graph` whose numpy arrays are *views over the
same physical pages*.  Attach cost is O(1) per worker regardless of
graph size, and the OS shares one copy among all workers — the
shared-memory analogue of G-thinker's "the data graph is partitioned
once, tasks carry only their frontier".

Lifecycle: the creating process owns the segments and must call
:meth:`SharedGraph.close` (or use it as a context manager) to unlink
them; workers attach read-only views cached per process and only ever
``close()`` their mapping.  Unlink is guaranteed even on ugly exits:
partially-built owners unlink what they managed to create, and an
``atexit`` guard sweeps any owner still live when the parent
interpreter dies (a crashed fan-out must not leave stale ``/dev/shm``
segments behind).
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.csr import Graph

__all__ = ["SharedGraph", "SharedGraphHandle", "attach_graph"]

# Every live owner, so the atexit sweep can unlink segments whose
# executor never reached close() (worker crash, KeyboardInterrupt, ...).
# A WeakSet: normal close() drops the owner and gc keeps the set tidy.
_LIVE: "weakref.WeakSet[SharedGraph]" = weakref.WeakSet()


@atexit.register
def _unlink_leaked_segments() -> None:  # pragma: no cover - exit path
    for owner in list(_LIVE):
        owner.close()


@dataclass(frozen=True)
class _ArraySpec:
    """Where one numpy array lives: segment name, dtype, and shape."""

    name: str
    dtype: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class SharedGraphHandle:
    """The picklable descriptor a worker needs to reattach the graph."""

    directed: bool
    arrays: Tuple[Tuple[str, _ArraySpec], ...]

    def cache_key(self) -> Tuple[str, ...]:
        return tuple(spec.name for _, spec in self.arrays)


class SharedGraph:
    """Owner-side wrapper: graph arrays copied into shared memory once."""

    def __init__(self, graph: Graph) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        arrays: List[Tuple[str, _ArraySpec]] = []
        fields: Dict[str, Optional[np.ndarray]] = {
            "indptr": graph.indptr,
            "indices": graph.indices,
            "vertex_labels": graph.vertex_labels,
            "edge_labels": graph.edge_labels,
        }
        try:
            for field_name, array in fields.items():
                if array is None:
                    continue
                array = np.ascontiguousarray(array)
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
                view[...] = array
                self._segments.append(seg)
                arrays.append(
                    (field_name, _ArraySpec(seg.name, str(array.dtype), array.shape))
                )
        except BaseException:
            # A half-built owner must not leak the segments it did create.
            self.close()
            raise
        self.handle = SharedGraphHandle(
            directed=graph.directed, arrays=tuple(arrays)
        )
        _LIVE.add(self)

    @property
    def nbytes(self) -> int:
        """Total shared bytes (what pickling would have copied per task)."""
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        _LIVE.discard(self)

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

# Per-process cache: one attached graph per handle.  A worker typically
# serves many chunks of the same run; attaching once per process is the
# zero-copy contract.
_ATTACHED: Dict[Tuple[str, ...], Tuple[Graph, List[shared_memory.SharedMemory]]] = {}


def attach_graph(handle: SharedGraphHandle) -> Graph:
    """Rebuild the shared :class:`Graph` inside a worker (cached)."""
    key = handle.cache_key()
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached[0]
    # A worker only ever serves one graph at a time; drop stale mappings.
    for old_key in list(_ATTACHED):
        _, old_segments = _ATTACHED.pop(old_key)
        for seg in old_segments:
            seg.close()
    segments: List[shared_memory.SharedMemory] = []
    views: Dict[str, np.ndarray] = {}
    for field_name, spec in handle.arrays:
        seg = shared_memory.SharedMemory(name=spec.name)
        segments.append(seg)
        views[field_name] = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
        )
    graph = Graph(
        views["indptr"],
        views["indices"],
        directed=handle.directed,
        vertex_labels=views.get("vertex_labels"),
        edge_labels=views.get("edge_labels"),
    )
    _ATTACHED[key] = (graph, segments)
    return graph
