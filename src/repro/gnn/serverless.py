"""Serverless GNN training economics (Dorylus).

Dorylus [39] splits GNN training between cheap CPU *graph servers*
(gather/scatter, which is memory-bound) and burstable **Lambda
threads** (the dense tensor ops), and argues this beats GPU instances
on *value per dollar*.  The headline numbers are an arithmetic over
cloud prices and measured op throughputs — exactly reproducible
offline.

:func:`estimate_costs` prices one training run under three deployments:

* ``gpu`` — GPU instances run everything;
* ``cpu`` — CPU instances run everything;
* ``cpu+lambda`` — CPU servers run graph ops; lambdas run tensor ops,
  overlapped with the graph stage (Dorylus's pipelining), with a
  per-invocation overhead.

Defaults approximate 2021 AWS prices (p3.2xlarge, c5.4xlarge, Lambda
GB-second) — the benches only use the *ratios*.  The GPU graph-op rate
is deliberately CPU-like: in Dorylus's setting the graph exceeds device
memory, so gathers pay host<->device transfer and are not accelerated.
Value-per-dollar = 1 / (makespan * dollars), Dorylus's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DeploymentCost", "Workload", "estimate_costs"]


@dataclass
class Workload:
    """Per-epoch op counts of a training job.

    ``graph_ops``: gather/scatter element ops; ``tensor_flops``: dense
    math; ``epochs``: how many epochs to price.
    """

    graph_ops: float
    tensor_flops: float
    epochs: int = 100


@dataclass
class DeploymentCost:
    """Time and money for one deployment option."""

    name: str
    time_seconds: float
    dollars: float

    @property
    def value_per_dollar(self) -> float:
        """Dorylus's metric: throughput per dollar (higher is better)."""
        if self.time_seconds <= 0 or self.dollars <= 0:
            return float("inf")
        return 1.0 / (self.time_seconds * self.dollars)


def estimate_costs(
    workload: Workload,
    gpu_tensor_flops_per_s: float = 15e12,
    gpu_graph_ops_per_s: float = 2e9,
    gpu_dollars_per_hour: float = 3.06,
    cpu_tensor_flops_per_s: float = 0.6e12,
    cpu_graph_ops_per_s: float = 2e9,
    cpu_dollars_per_hour: float = 0.68,
    lambda_tensor_flops_per_s: float = 0.08e12,
    lambda_dollars_per_gb_second: float = 0.0000166667,
    lambda_gb: float = 2.0,
    lambda_parallelism: int = 64,
    lambda_overhead_s: float = 0.010,
    lambda_invocations_per_epoch: int = 32,
) -> Dict[str, DeploymentCost]:
    """Price the workload under gpu / cpu / cpu+lambda deployments."""
    e = workload.epochs

    # --- GPU instances do everything.
    gpu_time = e * (
        workload.tensor_flops / gpu_tensor_flops_per_s
        + workload.graph_ops / gpu_graph_ops_per_s
    )
    gpu_cost = gpu_time / 3600.0 * gpu_dollars_per_hour

    # --- CPU instances do everything.
    cpu_time = e * (
        workload.tensor_flops / cpu_tensor_flops_per_s
        + workload.graph_ops / cpu_graph_ops_per_s
    )
    cpu_cost = cpu_time / 3600.0 * cpu_dollars_per_hour

    # --- CPU graph servers + lambda tensor ops, pipelined: the epoch
    # time is the max of the two stages (Dorylus overlaps them), plus
    # the invocation overhead of the lambda fleet.
    graph_stage = workload.graph_ops / cpu_graph_ops_per_s
    lambda_stage = (
        workload.tensor_flops
        / (lambda_tensor_flops_per_s * lambda_parallelism)
        + lambda_overhead_s * lambda_invocations_per_epoch / lambda_parallelism
    )
    hybrid_time = e * max(graph_stage, lambda_stage)
    lambda_busy_s = e * lambda_stage * lambda_parallelism
    hybrid_cost = (
        hybrid_time / 3600.0 * cpu_dollars_per_hour
        + lambda_busy_s * lambda_gb * lambda_dollars_per_gb_second
    )

    return {
        "gpu": DeploymentCost("gpu", gpu_time, gpu_cost),
        "cpu": DeploymentCost("cpu", cpu_time, cpu_cost),
        "cpu+lambda": DeploymentCost("cpu+lambda", hybrid_time, hybrid_cost),
    }
