"""Serverless GNN training economics (Dorylus).

Dorylus [39] splits GNN training between cheap CPU *graph servers*
(gather/scatter, which is memory-bound) and burstable **Lambda
threads** (the dense tensor ops), and argues this beats GPU instances
on *value per dollar*.  The headline numbers are an arithmetic over
cloud prices and measured op throughputs — exactly reproducible
offline.

:func:`estimate_costs` prices one training run under three deployments:

* ``gpu`` — GPU instances run everything;
* ``cpu`` — CPU instances run everything;
* ``cpu+lambda`` — CPU servers run graph ops; lambdas run tensor ops,
  overlapped with the graph stage (Dorylus's pipelining), with a
  per-invocation overhead.

Defaults approximate 2021 AWS prices (p3.2xlarge, c5.4xlarge, Lambda
GB-second) — the benches only use the *ratios*.  The GPU graph-op rate
is deliberately CPU-like: in Dorylus's setting the graph exceeds device
memory, so gathers pay host<->device transfer and are not accelerated.
Value-per-dollar = 1 / (makespan * dollars), Dorylus's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..obs import MetricsRegistry, StatsViewMixin, merge_counters
from ..resilience import FaultInjector, RetryPolicy

__all__ = [
    "DeploymentCost",
    "FleetStats",
    "Workload",
    "estimate_costs",
    "simulate_fleet",
]


@dataclass
class Workload:
    """Per-epoch op counts of a training job.

    ``graph_ops``: gather/scatter element ops; ``tensor_flops``: dense
    math; ``epochs``: how many epochs to price.
    """

    graph_ops: float
    tensor_flops: float
    epochs: int = 100


@dataclass
class DeploymentCost:
    """Time and money for one deployment option."""

    name: str
    time_seconds: float
    dollars: float

    @property
    def value_per_dollar(self) -> float:
        """Dorylus's metric: throughput per dollar (higher is better)."""
        if self.time_seconds <= 0 or self.dollars <= 0:
            return float("inf")
        return 1.0 / (self.time_seconds * self.dollars)


def estimate_costs(
    workload: Workload,
    gpu_tensor_flops_per_s: float = 15e12,
    gpu_graph_ops_per_s: float = 2e9,
    gpu_dollars_per_hour: float = 3.06,
    cpu_tensor_flops_per_s: float = 0.6e12,
    cpu_graph_ops_per_s: float = 2e9,
    cpu_dollars_per_hour: float = 0.68,
    lambda_tensor_flops_per_s: float = 0.08e12,
    lambda_dollars_per_gb_second: float = 0.0000166667,
    lambda_gb: float = 2.0,
    lambda_parallelism: int = 64,
    lambda_overhead_s: float = 0.010,
    lambda_invocations_per_epoch: int = 32,
) -> Dict[str, DeploymentCost]:
    """Price the workload under gpu / cpu / cpu+lambda deployments."""
    e = workload.epochs

    # --- GPU instances do everything.
    gpu_time = e * (
        workload.tensor_flops / gpu_tensor_flops_per_s
        + workload.graph_ops / gpu_graph_ops_per_s
    )
    gpu_cost = gpu_time / 3600.0 * gpu_dollars_per_hour

    # --- CPU instances do everything.
    cpu_time = e * (
        workload.tensor_flops / cpu_tensor_flops_per_s
        + workload.graph_ops / cpu_graph_ops_per_s
    )
    cpu_cost = cpu_time / 3600.0 * cpu_dollars_per_hour

    # --- CPU graph servers + lambda tensor ops, pipelined: the epoch
    # time is the max of the two stages (Dorylus overlaps them), plus
    # the invocation overhead of the lambda fleet.
    graph_stage = workload.graph_ops / cpu_graph_ops_per_s
    lambda_stage = (
        workload.tensor_flops
        / (lambda_tensor_flops_per_s * lambda_parallelism)
        + lambda_overhead_s * lambda_invocations_per_epoch / lambda_parallelism
    )
    hybrid_time = e * max(graph_stage, lambda_stage)
    lambda_busy_s = e * lambda_stage * lambda_parallelism
    hybrid_cost = (
        hybrid_time / 3600.0 * cpu_dollars_per_hour
        + lambda_busy_s * lambda_gb * lambda_dollars_per_gb_second
    )

    return {
        "gpu": DeploymentCost("gpu", gpu_time, gpu_cost),
        "cpu": DeploymentCost("cpu", cpu_time, cpu_cost),
        "cpu+lambda": DeploymentCost("cpu+lambda", hybrid_time, hybrid_cost),
    }


@dataclass
class FleetStats(StatsViewMixin):
    """Outcome accounting of one simulated lambda-fleet stage.

    ``busy_seconds`` is productive compute, ``wasted_seconds`` is time
    burned by failed or killed attempts, ``backoff_seconds`` the summed
    retry delays — the cost Dorylus's tail-latency argument is about.
    """

    invocations: int = 0
    attempts: int = 0
    failures: int = 0
    stragglers: int = 0
    retries: int = 0
    exhausted: int = 0
    busy_seconds: float = 0.0
    wasted_seconds: float = 0.0
    backoff_seconds: float = 0.0
    makespan: float = 0.0

    def extra_dict(self) -> Dict[str, Any]:
        total = self.busy_seconds + self.wasted_seconds + self.backoff_seconds
        return {
            "goodput": self.busy_seconds / total if total > 0 else 1.0,
        }

    def merge(self, other: "FleetStats") -> "FleetStats":
        return merge_counters(
            self,
            other,
            sum_fields=(
                "invocations", "attempts", "failures", "stragglers",
                "retries", "exhausted", "busy_seconds", "wasted_seconds",
                "backoff_seconds",
            ),
            max_fields=("makespan",),
        )


def simulate_fleet(
    invocations: int,
    duration_s: float,
    parallelism: int,
    injector: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
    straggler_factor: float = 8.0,
    overhead_s: float = 0.010,
    obs: Optional[MetricsRegistry] = None,
) -> FleetStats:
    """Simulate one lambda stage under faults, retries and stragglers.

    Each of ``invocations`` lambda calls runs ``duration_s`` of useful
    work on the earliest-free of ``parallelism`` slots.  The
    ``injector``'s ``fail_lambda`` plan decides each attempt's fate:

    * ``fail`` — the attempt dies halfway (detection costs the overhead
      plus half the duration); with a ``retry`` policy it is re-invoked
      after the deterministic backoff, otherwise (or past the attempt
      budget) the work is forced through once more and counted under
      ``exhausted`` — the fleet never loses gradients, it only pays.
    * ``straggler`` — with a ``retry`` policy the attempt is killed at
      the policy's ``timeout`` and re-invoked (Dorylus's tail cure);
      without one the slot crawls for ``duration_s * straggler_factor``.

    Everything is deterministic given the injector's seed, so the chaos
    suite can assert exact costs.  Counted under ``resilience.*`` when
    ``obs`` is given.
    """
    if invocations < 0:
        raise ValueError("invocations must be >= 0")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    stats = FleetStats(invocations=invocations)
    slots = [0.0] * parallelism
    c_attempts = c_retries = c_backoff = None
    if obs is not None:
        c_attempts = obs.counter(
            "resilience.lambda_attempts", "lambda attempts, by outcome"
        )
        c_retries = obs.counter("resilience.retries", "retried operations, by op")
        c_backoff = obs.counter(
            "resilience.backoff_seconds", "summed (simulated) backoff delay"
        )
    max_attempts = retry.max_attempts if retry is not None else 1
    for inv in range(invocations):
        slot = min(range(parallelism), key=lambda s: (slots[s], s))
        t = slots[slot]
        attempt = 0
        while True:
            stats.attempts += 1
            outcome = (
                injector.lambda_outcome(inv, attempt)
                if injector is not None
                else "ok"
            )
            can_retry = retry is not None and attempt + 1 < max_attempts
            if outcome == "ok":
                t += overhead_s + duration_s
                stats.busy_seconds += duration_s
                if c_attempts is not None:
                    c_attempts.inc(outcome="ok")
                break
            if outcome == "fail":
                stats.failures += 1
                wasted = overhead_s + 0.5 * duration_s
                t += wasted
                stats.wasted_seconds += wasted
                if c_attempts is not None:
                    c_attempts.inc(outcome="fail")
                if not can_retry:
                    # Out of budget (or no policy): force the work
                    # through so no gradient is lost, but count it.
                    stats.exhausted += 1
                    t += overhead_s + duration_s
                    stats.busy_seconds += duration_s
                    break
            else:  # straggler
                stats.stragglers += 1
                if c_attempts is not None:
                    c_attempts.inc(outcome="straggler")
                if retry is None:
                    # No tail cure: the slot crawls to completion.
                    slow = overhead_s + duration_s * straggler_factor
                    t += slow
                    stats.busy_seconds += duration_s
                    stats.wasted_seconds += slow - duration_s - overhead_s
                    break
                # Kill at the per-attempt deadline and re-invoke.
                wasted = overhead_s + retry.timeout
                t += wasted
                stats.wasted_seconds += wasted
                if not can_retry:
                    stats.exhausted += 1
                    t += overhead_s + duration_s
                    stats.busy_seconds += duration_s
                    break
            attempt += 1
            stats.retries += 1
            pause = retry.delay(attempt, key=("lambda", inv))
            t += pause
            stats.backoff_seconds += pause
            if c_retries is not None:
                c_retries.inc(op="lambda")
                c_backoff.inc(pause)
        slots[slot] = t
    stats.makespan = max(slots) if slots else 0.0
    return stats
