"""Feature caching of hot vertices (AliGraph / BGL).

Remote feature fetches dominate sampled GNN training, and vertex access
frequencies are as skewed as the degree distribution, so both AliGraph
[73] (static cache of "important" vertices) and BGL [22] (dynamic
cache) put a feature cache in front of the network:

* :class:`StaticDegreeCache` — pin the top-capacity vertices by degree
  (AliGraph's importance heuristic);
* :class:`LRUCache` — classic dynamic recency cache (BGL-style);
* :func:`access_trace_from_sampling` — generate a realistic access
  trace by running the neighbor sampler over training batches;
* :func:`replay` — run a trace through a cache and report hit rate and
  bytes saved, the quantities bench C13 sweeps against capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from ..graph.csr import Graph
from ..obs import MetricsRegistry, StatsViewMixin, merge_counters
from .sampling import NeighborSampler

__all__ = [
    "FeatureCache",
    "CacheStats",
    "StaticDegreeCache",
    "LRUCache",
    "CacheReport",
    "access_trace_from_sampling",
    "replay",
]


class FeatureCache(Protocol):
    """Minimal cache interface: ``lookup`` returns hit/miss."""

    def lookup(self, vertex: int) -> bool:  # pragma: no cover - protocol
        ...


@dataclass
class CacheStats:
    """A cache's own books, updated on every ``lookup``.

    ``replay`` cross-checks its externally counted hits against these,
    so a cache whose bookkeeping drifts from its behaviour cannot
    produce a plausible-looking :class:`CacheReport`.
    """

    hits: int = 0
    misses: int = 0
    admissions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.admissions, self.evictions)


class _CacheObsMixin:
    """Mirror :class:`CacheStats` transitions into ``gnn.cache.*``
    counters (labelled per cache) so hit rates show up in ``analyze
    --json`` instead of only in object state."""

    obs: Optional[MetricsRegistry] = None
    label: str = "cache"

    def _emit(self, metric: str, description: str, amount: int = 1) -> None:
        if self.obs is not None and amount:
            self.obs.counter(f"gnn.cache.{metric}", description).inc(
                amount, cache=self.label
            )

    def _record(self, hit: bool) -> None:
        if hit:
            self._emit("hits", "feature-cache hits")
        else:
            self._emit("misses", "feature-cache misses")


class StaticDegreeCache(_CacheObsMixin):
    """Pin the highest-degree vertices; contents never change."""

    def __init__(
        self,
        graph: Graph,
        capacity: int,
        obs: Optional[MetricsRegistry] = None,
        label: str = "static",
    ) -> None:
        self.capacity = capacity
        self.obs = obs
        self.label = label
        degrees = graph.degrees()
        top = np.argsort(-degrees, kind="stable")[:capacity]
        self._pinned = frozenset(int(v) for v in top)
        self.stats = CacheStats(admissions=len(self._pinned))
        self._emit("admissions", "entries admitted", len(self._pinned))

    def lookup(self, vertex: int) -> bool:
        if vertex in self._pinned:
            self.stats.hits += 1
            self._record(True)
            return True
        self.stats.misses += 1
        self._record(False)
        return False


class LRUCache(_CacheObsMixin):
    """Least-recently-used cache; misses insert and may evict."""

    def __init__(
        self,
        capacity: int,
        obs: Optional[MetricsRegistry] = None,
        label: str = "lru",
    ) -> None:
        self.capacity = capacity
        self.obs = obs
        self.label = label
        self._entries: OrderedDict = OrderedDict()
        self.stats = CacheStats()

    def lookup(self, vertex: int) -> bool:
        if self.capacity <= 0:
            self.stats.misses += 1
            self._record(False)
            return False
        if vertex in self._entries:
            self._entries.move_to_end(vertex)
            self.stats.hits += 1
            self._record(True)
            return True
        self.stats.misses += 1
        self.stats.admissions += 1
        self._record(False)
        self._emit("admissions", "entries admitted")
        self._entries[vertex] = True
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._emit("evictions", "entries evicted")
        return False


@dataclass
class CacheReport(StatsViewMixin):
    """Replay outcome."""

    accesses: int
    hits: int
    feature_dim: int
    bytes_per_value: int = 8

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def bytes_fetched(self) -> int:
        return (self.accesses - self.hits) * self.feature_dim * self.bytes_per_value

    @property
    def bytes_saved(self) -> int:
        return self.hits * self.feature_dim * self.bytes_per_value

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "hit_rate": self.hit_rate,
            "bytes_fetched": self.bytes_fetched,
            "bytes_saved": self.bytes_saved,
        }

    def merge(self, other: "CacheReport") -> "CacheReport":
        """Combine replays over the same cache geometry."""
        if other.feature_dim != self.feature_dim:
            raise ValueError("cannot merge reports with differing feature_dim")
        return merge_counters(self, other, sum_fields=("accesses", "hits"))


def access_trace_from_sampling(
    graph: Graph,
    train_nodes: Sequence[int],
    fanouts: Sequence[int],
    batch_size: int,
    epochs: int = 1,
    seed: int = 0,
) -> List[int]:
    """The remote-vertex access sequence of sampled training.

    Every vertex id appearing in a sampled block is one feature access
    (the trainer must materialize its row); the skew of the result is
    what makes caching effective.
    """
    sampler = NeighborSampler(graph, fanouts, seed=seed)
    trace: List[int] = []
    for _ in range(epochs):
        for block in sampler.batches(train_nodes, batch_size):
            trace.extend(int(v) for v in block.node_ids)
    return trace


def replay(
    trace: Iterable[int],
    cache: FeatureCache,
    feature_dim: int = 64,
    obs: Optional[MetricsRegistry] = None,
) -> CacheReport:
    """Run an access trace through a cache.

    If the cache keeps its own :class:`CacheStats`, the externally
    counted hits are cross-checked against the cache's delta over the
    replay — disagreement means the cache's bookkeeping does not match
    its behaviour, and the report would be meaningless.
    """
    before = cache.stats.snapshot() if hasattr(cache, "stats") else None
    accesses = hits = 0
    for v in trace:
        accesses += 1
        if cache.lookup(v):
            hits += 1
    if before is not None:
        own_hits = cache.stats.hits - before.hits
        own_accesses = cache.stats.accesses - before.accesses
        if own_hits != hits or own_accesses != accesses:
            raise RuntimeError(
                f"cache accounting drift: cache recorded {own_hits} hits / "
                f"{own_accesses} accesses, replay observed {hits} / {accesses}"
            )
    report = CacheReport(accesses=accesses, hits=hits, feature_dim=feature_dim)
    if obs is not None:
        obs.counter("gnn.cache.accesses", "feature-cache lookups").inc(accesses)
        obs.counter("gnn.cache.hits", "feature-cache hits").inc(hits)
        obs.counter(
            "gnn.cache.bytes_fetched", "feature bytes fetched on misses"
        ).inc(report.bytes_fetched)
    return report
