"""Asynchronous model synchronization: bounded staleness and friends.

Section 3's "Model Synchronization" techniques:

* **Bounded staleness** (Dorylus [39], P3 [13]) — workers may run up to
  ``s`` steps ahead of the slowest instead of barriering every step.
  :func:`simulate_staleness` runs an event-driven simulation with
  heterogeneous worker speeds and reports makespan/idle time, the
  utilization claim; :func:`train_stale_gradients` additionally applies
  *real* delayed gradients to a shared model so convergence effects are
  measurable, not asserted.

* **Staleness-aware skipping** (Sancus [30]) — broadcast only when the
  parameters/embeddings changed enough; :class:`SancusGate` implements
  the adaptive gate and counts skipped broadcasts.

* **Delayed updates** (DistGNN [27]) — halo features are refreshed only
  every ``r`` epochs; :func:`train_delayed_halo` trains a real GCN with
  genuinely stale remote rows and reports both the traffic saved and
  the accuracy reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graph.csr import Graph
from ..obs import StatsViewMixin, merge_counters
from ..graph.partition import Partition
from .distributed import halo_sets
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .tensor import Tensor, no_grad
from .train import TrainReport

__all__ = [
    "StalenessTrace",
    "simulate_staleness",
    "train_stale_gradients",
    "SancusGate",
    "train_delayed_halo",
]


@dataclass
class StalenessTrace(StatsViewMixin):
    """Utilization outcome of one synchronization policy."""

    staleness: int
    makespan: float
    busy_time: float
    idle_time: float
    steps_per_worker: int

    @property
    def utilization(self) -> float:
        total = self.busy_time + self.idle_time
        return self.busy_time / total if total else 1.0

    def extra_dict(self) -> Dict[str, Any]:
        return {"utilization": self.utilization}

    def merge(self, other: "StalenessTrace") -> "StalenessTrace":
        """Combine shards: times add, makespan and staleness take max."""
        return merge_counters(
            self,
            other,
            sum_fields=("busy_time", "idle_time", "steps_per_worker"),
            max_fields=("makespan", "staleness"),
        )


def simulate_staleness(
    num_workers: int,
    steps: int,
    staleness: int,
    speed_spread: float = 0.5,
    seed: int = 0,
) -> StalenessTrace:
    """Event-driven SSP simulation with heterogeneous step times.

    Worker ``w``'s step durations are ``1 + spread * U[0,1)`` (plus a
    persistent per-worker speed factor).  Under the stale synchronous
    parallel rule, a worker may start step ``t`` only when the slowest
    worker has finished step ``t - staleness``; ``staleness=0`` is BSP.
    """
    rng = np.random.default_rng(seed)
    base_speed = 1.0 + speed_spread * rng.random(num_workers)
    durations = base_speed[:, None] * (
        1.0 + speed_spread * rng.random((num_workers, steps))
    )
    finish = np.zeros((num_workers, steps))
    barrier = np.zeros(steps)  # barrier[t] = time all workers finished step t
    busy = float(durations.sum())
    idle = 0.0
    for t in range(steps):
        # SSP rule: step t may start only after every worker finished
        # step t - 1 - staleness (s = 0 is a per-step barrier).
        gate_step = t - 1 - staleness
        gate = barrier[gate_step] if gate_step >= 0 else 0.0
        for w in range(num_workers):
            prev = finish[w, t - 1] if t > 0 else 0.0
            start = max(prev, gate)
            idle += start - prev
            finish[w, t] = start + durations[w, t]
        barrier[t] = finish[:, t].max()
    return StalenessTrace(
        staleness=staleness,
        makespan=float(finish[:, -1].max()),
        busy_time=busy,
        idle_time=float(idle),
        steps_per_worker=steps,
    )


def train_stale_gradients(
    model: NodeClassifier,
    graph: Graph,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    staleness: int = 2,
    epochs: int = 30,
    lr: float = 0.01,
) -> TrainReport:
    """Training where each applied gradient is ``staleness`` steps old.

    Models the pipeline effect of bounded staleness on convergence: the
    gradient applied at step ``t`` was computed against the parameters
    of step ``t - staleness``.  With ``staleness=0`` this is exact
    synchronous training.
    """
    gt = GraphTensors(graph)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_idx = np.nonzero(train_mask)[0]
    x = Tensor(features)
    param_history: List[List[np.ndarray]] = []
    for step in range(epochs):
        current = model.state_dict()
        param_history.append(current)
        stale_state = param_history[max(0, step - staleness)]
        # Compute the gradient at the stale parameters...
        model.load_state_dict(stale_state)
        optimizer.zero_grad()
        logits = model(gt, x)
        loss = logits.gather_rows(train_idx).cross_entropy(labels[train_idx])
        loss.backward()
        grads = [p.grad.copy() if p.grad is not None else None for p in model.parameters()]
        # ...then apply it to the current parameters.
        model.load_state_dict(current)
        for p, g in zip(model.parameters(), grads):
            p.grad = g
        optimizer.step()
        report.losses.append(float(loss.data))
        report.steps += 1
        with no_grad():
            out = model(gt, Tensor(features)).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))
    return report


@dataclass
class SancusGate:
    """Sancus's staleness-aware broadcast gate.

    ``should_broadcast(embedding)`` returns True when the L2 change
    since the last broadcast exceeds ``threshold`` (relative to the
    last-broadcast norm); otherwise peers keep using the stale copy and
    a skip is recorded.
    """

    threshold: float = 0.05
    broadcasts: int = 0
    skips: int = 0

    def __post_init__(self) -> None:
        self._last: Optional[np.ndarray] = None

    def should_broadcast(self, value: np.ndarray) -> bool:
        value = np.asarray(value, dtype=np.float64)
        if self._last is None:
            self._last = value.copy()
            self.broadcasts += 1
            return True
        denom = np.linalg.norm(self._last) + 1e-12
        change = np.linalg.norm(value - self._last) / denom
        if change > self.threshold:
            self._last = value.copy()
            self.broadcasts += 1
            return True
        self.skips += 1
        return False


def train_delayed_halo(
    model: NodeClassifier,
    graph: Graph,
    partition: Partition,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    refresh_every: int = 4,
    epochs: int = 40,
    lr: float = 0.01,
) -> Tuple[TrainReport, int, int]:
    """DistGNN-style delayed halo updates, with real staleness.

    Remote (halo) feature rows are refreshed from their owners only
    every ``refresh_every`` epochs; in between, every worker computes
    with its cached stale copy.  The input-feature halo is the stale
    surface (hidden layers run on the mixed input), which is the
    first-order effect DistGNN's cd-0/cd-r family trades.

    Returns ``(report, halo_exchanges_done, halo_exchanges_saved)``.
    """
    gt = GraphTensors(graph)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_idx = np.nonzero(train_mask)[0]
    halos = halo_sets(graph, partition)
    remote = np.zeros(graph.num_vertices, dtype=bool)
    for halo in halos:
        for v in halo:
            remote[v] = True
    stale_features = features.copy()
    exchanges = saved = 0
    for epoch in range(epochs):
        if epoch % refresh_every == 0:
            stale_features[remote] = features[remote]
            exchanges += 1
        else:
            saved += 1
        mixed = features.copy()
        mixed[remote] = stale_features[remote]
        x = Tensor(mixed)
        optimizer.zero_grad()
        logits = model(gt, x)
        loss = logits.gather_rows(train_idx).cross_entropy(labels[train_idx])
        loss.backward()
        optimizer.step()
        report.losses.append(float(loss.data))
        report.steps += 1
        with no_grad():
            out = model(gt, Tensor(features)).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))
    return report, exchanges, saved
