"""GNN layers: GCN, GraphSAGE, GAT.

Each layer follows the two-stage structure the tutorial identifies in
every GNN system: *graph data retrieving* (gather neighbor features)
followed by *model computation* (dense transforms).  The gather/scatter
primitives of :mod:`repro.gnn.tensor` make the retrieval stage an
explicit, measurable step — the distributed trainers intercept exactly
that step to price communication.

Layers operate on a :class:`GraphTensors` bundle precomputed from a
:class:`~repro.graph.csr.Graph` (edge endpoints + normalization), so
the same layer code runs on the full graph, on a sampled block, or on a
worker's local partition.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.csr import Graph
from .tensor import Parameter, Tensor

__all__ = ["GraphTensors", "Module", "Linear", "GCNLayer", "SAGELayer", "SAGEPoolLayer", "GATLayer", "GINLayer"]


class GraphTensors:
    """Edge-list view of a graph, ready for gather/scatter aggregation.

    ``src``/``dst`` list every directed edge (both directions of each
    undirected edge) plus, when ``add_self_loops``, one self-loop per
    vertex; ``gcn_norm`` carries the symmetric normalization
    ``1/sqrt(deg(u) deg(v))`` used by GCN.
    """

    def __init__(self, graph: Graph, add_self_loops: bool = True) -> None:
        srcs: List[int] = []
        dsts: List[int] = []
        n = graph.num_vertices
        for u in graph.vertices():
            for w in graph.neighbors(u):
                srcs.append(int(w))
                dsts.append(u)
        if add_self_loops:
            srcs.extend(range(n))
            dsts.extend(range(n))
        self.num_vertices = n
        self.src = np.asarray(srcs, dtype=np.int64)
        self.dst = np.asarray(dsts, dtype=np.int64)
        deg = np.bincount(self.dst, minlength=n).astype(np.float64)
        deg[deg == 0] = 1.0
        self.in_degree = deg
        norm = 1.0 / np.sqrt(deg)
        self.gcn_norm = (norm[self.src] * norm[self.dst]).reshape(-1, 1)

    @property
    def num_messages(self) -> int:
        return self.src.size


class Module:
    """Base class with parameter discovery."""

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> List[np.ndarray]:
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: List[np.ndarray]) -> None:
        for p, s in zip(self.parameters(), state):
            p.data = s.copy()


def _glorot(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Linear(Module):
    """Dense layer ``x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(_glorot(in_dim, out_dim, rng), name="linear.W")
        self.bias = Parameter(np.zeros(out_dim), name="linear.b")

    def __call__(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class GCNLayer(Module):
    """Graph convolution: ``H' = sigma(D^-1/2 A D^-1/2 H W)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(_glorot(in_dim, out_dim, rng), name="gcn.W")
        self.bias = Parameter(np.zeros(out_dim), name="gcn.b")

    def __call__(self, gt: GraphTensors, h: Tensor) -> Tensor:
        messages = h.gather_rows(gt.src) * gt.gcn_norm
        agg = messages.scatter_add(gt.dst, gt.num_vertices)
        return agg @ self.weight + self.bias


class SAGELayer(Module):
    """GraphSAGE [16] with mean aggregation.

    ``h_v' = sigma(W . CONCAT(h_v, mean_{u in N(v)} h_u))`` — the exact
    formulation quoted in the tutorial's Section 3.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(_glorot(2 * in_dim, out_dim, rng), name="sage.W")
        self.bias = Parameter(np.zeros(out_dim), name="sage.b")

    def __call__(self, gt: GraphTensors, h: Tensor) -> Tensor:
        messages = h.gather_rows(gt.src)
        summed = messages.scatter_add(gt.dst, gt.num_vertices)
        mean = summed * (1.0 / gt.in_degree.reshape(-1, 1))
        combined = h.concat(mean, axis=1)
        return combined @ self.weight + self.bias


class SAGEPoolLayer(Module):
    """GraphSAGE with max-pool aggregation.

    ``h_v' = W . CONCAT(h_v, max_{u in N(v)} sigma(W_pool h_u))`` — the
    pool variant of [16]; neighbors pass through a learned transform and
    an element-wise max, which is order-invariant but, unlike the mean,
    sensitive to extremes.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.pool = Parameter(_glorot(in_dim, in_dim, rng), name="sagepool.Wp")
        self.pool_bias = Parameter(np.zeros(in_dim), name="sagepool.bp")
        self.weight = Parameter(_glorot(2 * in_dim, out_dim, rng), name="sagepool.W")
        self.bias = Parameter(np.zeros(out_dim), name="sagepool.b")

    def __call__(self, gt: GraphTensors, h: Tensor) -> Tensor:
        transformed = (h @ self.pool + self.pool_bias).relu()
        messages = transformed.gather_rows(gt.src)
        pooled = messages.scatter_max(gt.dst, gt.num_vertices)
        combined = h.concat(pooled, axis=1)
        return combined @ self.weight + self.bias


class GATLayer(Module):
    """Single-head graph attention (GAT).

    Attention logits ``e_uv = LeakyReLU(a_s . Wh_u + a_d . Wh_v)`` are
    softmax-normalized per destination via the scatter primitives.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        self.weight = Parameter(_glorot(in_dim, out_dim, rng), name="gat.W")
        self.attn_src = Parameter(
            rng.normal(0, 0.1, size=(out_dim, 1)), name="gat.a_s"
        )
        self.attn_dst = Parameter(
            rng.normal(0, 0.1, size=(out_dim, 1)), name="gat.a_d"
        )

    def __call__(self, gt: GraphTensors, h: Tensor) -> Tensor:
        z = h @ self.weight
        alpha_s = (z @ self.attn_src).gather_rows(gt.src)
        alpha_d = (z @ self.attn_dst).gather_rows(gt.dst)
        logits = (alpha_s + alpha_d).leaky_relu(0.2)
        # Numerically-stable per-destination softmax via exp/scatter-sum.
        weights = logits.exp()
        denom = weights.scatter_add(gt.dst, gt.num_vertices).gather_rows(gt.dst)
        attn = weights / (denom + 1e-12)
        messages = z.gather_rows(gt.src) * attn
        return messages.scatter_add(gt.dst, gt.num_vertices)


class GINLayer(Module):
    """Graph Isomorphism Network layer (the 1-WL-maximal aggregator).

    ``h_v' = MLP((1 + eps) h_v + sum_{u in N(v)} h_u)`` — GIN's sum
    aggregation is injective on neighbor multisets, making the model
    exactly as powerful as 1-WL (the bound Subgraph GNNs exceed; see
    :mod:`repro.gnn.subgraph_gnn`).
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 eps: float = 0.0) -> None:
        self.eps = Parameter(np.array([eps]), name="gin.eps")
        self.w1 = Parameter(_glorot(in_dim, out_dim, rng), name="gin.W1")
        self.b1 = Parameter(np.zeros(out_dim), name="gin.b1")
        self.w2 = Parameter(_glorot(out_dim, out_dim, rng), name="gin.W2")
        self.b2 = Parameter(np.zeros(out_dim), name="gin.b2")

    def __call__(self, gt: GraphTensors, h: Tensor) -> Tensor:
        messages = h.gather_rows(gt.src)
        summed = messages.scatter_add(gt.dst, gt.num_vertices)
        combined = h * (1.0 + self.eps) + summed
        hidden = (combined @ self.w1 + self.b1).relu()
        return hidden @ self.w2 + self.b2
