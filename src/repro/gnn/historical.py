"""Historical-embedding training (Sancus made operational).

Sancus [30] avoids communication in decentralized full-graph GNN
training by letting workers compute with **historical embeddings** —
cached copies of remote vertices' hidden states — and broadcasting
fresh ones only when they have drifted enough (its staleness-aware
adaptive gate; see :class:`~repro.gnn.staleness.SancusGate`).

:func:`train_historical` implements the full loop with *real* staleness
effects, not accounting fiction:

* the graph is partitioned; every epoch each layer's input rows for
  remote (halo) vertices come from a **historical snapshot**, not the
  live values;
* per epoch, a drift gate (relative L2 change of the live halo rows
  against the snapshot) decides whether this epoch **broadcasts** —
  refreshing the snapshot and paying halo bytes — or **skips** —
  training on stale rows for free;
* the returned :class:`HistoricalReport` carries the loss/accuracy
  trace, broadcast/skip counts, and halo bytes, so benches can place it
  between the synchronous trainer (gate threshold 0 ⇒ broadcast every
  epoch ⇒ *exactly* the sync trajectory, asserted in tests) and a
  never-refresh strawman.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.csr import Graph
from ..graph.partition import Partition
from .distributed import halo_sets
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .tensor import Tensor, no_grad
from .train import TrainReport

__all__ = ["HistoricalReport", "train_historical"]


@dataclass
class HistoricalReport:
    """Outcome of one historical-embedding training run."""

    report: TrainReport
    broadcasts: int = 0
    skips: int = 0
    halo_bytes: int = 0

    @property
    def refresh_fraction(self) -> float:
        total = self.broadcasts + self.skips
        return self.broadcasts / total if total else 1.0


def train_historical(
    model: NodeClassifier,
    graph: Graph,
    partition: Partition,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    drift_threshold: float = 0.05,
    epochs: int = 40,
    lr: float = 0.01,
) -> HistoricalReport:
    """Sancus-style training with gated historical halo embeddings.

    ``drift_threshold=0`` refreshes every epoch and reproduces plain
    synchronous full-graph training exactly; larger thresholds skip
    more broadcasts at the price of gradient bias.
    """
    gt = GraphTensors(graph)
    optimizer = Adam(model.parameters(), lr=lr)
    outcome = HistoricalReport(report=TrainReport())
    train_idx = np.nonzero(train_mask)[0]

    halos = halo_sets(graph, partition)
    remote = np.zeros(graph.num_vertices, dtype=bool)
    for halo in halos:
        for v in halo:
            remote[v] = True
    remote_mask = remote.reshape(-1, 1).astype(np.float64)
    local_mask = 1.0 - remote_mask
    hidden_dim = model.layers[0].weight.shape[1]

    # The historical snapshot: remote vertices' layer-1 activations.
    # These *drift every epoch* as the weights move — the signal the
    # Sancus gate watches.
    snapshot: Optional[np.ndarray] = None
    x = Tensor(features)

    for _ in range(epochs):
        optimizer.zero_grad()
        h1_live = model.forward_layer(0, gt, x)

        live = h1_live.data
        if snapshot is None:
            drift = float("inf")
        else:
            denom = np.linalg.norm(snapshot[remote]) + 1e-12
            drift = float(
                np.linalg.norm(live[remote] - snapshot[remote]) / denom
            )
        if drift > drift_threshold:
            # Broadcast: peers get fresh rows; gradients flow everywhere
            # this epoch (the refresh carries the backward halo too).
            snapshot = live.copy()
            outcome.broadcasts += 1
            outcome.halo_bytes += int(remote.sum()) * hidden_dim * 8
            h1_used = h1_live
        else:
            # Skip: remote rows come from the historical snapshot as
            # constants — no forward *or* backward halo traffic.
            outcome.skips += 1
            h1_used = h1_live * local_mask + Tensor(snapshot * remote_mask)

        h_out = h1_used
        for i in range(1, model.num_layers):
            h_out = model.forward_layer(i, gt, h_out)
        loss = h_out.gather_rows(train_idx).cross_entropy(labels[train_idx])
        loss.backward()
        optimizer.step()
        outcome.report.losses.append(float(loss.data))
        outcome.report.steps += 1
        with no_grad():
            out = model(gt, Tensor(features)).data
        outcome.report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            outcome.report.val_accuracy.append(accuracy(out, labels, val_mask))
    return outcome
