"""Reverse-mode automatic differentiation over numpy arrays.

The DL-framework substrate for the GNN systems of Section 3: PyTorch/TF
are not available offline, so this module provides the minimal autograd
the GNN layers need — dense ops, matmul, gather/scatter for
neighborhood aggregation, softmax/log-softmax, and the usual activations
— gradient-checked against finite differences in the tests.

The design intentionally separates the *graph* of dependencies from the
*operators* (each op records only its parents and a backward closure),
mirroring NeutronStar's [43] observation that dependency management and
NN functions are separable concerns.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad"]

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> None:
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _grad_enabled
        self._parents = _parents if _grad_enabled else ()
        self._backward = _backward if _grad_enabled else None
        self.name = name

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, scale: float = 1.0, seed: Optional[int] = None,
              requires_grad: bool = False) -> "Tensor":
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    # -- shape -------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # -- autograd core ------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        seen = set()

        def build(t: Tensor) -> None:
            if id(t) in seen:
                return
            seen.add(id(t))
            for p in t._parents:
                build(p)
            topo.append(t)

        build(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for t in reversed(topo):
            g = grads.pop(id(t), None)
            if g is None:
                continue
            if t.requires_grad:
                t.grad = g if t.grad is None else t.grad + g
            if t._backward is not None:
                for parent, pg in t._backward(g):
                    if parent.requires_grad or parent._parents:
                        prev = grads.get(id(parent))
                        grads[id(parent)] = pg if prev is None else prev + pg

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- operators -----------------------------------------------------------

    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.data.shape)),
                (other, _unbroadcast(g, other.data.shape)),
            )

        return Tensor(
            self.data + other.data,
            _parents=(self, other),
            _backward=backward,
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return Tensor(-self.data, _parents=(self,), _backward=backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g * other.data, self.data.shape)),
                (other, _unbroadcast(g * self.data, other.data.shape)),
            )

        return Tensor(
            self.data * other.data, _parents=(self, other), _backward=backward
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g / other.data, self.data.shape)),
                (
                    other,
                    _unbroadcast(-g * self.data / other.data ** 2, other.data.shape),
                ),
            )

        return Tensor(
            self.data / other.data, _parents=(self, other), _backward=backward
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)

        def backward(g: np.ndarray):
            return (
                (self, g @ other.data.T),
                (other, self.data.T @ g),
            )

        return Tensor(
            self.data @ other.data, _parents=(self, other), _backward=backward
        )

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor(self.data ** exponent, _parents=(self,), _backward=backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        def backward(g: np.ndarray):
            if axis is None:
                pg = np.full_like(self.data, 1.0) * g
            else:
                pg = np.broadcast_to(
                    np.expand_dims(g, axis) if not keepdims else g, self.data.shape
                ).copy()
            return ((self, pg),)

        return Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            _parents=(self,),
            _backward=backward,
        )

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=True)

        def backward(g: np.ndarray):
            mask = (self.data == out).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            gg = g if keepdims else np.expand_dims(g, axis)
            return ((self, mask * gg),)

        return Tensor(
            out if keepdims else out.squeeze(axis),
            _parents=(self,),
            _backward=backward,
        )

    # -- elementwise nonlinearities ---------------------------------------

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return Tensor(self.data * mask, _parents=(self,), _backward=backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(g: np.ndarray):
            return ((self, g * out * (1 - out)),)

        return Tensor(out, _parents=(self,), _backward=backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(g: np.ndarray):
            return ((self, g * (1 - out ** 2)),)

        return Tensor(out, _parents=(self,), _backward=backward)

    def exp(self) -> "Tensor":
        out = np.exp(np.clip(self.data, -60, 60))

        def backward(g: np.ndarray):
            return ((self, g * out),)

        return Tensor(out, _parents=(self,), _backward=backward)

    def log(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g / self.data),)

        return Tensor(np.log(self.data), _parents=(self,), _backward=backward)

    def leaky_relu(self, alpha: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, alpha)

        def backward(g: np.ndarray):
            return ((self, g * mask),)

        return Tensor(self.data * mask, _parents=(self,), _backward=backward)

    # -- shaping ------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        old = self.data.shape

        def backward(g: np.ndarray):
            return ((self, g.reshape(old)),)

        return Tensor(self.data.reshape(shape), _parents=(self,), _backward=backward)

    @property
    def T(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, g.T),)

        return Tensor(self.data.T, _parents=(self,), _backward=backward)

    def concat(self, other: "Tensor", axis: int = 1) -> "Tensor":
        other = self._coerce(other)
        split = self.data.shape[axis]

        def backward(g: np.ndarray):
            ga, gb = np.split(g, [split], axis=axis)
            return ((self, ga), (other, gb))

        return Tensor(
            np.concatenate([self.data, other.data], axis=axis),
            _parents=(self, other),
            _backward=backward,
        )

    # -- gather / scatter: the GNN aggregation primitives --------------------

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Rows ``self[index]`` — the feature-fetch of a GNN layer."""
        index = np.asarray(index, dtype=np.int64)

        def backward(g: np.ndarray):
            pg = np.zeros_like(self.data)
            np.add.at(pg, index, g)
            return ((self, pg),)

        return Tensor(self.data[index], _parents=(self,), _backward=backward)

    def scatter_add(self, index: np.ndarray, num_rows: int) -> "Tensor":
        """Sum rows of ``self`` into ``num_rows`` buckets by ``index``.

        The aggregation kernel: ``out[index[i]] += self[i]``.
        """
        index = np.asarray(index, dtype=np.int64)
        out = np.zeros((num_rows,) + self.data.shape[1:])
        np.add.at(out, index, self.data)

        def backward(g: np.ndarray):
            return ((self, g[index]),)

        return Tensor(out, _parents=(self,), _backward=backward)

    def scatter_max(self, index: np.ndarray, num_rows: int) -> "Tensor":
        """Element-wise max of rows per bucket (empty buckets read 0).

        The max-pool aggregation kernel of GraphSAGE-pool; the gradient
        flows to each bucket's winning row only.
        """
        index = np.asarray(index, dtype=np.int64)
        out = np.full((num_rows,) + self.data.shape[1:], -np.inf)
        np.maximum.at(out, index, self.data)
        empty = np.isinf(out)
        out = np.where(empty, 0.0, out)

        def backward(g: np.ndarray):
            pg = np.zeros_like(self.data)
            # Winner-takes-gradient: the first row attaining the bucket
            # max receives it (ties broken by scan order).
            claimed = np.zeros_like(out, dtype=bool)
            for i in range(index.size):
                bucket = index[i]
                winners = (
                    (self.data[i] == out[bucket])
                    & ~claimed[bucket]
                    & ~empty[bucket]
                )
                pg[i][winners] = g[bucket][winners]
                claimed[bucket] |= winners
            return ((self, pg),)

        return Tensor(out, _parents=(self,), _backward=backward)

    # -- losses ----------------------------------------------------------------

    def log_softmax(self, axis: int = 1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        softmax = np.exp(out)

        def backward(g: np.ndarray):
            return ((self, g - softmax * g.sum(axis=axis, keepdims=True)),)

        return Tensor(out, _parents=(self,), _backward=backward)

    def cross_entropy(self, targets: np.ndarray) -> "Tensor":
        """Mean negative log-likelihood of integer ``targets``."""
        targets = np.asarray(targets, dtype=np.int64)
        logp = self.log_softmax(axis=1)
        n = self.data.shape[0]
        picked_data = logp.data[np.arange(n), targets]

        def backward(g: np.ndarray):
            pg = np.zeros_like(logp.data)
            pg[np.arange(n), targets] = -g / n
            return ((logp, pg),)

        return Tensor(
            -picked_data.mean(), _parents=(logp,), _backward=backward
        )


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data: ArrayLike, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a broadcasted gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad
