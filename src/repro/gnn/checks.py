"""Differential checks for the GNN training systems.

Quantization is the canonical *bounded-error* pair (the reconstruction
must stay within half a quantization step of the input), and the
feature caches are checked against an independent trace simulation —
the check that flushed out the cache accounting bug: ``replay`` counted
hits externally while the cache kept no books of its own, so nothing
tied ``CacheReport.bytes_saved`` to what the cache actually admitted
and evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

import numpy as np

from ..check.invariants import bounded_error, same_values
from ..check.registry import BIT_IDENTICAL, BOUNDED_ERROR, pair
from .caching import LRUCache, StaticDegreeCache, replay
from .quantization import quantize, quantize_dequantize


def _gen_quantize(rng: np.random.Generator) -> Dict:
    return {
        "rows": int(rng.integers(1, 33)),
        "cols": int(rng.integers(1, 65)),
        "bits": int(rng.integers(2, 9)),
        "value_seed": int(rng.integers(1 << 16)),
        "stochastic": int(rng.integers(2)),
    }


@pair(
    "gnn.quantize.roundtrip_bounded", "gnn", BOUNDED_ERROR,
    gen=_gen_quantize,
    floors={"rows": 1, "cols": 1, "bits": 2, "stochastic": 0},
    description="quantize -> dequantize stays within one quantization "
    "step of the input (half a step for round-to-nearest), for any "
    "shape, bit width, and rounding mode.",
)
def _check_quantize(params: Dict) -> List[str]:
    rng = np.random.default_rng(int(params["value_seed"]))
    values = rng.normal(
        size=(int(params["rows"]), int(params["cols"]))
    ) * rng.uniform(0.1, 10.0)
    bits = int(params["bits"])
    _, _, scale = quantize(values, bits)
    step = float(np.max(scale))
    if int(params.get("stochastic", 0)):
        round_rng = np.random.default_rng(int(params["value_seed"]) + 1)
        restored = quantize_dequantize(values, bits, rng=round_rng)
        atol = step + 1e-12
    else:
        restored = quantize_dequantize(values, bits)
        atol = step / 2.0 + 1e-12
    return bounded_error(values, restored, atol=atol, label="roundtrip")


def _sim_lru(trace, capacity: int) -> Dict[str, int]:
    """Independent LRU simulation (OrderedDict reimplementation)."""
    entries: "OrderedDict[int, bool]" = OrderedDict()
    hits = misses = admissions = evictions = 0
    for v in trace:
        if capacity <= 0:
            misses += 1
            continue
        if v in entries:
            entries.move_to_end(v)
            hits += 1
        else:
            misses += 1
            admissions += 1
            entries[v] = True
            if len(entries) > capacity:
                entries.popitem(last=False)
                evictions += 1
    return {
        "hits": hits,
        "misses": misses,
        "admissions": admissions,
        "evictions": evictions,
    }


def _zipfish_trace(rng: np.random.Generator, n: int, length: int):
    """Skewed trace: mostly a hot head, with a uniform tail."""
    hot = max(1, n // 8)
    heads = rng.integers(0, hot, size=length)
    tails = rng.integers(0, n, size=length)
    pick_hot = rng.random(length) < 0.7
    return [int(h if p else t) for h, t, p in zip(heads, tails, pick_hot)]


def _gen_lru(rng: np.random.Generator) -> Dict:
    n = int(rng.integers(16, 257))
    return {
        "n": n,
        "capacity": int(rng.integers(1, max(2, n // 2))),
        "trace_len": int(rng.integers(64, 2049)),
        "trace_seed": int(rng.integers(1 << 16)),
        "feature_dim": int(rng.integers(1, 129)),
    }


@pair(
    "gnn.cache.lru_vs_trace_sim", "gnn", BIT_IDENTICAL,
    gen=_gen_lru,
    floors={"n": 2, "capacity": 1, "trace_len": 1, "feature_dim": 1},
    description="LRUCache replay vs an independent OrderedDict "
    "simulation: identical hits, and the cache's own accounting "
    "(hits/misses/admissions/evictions) must agree with both the "
    "simulation and CacheReport.bytes_saved.",
)
def _check_lru(params: Dict) -> List[str]:
    rng = np.random.default_rng(int(params["trace_seed"]))
    trace = _zipfish_trace(rng, int(params["n"]), int(params["trace_len"]))
    capacity = int(params["capacity"])
    feature_dim = int(params["feature_dim"])
    expected = _sim_lru(trace, capacity)
    cache = LRUCache(capacity)
    report = replay(trace, cache, feature_dim=feature_dim)
    out = same_values(expected["hits"], report.hits, "report.hits")
    stats = cache.stats  # the cache must keep its own books
    for key in ("hits", "misses", "admissions", "evictions"):
        out += same_values(expected[key], getattr(stats, key), f"cache.{key}")
    out += same_values(
        expected["hits"] * feature_dim * report.bytes_per_value,
        report.bytes_saved,
        "report.bytes_saved",
    )
    out += same_values(
        stats.hits * feature_dim * report.bytes_per_value,
        report.bytes_saved,
        "cache_vs_report.bytes_saved",
    )
    return out


def _gen_uniform(rng: np.random.Generator) -> Dict:
    n = int(rng.integers(32, 129))
    return {
        "n": n,
        "degree": 3,
        "capacity": int(rng.integers(4, max(5, n // 2))),
        "trace_len": int(rng.integers(4000, 8001)),
        "trace_seed": int(rng.integers(1 << 16)),
        "graph_seed": int(rng.integers(1 << 16)),
    }


@pair(
    "gnn.cache.static_vs_lru_uniform", "gnn", BOUNDED_ERROR,
    gen=_gen_uniform,
    floors={"n": 8, "capacity": 1, "trace_len": 500},
    description="On a uniform access trace neither recency nor degree "
    "carries signal, so StaticDegreeCache and LRUCache hit rates must "
    "both converge to capacity/n.",
)
def _check_static_vs_lru(params: Dict) -> List[str]:
    from ..graph.generators import erdos_renyi

    n = int(params["n"])
    capacity = int(params["capacity"])
    rng = np.random.default_rng(int(params["trace_seed"]))
    trace = [int(v) for v in rng.integers(0, n, size=int(params["trace_len"]))]
    graph = erdos_renyi(n, 0.1, seed=int(params.get("graph_seed", 0)))
    static = replay(trace, StaticDegreeCache(graph, capacity))
    lru = replay(trace, LRUCache(capacity))
    expected = capacity / n
    # 4000+ samples of a Bernoulli(c/n): 0.06 is many standard errors.
    out = bounded_error(
        [expected], [static.hit_rate], atol=0.06, label="static.hit_rate"
    )
    out += bounded_error(
        [expected], [lru.hit_rate], atol=0.06, label="lru.hit_rate"
    )
    out += bounded_error(
        [static.hit_rate], [lru.hit_rate], atol=0.08, label="static_vs_lru"
    )
    return out
