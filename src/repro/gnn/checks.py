"""Differential checks for the GNN training systems.

Quantization is the canonical *bounded-error* pair (the reconstruction
must stay within half a quantization step of the input), and the
feature caches are checked against an independent trace simulation —
the check that flushed out the cache accounting bug: ``replay`` counted
hits externally while the cache kept no books of its own, so nothing
tied ``CacheReport.bytes_saved`` to what the cache actually admitted
and evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

import numpy as np

from ..check.invariants import bounded_error, same_values
from ..check.registry import BIT_IDENTICAL, BOUNDED_ERROR, pair
from .caching import LRUCache, StaticDegreeCache, replay
from .quantization import quantize, quantize_dequantize


def _gen_quantize(rng: np.random.Generator) -> Dict:
    return {
        "rows": int(rng.integers(1, 33)),
        "cols": int(rng.integers(1, 65)),
        "bits": int(rng.integers(2, 9)),
        "value_seed": int(rng.integers(1 << 16)),
        "stochastic": int(rng.integers(2)),
    }


@pair(
    "gnn.quantize.roundtrip_bounded", "gnn", BOUNDED_ERROR,
    gen=_gen_quantize,
    floors={"rows": 1, "cols": 1, "bits": 2, "stochastic": 0},
    description="quantize -> dequantize stays within one quantization "
    "step of the input (half a step for round-to-nearest), for any "
    "shape, bit width, and rounding mode.",
)
def _check_quantize(params: Dict) -> List[str]:
    rng = np.random.default_rng(int(params["value_seed"]))
    values = rng.normal(
        size=(int(params["rows"]), int(params["cols"]))
    ) * rng.uniform(0.1, 10.0)
    bits = int(params["bits"])
    _, _, scale = quantize(values, bits)
    step = float(np.max(scale))
    if int(params.get("stochastic", 0)):
        round_rng = np.random.default_rng(int(params["value_seed"]) + 1)
        restored = quantize_dequantize(values, bits, rng=round_rng)
        atol = step + 1e-12
    else:
        restored = quantize_dequantize(values, bits)
        atol = step / 2.0 + 1e-12
    return bounded_error(values, restored, atol=atol, label="roundtrip")


def _sim_lru(trace, capacity: int) -> Dict[str, int]:
    """Independent LRU simulation (OrderedDict reimplementation)."""
    entries: "OrderedDict[int, bool]" = OrderedDict()
    hits = misses = admissions = evictions = 0
    for v in trace:
        if capacity <= 0:
            misses += 1
            continue
        if v in entries:
            entries.move_to_end(v)
            hits += 1
        else:
            misses += 1
            admissions += 1
            entries[v] = True
            if len(entries) > capacity:
                entries.popitem(last=False)
                evictions += 1
    return {
        "hits": hits,
        "misses": misses,
        "admissions": admissions,
        "evictions": evictions,
    }


def _zipfish_trace(rng: np.random.Generator, n: int, length: int):
    """Skewed trace: mostly a hot head, with a uniform tail."""
    hot = max(1, n // 8)
    heads = rng.integers(0, hot, size=length)
    tails = rng.integers(0, n, size=length)
    pick_hot = rng.random(length) < 0.7
    return [int(h if p else t) for h, t, p in zip(heads, tails, pick_hot)]


def _gen_lru(rng: np.random.Generator) -> Dict:
    n = int(rng.integers(16, 257))
    return {
        "n": n,
        "capacity": int(rng.integers(1, max(2, n // 2))),
        "trace_len": int(rng.integers(64, 2049)),
        "trace_seed": int(rng.integers(1 << 16)),
        "feature_dim": int(rng.integers(1, 129)),
    }


@pair(
    "gnn.cache.lru_vs_trace_sim", "gnn", BIT_IDENTICAL,
    gen=_gen_lru,
    floors={"n": 2, "capacity": 1, "trace_len": 1, "feature_dim": 1},
    description="LRUCache replay vs an independent OrderedDict "
    "simulation: identical hits, and the cache's own accounting "
    "(hits/misses/admissions/evictions) must agree with both the "
    "simulation and CacheReport.bytes_saved.",
)
def _check_lru(params: Dict) -> List[str]:
    rng = np.random.default_rng(int(params["trace_seed"]))
    trace = _zipfish_trace(rng, int(params["n"]), int(params["trace_len"]))
    capacity = int(params["capacity"])
    feature_dim = int(params["feature_dim"])
    expected = _sim_lru(trace, capacity)
    cache = LRUCache(capacity)
    report = replay(trace, cache, feature_dim=feature_dim)
    out = same_values(expected["hits"], report.hits, "report.hits")
    stats = cache.stats  # the cache must keep its own books
    for key in ("hits", "misses", "admissions", "evictions"):
        out += same_values(expected[key], getattr(stats, key), f"cache.{key}")
    out += same_values(
        expected["hits"] * feature_dim * report.bytes_per_value,
        report.bytes_saved,
        "report.bytes_saved",
    )
    out += same_values(
        stats.hits * feature_dim * report.bytes_per_value,
        report.bytes_saved,
        "cache_vs_report.bytes_saved",
    )
    return out


def _gen_uniform(rng: np.random.Generator) -> Dict:
    n = int(rng.integers(32, 129))
    return {
        "n": n,
        "degree": 3,
        "capacity": int(rng.integers(4, max(5, n // 2))),
        "trace_len": int(rng.integers(4000, 8001)),
        "trace_seed": int(rng.integers(1 << 16)),
        "graph_seed": int(rng.integers(1 << 16)),
    }


@pair(
    "gnn.cache.static_vs_lru_uniform", "gnn", BOUNDED_ERROR,
    gen=_gen_uniform,
    floors={"n": 8, "capacity": 1, "trace_len": 500},
    description="On a uniform access trace neither recency nor degree "
    "carries signal, so StaticDegreeCache and LRUCache hit rates must "
    "both converge to capacity/n.",
)
def _check_static_vs_lru(params: Dict) -> List[str]:
    from ..graph.generators import erdos_renyi

    n = int(params["n"])
    capacity = int(params["capacity"])
    rng = np.random.default_rng(int(params["trace_seed"]))
    trace = [int(v) for v in rng.integers(0, n, size=int(params["trace_len"]))]
    graph = erdos_renyi(n, 0.1, seed=int(params.get("graph_seed", 0)))
    static = replay(trace, StaticDegreeCache(graph, capacity))
    lru = replay(trace, LRUCache(capacity))
    expected = capacity / n
    # 4000+ samples of a Bernoulli(c/n): 0.06 is many standard errors.
    out = bounded_error(
        [expected], [static.hit_rate], atol=0.06, label="static.hit_rate"
    )
    out += bounded_error(
        [expected], [lru.hit_rate], atol=0.06, label="lru.hit_rate"
    )
    out += bounded_error(
        [static.hit_rate], [lru.hit_rate], atol=0.08, label="static_vs_lru"
    )
    return out


def _gen_minibatch_loss(rng: np.random.Generator) -> Dict:
    return {
        "community_size": int(rng.integers(8, 21)),
        "batch_size": int(rng.integers(8, 33)),
        "graph_seed": int(rng.integers(1 << 16)),
        "model_seed": int(rng.integers(1 << 16)),
        "loader_seed": int(rng.integers(1 << 16)),
    }


@pair(
    "gnn.minibatch.loss_vs_fullgraph", "gnn", BOUNDED_ERROR,
    gen=_gen_minibatch_loss,
    floors={"community_size": 4, "batch_size": 1},
    description="batch-weighted mini-batch seed loss approaches the "
    "full-graph masked loss as fanout grows; at full fanout a SAGE "
    "model's seed logits are exact (blocks carry the seeds' complete "
    "1-hop aggregation neighborhoods), so the gap collapses to fp "
    "noise.",
)
def _check_minibatch_loss(params: Dict) -> List[str]:
    from ..graph.generators import planted_partition
    from .dataloader import MiniBatchLoader
    from .layers import GraphTensors
    from .models import NodeClassifier
    from .tensor import Tensor, no_grad

    cs = int(params["community_size"])
    graph, labels = planted_partition(
        3, cs, p_in=0.3, p_out=0.05, seed=int(params["graph_seed"])
    )
    n = graph.num_vertices
    rng = np.random.default_rng(int(params["graph_seed"]) + 1)
    features = np.eye(3)[labels] + rng.normal(0, 1.0, size=(n, 3))
    model = NodeClassifier(3, 8, 3, layer="sage", seed=int(params["model_seed"]))
    nodes = np.arange(n, dtype=np.int64)
    with no_grad():
        full_logits = model(GraphTensors(graph), Tensor(features))
        full_loss = float(
            full_logits.gather_rows(nodes).cross_entropy(labels).data
        )

    def minibatch_loss(fanout: int) -> float:
        loader = MiniBatchLoader(
            graph,
            items=nodes,
            batch_size=int(params["batch_size"]),
            fanouts=(fanout, fanout),
            features=features,
            seed=int(params["loader_seed"]),
        )
        total = 0.0
        count = 0
        with no_grad():
            for mb in loader.epoch():
                logits = model(mb.gt, Tensor(mb.x))
                seed_logits = logits.gather_rows(mb.seed_local)
                seed_labels = labels[mb.node_ids[mb.seed_local]]
                loss = float(seed_logits.cross_entropy(seed_labels).data)
                total += loss * mb.seed_local.size
                count += int(mb.seed_local.size)
        return total / count

    gap_small = abs(minibatch_loss(1) - full_loss)
    gap_full = abs(minibatch_loss(-1) - full_loss)
    out = bounded_error(
        [0.0], [gap_full], atol=1e-8, label="full_fanout_gap"
    )
    out += bounded_error(
        [gap_full], [min(gap_full, gap_small + 1e-8)],
        atol=1e-12, label="gap_monotone",
    )
    return out


def _gen_loader_cache(rng: np.random.Generator) -> Dict:
    n = int(rng.integers(40, 121))
    return {
        "n": n,
        "capacity": int(rng.integers(4, max(5, n // 2))),
        "batch_size": int(rng.integers(8, 33)),
        "fanout": int(rng.integers(1, 4)),
        "epochs": int(rng.integers(1, 3)),
        "seed": int(rng.integers(1 << 16)),
    }


@pair(
    "gnn.loader.cache_accounting", "gnn", BIT_IDENTICAL,
    gen=_gen_loader_cache,
    floors={"n": 8, "capacity": 1, "batch_size": 1, "fanout": 1, "epochs": 1},
    description="the loader's FeatureFetcher cache accounting must "
    "agree bit-for-bit with the cache's own books, an independent LRU "
    "simulation of the emitted block trace, a fresh-cache replay, and "
    "the gnn.loader.* / gnn.cache.* obs counters.",
)
def _check_loader_cache(params: Dict) -> List[str]:
    from ..graph.generators import barabasi_albert
    from ..obs import MetricsRegistry
    from .dataloader import MiniBatchLoader

    n = int(params["n"])
    capacity = int(params["capacity"])
    seed = int(params["seed"])
    graph = barabasi_albert(n, 3, seed=seed)
    features = np.random.default_rng(seed + 1).normal(size=(n, 4))
    obs = MetricsRegistry()
    cache = LRUCache(capacity, obs=obs)
    loader = MiniBatchLoader(
        graph,
        items=np.arange(n, dtype=np.int64),
        batch_size=int(params["batch_size"]),
        fanouts=(int(params["fanout"]), int(params["fanout"])),
        features=features,
        seed=seed,
        cache=cache,
        obs=obs,
    )
    trace: List[int] = []
    gathered = 0
    for _ in range(int(params["epochs"])):
        for mb in loader.epoch():
            trace.extend(int(v) for v in mb.node_ids)
            gathered += mb.gathered_nodes
    stats = cache.stats
    sim = _sim_lru(trace, capacity)
    fresh_report = replay(trace, LRUCache(capacity), feature_dim=4)
    out = same_values(sim["hits"], stats.hits, "sim.hits")
    for key in ("misses", "admissions", "evictions"):
        out += same_values(sim[key], getattr(stats, key), f"sim.{key}")
    out += same_values(fresh_report.hits, stats.hits, "replay.hits")
    out += same_values(loader.fetcher.hits, stats.hits, "fetcher.hits")
    out += same_values(loader.fetcher.misses, stats.misses, "fetcher.misses")
    out += same_values(gathered, stats.accesses, "accesses_vs_gathered")
    out += same_values(
        stats.hits,
        int(obs.counter("gnn.loader.cache_hits").total),
        "obs.loader.cache_hits",
    )
    out += same_values(
        stats.misses,
        int(obs.counter("gnn.loader.cache_misses").total),
        "obs.loader.cache_misses",
    )
    out += same_values(
        stats.hits,
        int(obs.counter("gnn.cache.hits").value(cache="lru")),
        "obs.cache.hits",
    )
    row_bytes = features.shape[1] * features.dtype.itemsize
    out += same_values(
        stats.misses * row_bytes,
        int(obs.counter("gnn.loader.bytes_fetched").total),
        "obs.loader.bytes_fetched",
    )
    return out
