"""Operator scheduling and pipelining (ByteGNN / BGL / Dorylus).

Sampled GNN training is a pipeline of heterogeneous operators —
**sample** (CPU graph walk), **gather** (feature fetch, network), and
**compute** (dense math) — and the "Operator Scheduling" techniques of
Table 2 are about keeping all three resources busy:

* :func:`sequential_schedule` — the naive baseline: one mini-batch's
  stages run back to back; every resource idles 2/3 of the time;
* :func:`pipelined_schedule` — BGL's factored paradigm: each stage type
  runs on its own executor, batch ``i``'s compute overlaps batch
  ``i+1``'s gather and batch ``i+2``'s sample; throughput approaches
  the bottleneck stage's rate;
* :func:`two_level_schedule` — ByteGNN's refinement: with ``k``
  interleaved sampler instances per iteration (intra-iteration
  parallelism) the sample stage stops being the bottleneck.

All three consume per-batch stage durations (seconds or any unit) and
return a :class:`ScheduleResult` with makespan and per-resource
utilization — the quantities bench C9 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from ..obs import StatsViewMixin

__all__ = [
    "StageTimes",
    "ScheduleResult",
    "sequential_schedule",
    "pipelined_schedule",
    "two_level_schedule",
    "measured_stage_times",
]


@dataclass
class StageTimes:
    """Durations of one mini-batch's three stages."""

    sample: float
    gather: float
    compute: float


@dataclass
class ScheduleResult(StatsViewMixin):
    """Outcome of scheduling a batch sequence."""

    makespan: float
    busy: Dict[str, float] = field(default_factory=dict)

    def utilization(self, stage: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy.get(stage, 0.0) / self.makespan

    @property
    def mean_utilization(self) -> float:
        if not self.busy:
            return 0.0
        return sum(self.utilization(s) for s in self.busy) / len(self.busy)

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "utilization": {s: self.utilization(s) for s in self.busy},
            "mean_utilization": self.mean_utilization,
        }

    def merge(self, other: "ScheduleResult") -> "ScheduleResult":
        """Sequential composition: makespans and busy times add."""
        self.makespan += other.makespan
        for stage, t in other.busy.items():
            self.busy[stage] = self.busy.get(stage, 0.0) + t
        return self


def sequential_schedule(batches: Sequence[StageTimes]) -> ScheduleResult:
    """Run each batch's sample -> gather -> compute back to back."""
    makespan = 0.0
    busy = {"sample": 0.0, "gather": 0.0, "compute": 0.0}
    for b in batches:
        makespan += b.sample + b.gather + b.compute
        busy["sample"] += b.sample
        busy["gather"] += b.gather
        busy["compute"] += b.compute
    return ScheduleResult(makespan=makespan, busy=busy)


def pipelined_schedule(batches: Sequence[StageTimes]) -> ScheduleResult:
    """Three dedicated executors; stage ``k`` of batch ``i`` waits for
    stage ``k-1`` of batch ``i`` and stage ``k`` of batch ``i-1``."""
    sample_free = gather_free = compute_free = 0.0
    busy = {"sample": 0.0, "gather": 0.0, "compute": 0.0}
    for b in batches:
        s_end = sample_free + b.sample
        sample_free = s_end
        g_end = max(s_end, gather_free) + b.gather
        gather_free = g_end
        c_end = max(g_end, compute_free) + b.compute
        compute_free = c_end
        busy["sample"] += b.sample
        busy["gather"] += b.gather
        busy["compute"] += b.compute
    return ScheduleResult(makespan=compute_free, busy=busy)


def two_level_schedule(
    batches: Sequence[StageTimes], samplers: int = 2
) -> ScheduleResult:
    """ByteGNN's two-level scheme: ``samplers`` concurrent sampler
    instances feed the gather/compute pipeline (inter-iteration pipeline
    plus intra-iteration operator parallelism)."""
    sampler_free = [0.0] * max(samplers, 1)
    gather_free = compute_free = 0.0
    busy = {"sample": 0.0, "gather": 0.0, "compute": 0.0}
    for b in batches:
        k = int(np.argmin(sampler_free))
        s_end = sampler_free[k] + b.sample
        sampler_free[k] = s_end
        g_end = max(s_end, gather_free) + b.gather
        gather_free = g_end
        c_end = max(g_end, compute_free) + b.compute
        compute_free = c_end
        busy["sample"] += b.sample
        busy["gather"] += b.gather
        busy["compute"] += b.compute
    return ScheduleResult(makespan=compute_free, busy=busy)


def measured_stage_times(
    num_batches: int,
    sample_cost: float = 1.0,
    gather_cost: float = 1.2,
    compute_cost: float = 0.8,
    jitter: float = 0.2,
    seed: int = 0,
) -> List[StageTimes]:
    """Synthetic per-batch stage durations with multiplicative jitter."""
    rng = np.random.default_rng(seed)

    def j() -> float:
        return 1.0 + jitter * (rng.random() - 0.5)

    return [
        StageTimes(
            sample=sample_cost * j(),
            gather=gather_cost * j(),
            compute=compute_cost * j(),
        )
        for _ in range(num_batches)
    ]
