"""Activation compression for memory-bounded GNN training (EXACT).

EXACT [23] shrinks GNN training *memory* (not network traffic) by
storing the activations retained for the backward pass in extreme
low-bit form, dequantizing on use; F²CGT [24] extends the idea with
two-level feature compression.

Our autograd retains parents' forward outputs inside backward closures,
so the faithful reproduction is a **checkpoint-with-compression**
trainer: the forward pass stores each layer's *input* activations
quantized (:mod:`repro.gnn.quantization`), frees the exact copies, and
the backward pass recomputes each layer locally from the dequantized
inputs.  The gradient error introduced is therefore exactly EXACT's
quantization error — measurable against the uncompressed run — and the
resident-activation footprint is measurable in bytes.

:func:`train_compressed` trains a :class:`~repro.gnn.models.NodeClassifier`
this way and reports accuracy plus activation-memory bytes per step;
:func:`activation_memory` sizes the uncompressed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.csr import Graph
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .quantization import compressed_nbytes, quantize_dequantize
from .tensor import Tensor, no_grad
from .train import TrainReport

__all__ = ["activation_memory", "train_compressed", "CompressedReport"]


@dataclass
class CompressedReport:
    """Training outcome + memory accounting."""

    report: TrainReport
    activation_bytes_exact: int
    activation_bytes_compressed: int

    @property
    def memory_ratio(self) -> float:
        if self.activation_bytes_exact == 0:
            return 1.0
        return self.activation_bytes_compressed / self.activation_bytes_exact


def activation_memory(graph: Graph, dims: List[int]) -> int:
    """Bytes of fp64 activations retained across a forward pass."""
    return sum(graph.num_vertices * d * 8 for d in dims)


def train_compressed(
    model: NodeClassifier,
    graph: Graph,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    bits: Optional[int] = 2,
    epochs: int = 30,
    lr: float = 0.01,
    seed: int = 0,
) -> CompressedReport:
    """Layer-recomputation training with quantized stored activations.

    ``bits=None`` stores exact activations (the recomputation-only
    baseline — gradients then match plain training to float precision,
    which the tests assert).
    """
    gt = GraphTensors(graph)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_idx = np.nonzero(train_mask)[0]
    rng = np.random.default_rng(seed)
    num_layers = model.num_layers
    layer_dims = [features.shape[1]] + [
        model.layers[i].weight.shape[1] for i in range(num_layers)
    ]

    exact_bytes = activation_memory(graph, layer_dims[:-1])
    if bits is None:
        stored_bytes = exact_bytes
    else:
        stored_bytes = sum(
            compressed_nbytes((graph.num_vertices, d), bits)
            for d in layer_dims[:-1]
        )

    for _ in range(epochs):
        # ---- forward: run layer by layer, storing (possibly lossy)
        # copies of each layer's input, freeing the autograd graph.
        stored_inputs: List[np.ndarray] = []
        h = features
        for i in range(num_layers):
            if bits is None:
                stored_inputs.append(h.copy())
            else:
                stored_inputs.append(quantize_dequantize(h, bits, rng=rng))
            with no_grad():
                out = model.forward_layer(i, gt, Tensor(h))
            h = out.data

        # ---- backward: recompute each layer from its stored input.
        optimizer.zero_grad()
        grad_out: Optional[np.ndarray] = None
        loss_value = 0.0
        for i in reversed(range(num_layers)):
            x_in = Tensor(stored_inputs[i], requires_grad=True)
            out = model.forward_layer(i, gt, x_in)
            if i == num_layers - 1:
                loss = out.gather_rows(train_idx).cross_entropy(
                    labels[train_idx]
                )
                loss_value = float(loss.data)
                loss.backward()
            else:
                out.backward(grad_out)
            grad_out = None
            if i > 0:
                # The gradient w.r.t. this layer's input feeds the next
                # recomputation step down the stack.
                grad_out = _input_gradient(x_in)
        optimizer.step()
        report.losses.append(loss_value)
        report.steps += 1
        with no_grad():
            out = model(gt, Tensor(features)).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))

    return CompressedReport(
        report=report,
        activation_bytes_exact=exact_bytes,
        activation_bytes_compressed=stored_bytes,
    )


def _input_gradient(x: Tensor) -> np.ndarray:
    if x.grad is None:
        raise RuntimeError("layer input did not receive a gradient")
    return x.grad
