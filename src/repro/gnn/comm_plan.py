"""Topology-aware communication planning (DGCL).

DGCL [6] replaces flat peer-to-peer feature exchange with communication
plans derived from the cluster's link speeds: on NVLink machines,
cross-host transfers should happen once per host and fan out over
NVLink, not once per GPU.

Planners price an allreduce (gradient sync) or a broadcast over a
:class:`~repro.cluster.links.LinkTopology`:

* :func:`flat_ring_allreduce_time` — the topology-oblivious baseline:
  one ring over all devices; on an NVLink cluster the ring repeatedly
  crosses the slow inter-host links;
* :func:`hierarchical_allreduce_time` — DGCL-style plan: reduce inside
  each host over NVLink, run the inter-host ring once between host
  leaders, then broadcast back over NVLink;
* the same pair for a one-to-all broadcast.

Bench C12 sweeps payload sizes and topologies; the claim's shape is
that the hierarchical plan wins by ~the GPUs-per-host factor on NVLink
clusters and ties on flat Ethernet.
"""

from __future__ import annotations

from typing import List

from ..cluster.links import LinkTopology

__all__ = [
    "flat_ring_allreduce_time",
    "hierarchical_allreduce_time",
    "flat_broadcast_time",
    "hierarchical_broadcast_time",
]


def _ring_time(topology: LinkTopology, devices: List[int], nbytes: int) -> float:
    """Time of a ring allreduce over the listed devices.

    Standard cost: ``2 (k - 1)`` chunk steps of size ``nbytes / k``;
    each step is bounded by the slowest link in the ring.
    """
    k = len(devices)
    if k <= 1:
        return 0.0
    chunk = nbytes / k
    step = max(
        topology.transfer_time(devices[i], devices[(i + 1) % k], int(chunk))
        for i in range(k)
    )
    return 2 * (k - 1) * step


def flat_ring_allreduce_time(topology: LinkTopology, nbytes: int) -> float:
    """Topology-oblivious ring over all devices in id order."""
    return _ring_time(topology, list(range(topology.num_devices)), nbytes)


def hierarchical_allreduce_time(
    topology: LinkTopology, nbytes: int, gpus_per_host: int
) -> float:
    """Intra-host reduce + leader ring + intra-host broadcast."""
    n = topology.num_devices
    if n % gpus_per_host:
        raise ValueError("device count must be a multiple of gpus_per_host")
    num_hosts = n // gpus_per_host
    # Phase 1: reduce inside each host (ring over the host's GPUs).
    intra = 0.0
    for h in range(num_hosts):
        devices = list(range(h * gpus_per_host, (h + 1) * gpus_per_host))
        intra = max(intra, _ring_time(topology, devices, nbytes))
    # Phase 2: ring across host leaders.
    leaders = [h * gpus_per_host for h in range(num_hosts)]
    inter = _ring_time(topology, leaders, nbytes)
    # Phase 3: broadcast inside each host.
    bcast = 0.0
    for h in range(num_hosts):
        leader = h * gpus_per_host
        for g in range(1, gpus_per_host):
            bcast = max(bcast, topology.transfer_time(leader, leader + g, nbytes))
    return intra + inter + bcast


def flat_broadcast_time(topology: LinkTopology, root: int, nbytes: int) -> float:
    """Root sends the payload directly to every other device (serialized
    per destination host link, parallel across distinct links)."""
    times = [
        topology.transfer_time(root, d, nbytes)
        for d in range(topology.num_devices)
        if d != root
    ]
    return sum(times)  # one NIC at the root: sends serialize


def hierarchical_broadcast_time(
    topology: LinkTopology, root: int, nbytes: int, gpus_per_host: int
) -> float:
    """Send once per host, then fan out over intra-host links."""
    n = topology.num_devices
    num_hosts = n // gpus_per_host
    root_host = root // gpus_per_host
    cross = sum(
        topology.transfer_time(root, h * gpus_per_host, nbytes)
        for h in range(num_hosts)
        if h != root_host
    )
    fan = 0.0
    for h in range(num_hosts):
        leader = h * gpus_per_host if h != root_host else root
        local = max(
            (
                topology.transfer_time(leader, d, nbytes)
                for d in range(h * gpus_per_host, (h + 1) * gpus_per_host)
                if d != leader
            ),
            default=0.0,
        )
        fan = max(fan, local)
    return cross + fan
