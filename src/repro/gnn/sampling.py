"""Neighborhood sampling and k-hop subgraph materialization.

The graph-data-communication techniques of Table 2:

* :func:`sample_neighbors` / :class:`NeighborSampler` — GraphSAGE-style
  fanout sampling, the technique of Euler [4], AliGraph [73] and
  ByteGNN [71]: cap each node's in-neighborhood per layer so the
  per-batch data volume is bounded by ``batch * prod(fanouts)`` instead
  of the full multi-hop neighborhood;
* :func:`khop_subgraph` — AGL's [68] offline materialization: extract
  the complete k-hop neighborhood of each seed so training needs no
  graph access at all.

Samplers return :class:`Block` objects — small graphs over compacted
ids with a mapping back to the parent graph — which plug directly into
the layers via :class:`~repro.gnn.layers.GraphTensors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph, GraphBuilder
from .layers import GraphTensors

__all__ = ["Block", "NeighborSampler", "sample_neighbors", "khop_subgraph", "layerwise_sample"]


@dataclass
class Block:
    """A sampled computation block.

    ``graph`` is over compacted local ids; ``node_ids[local]`` maps back
    to the parent graph; ``seed_local`` are the positions of the batch
    seeds.  ``gathered_nodes`` counts the feature rows a trainer must
    fetch — the communication quantity bench C7 sweeps.
    """

    graph: Graph
    node_ids: np.ndarray
    seed_local: np.ndarray

    @property
    def gathered_nodes(self) -> int:
        return int(self.node_ids.size)

    def tensors(self, add_self_loops: bool = True) -> GraphTensors:
        return GraphTensors(self.graph, add_self_loops=add_self_loops)


def sample_neighbors(
    graph: Graph,
    seeds: Sequence[int],
    fanouts: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> Block:
    """Multi-layer fanout sampling around ``seeds``.

    ``fanouts[k]`` caps the neighbors drawn per node at hop ``k``
    (``-1`` = keep all).  Returns one block containing the union of all
    sampled nodes and the sampled edges.
    """
    rng = rng or np.random.default_rng()
    seeds = np.asarray(list(seeds), dtype=np.int64)
    keep_nodes: List[int] = list(seeds)
    known = set(int(s) for s in seeds)
    frontier = list(seeds)
    edges: List[Tuple[int, int]] = []
    for fanout in fanouts:
        next_frontier: List[int] = []
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            if fanout >= 0 and nbrs.size > fanout:
                picked = rng.choice(nbrs, size=fanout, replace=False)
            else:
                picked = nbrs
            for w in picked:
                w = int(w)
                edges.append((int(v), w))
                if w not in known:
                    known.add(w)
                    keep_nodes.append(w)
                    next_frontier.append(w)
        frontier = next_frontier
    node_ids = np.asarray(keep_nodes, dtype=np.int64)
    remap = {int(g): l for l, g in enumerate(node_ids)}
    builder = GraphBuilder(directed=False)
    builder.add_vertex(node_ids.size - 1)
    for u, v in edges:
        builder.add_edge(remap[u], remap[v])
    labels = None
    if graph.vertex_labels is not None:
        labels = graph.vertex_labels[node_ids]
    block_graph = builder.build(num_vertices=node_ids.size, vertex_labels=labels)
    seed_local = np.asarray([remap[int(s)] for s in seeds], dtype=np.int64)
    return Block(graph=block_graph, node_ids=node_ids, seed_local=seed_local)


class NeighborSampler:
    """Reusable sampler with fixed fanouts and a seeded RNG."""

    def __init__(self, graph: Graph, fanouts: Sequence[int], seed: int = 0) -> None:
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = np.random.default_rng(seed)

    def sample(self, seeds: Sequence[int]) -> Block:
        return sample_neighbors(self.graph, seeds, self.fanouts, rng=self.rng)

    def batches(
        self, nodes: Sequence[int], batch_size: int
    ) -> List[Block]:
        """Shuffle ``nodes`` and sample one block per mini-batch."""
        nodes = np.asarray(list(nodes), dtype=np.int64)
        order = self.rng.permutation(nodes.size)
        blocks = []
        for start in range(0, nodes.size, batch_size):
            batch = nodes[order[start: start + batch_size]]
            blocks.append(self.sample(batch))
        return blocks


def khop_subgraph(graph: Graph, seed: int, k: int) -> Block:
    """The complete k-hop neighborhood of one seed (AGL materialization)."""
    block = sample_neighbors(
        graph, [seed], fanouts=[-1] * k, rng=np.random.default_rng(0)
    )
    return block


def layerwise_sample(
    graph: Graph,
    seeds: Sequence[int],
    nodes_per_layer: Sequence[int],
    rng: Optional[np.random.Generator] = None,
) -> Block:
    """FastGCN-style layer-wise importance sampling.

    Node-wise fanout sampling (:func:`sample_neighbors`) suffers
    *neighbor explosion*: the block grows multiplicatively with depth.
    Layer-wise sampling instead draws a fixed set of ``nodes_per_layer[k]``
    vertices per layer — importance-weighted by degree — and keeps only
    edges between consecutive layers, so the block size is *additive*
    in depth.  The price is possibly disconnected seeds (handled by
    always including each layer's frontier parents' neighbors in the
    candidate pool).
    """
    rng = rng or np.random.default_rng()
    seeds = np.asarray(list(seeds), dtype=np.int64)
    layers: List[np.ndarray] = [seeds]
    known = set(int(s) for s in seeds)
    keep_nodes: List[int] = list(seeds)
    edges: List[Tuple[int, int]] = []
    for budget in nodes_per_layer:
        # Candidate pool: union of the previous layer's neighborhoods.
        pool: List[int] = []
        for v in layers[-1]:
            pool.extend(int(w) for w in graph.neighbors(int(v)))
        if not pool:
            layers.append(np.empty(0, dtype=np.int64))
            continue
        unique_pool = np.unique(np.asarray(pool, dtype=np.int64))
        # Importance ~ degree (FastGCN uses squared norms; degree is the
        # standard unlabeled proxy).
        weights = np.asarray(
            [graph.degree(int(v)) for v in unique_pool], dtype=np.float64
        )
        weights = weights / weights.sum()
        take = min(budget, unique_pool.size)
        chosen = rng.choice(unique_pool, size=take, replace=False, p=weights)
        layers.append(chosen)
        chosen_set = set(int(v) for v in chosen)
        for v in layers[-2]:
            v = int(v)
            for w in graph.neighbors(v):
                w = int(w)
                if w in chosen_set:
                    edges.append((v, w))
        for v in chosen:
            v = int(v)
            if v not in known:
                known.add(v)
                keep_nodes.append(v)
    node_ids = np.asarray(keep_nodes, dtype=np.int64)
    remap = {int(g_id): local for local, g_id in enumerate(node_ids)}
    builder = GraphBuilder(directed=False)
    builder.add_vertex(node_ids.size - 1)
    for u, v in edges:
        builder.add_edge(remap[u], remap[v])
    labels = None
    if graph.vertex_labels is not None:
        labels = graph.vertex_labels[node_ids]
    block_graph = builder.build(num_vertices=node_ids.size, vertex_labels=labels)
    seed_local = np.asarray([remap[int(s)] for s in seeds], dtype=np.int64)
    return Block(graph=block_graph, node_ids=node_ids, seed_local=seed_local)
