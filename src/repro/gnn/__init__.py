"""GNN training systems: autograd, layers, sampling, and the Table-2 techniques."""

from .activation_compression import (
    CompressedReport,
    activation_memory,
    train_compressed,
)
from .caching import (
    CacheStats,
    LRUCache,
    StaticDegreeCache,
    access_trace_from_sampling,
    replay,
)
from .comm_plan import (
    flat_broadcast_time,
    flat_ring_allreduce_time,
    hierarchical_allreduce_time,
    hierarchical_broadcast_time,
)
from .dataloader import (
    FeatureFetcher,
    InferReport,
    ItemSampler,
    MiniBatch,
    MiniBatchLoader,
    infer_sampled,
    sampled_inference_blocks,
)
from .distributed import DistributedTrainer, halo_sets
from .distributed_sampled import DistributedSampledTrainer
from .historical import HistoricalReport, train_historical
from .layers import (
    GATLayer,
    GCNLayer,
    GINLayer,
    GraphTensors,
    Linear,
    Module,
    SAGELayer,
    SAGEPoolLayer,
)
from .models import Adam, GraphClassifier, NodeClassifier, SGD, accuracy
from .offload import DeviceMemoryExceeded, OffloadPlan, naive_footprint, plan_offload
from .p3 import (
    data_parallel_bytes_per_step,
    p3_bytes_per_step,
    partial_aggregation,
    shard_columns,
)
from .pipeline import (
    ScheduleResult,
    StageTimes,
    measured_stage_times,
    pipelined_schedule,
    sequential_schedule,
    two_level_schedule,
)
from .quantization import (
    ErrorCompensatedQuantizer,
    compressed_nbytes,
    dequantize,
    quantize,
    quantize_dequantize,
)
from .neural_matching import (
    NeuralMatcher,
    OrderEmbedder,
    contains_exact,
    make_training_pairs,
)
from .sampling import Block, NeighborSampler, khop_subgraph, layerwise_sample, sample_neighbors
from .subgraph_gnn import (
    PlainGraphGNN,
    SubgraphGNN,
    wl_colors,
    wl_indistinguishable,
)
from .serverless import DeploymentCost, Workload, estimate_costs
from .staleness import (
    SancusGate,
    StalenessTrace,
    simulate_staleness,
    train_delayed_halo,
    train_stale_gradients,
)
from .tensor import Parameter, Tensor, no_grad
from .train import TrainReport, train_full_graph, train_sampled

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "GraphTensors",
    "Module",
    "Linear",
    "GCNLayer",
    "SAGELayer",
    "SAGEPoolLayer",
    "GATLayer",
    "GINLayer",
    "NodeClassifier",
    "GraphClassifier",
    "SGD",
    "Adam",
    "accuracy",
    "Block",
    "NeighborSampler",
    "sample_neighbors",
    "khop_subgraph",
    "layerwise_sample",
    "TrainReport",
    "train_full_graph",
    "train_sampled",
    "ItemSampler",
    "FeatureFetcher",
    "MiniBatch",
    "MiniBatchLoader",
    "InferReport",
    "infer_sampled",
    "sampled_inference_blocks",
    "DistributedTrainer",
    "halo_sets",
    "StalenessTrace",
    "simulate_staleness",
    "train_stale_gradients",
    "SancusGate",
    "train_delayed_halo",
    "StageTimes",
    "ScheduleResult",
    "sequential_schedule",
    "pipelined_schedule",
    "two_level_schedule",
    "measured_stage_times",
    "shard_columns",
    "partial_aggregation",
    "data_parallel_bytes_per_step",
    "p3_bytes_per_step",
    "StaticDegreeCache",
    "CacheStats",
    "LRUCache",
    "access_trace_from_sampling",
    "replay",
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "compressed_nbytes",
    "ErrorCompensatedQuantizer",
    "flat_ring_allreduce_time",
    "hierarchical_allreduce_time",
    "flat_broadcast_time",
    "hierarchical_broadcast_time",
    "Workload",
    "DeploymentCost",
    "estimate_costs",
    "naive_footprint",
    "plan_offload",
    "DeviceMemoryExceeded",
    "OffloadPlan",
    "CompressedReport",
    "activation_memory",
    "train_compressed",
    "NeuralMatcher",
    "OrderEmbedder",
    "contains_exact",
    "make_training_pairs",
    "PlainGraphGNN",
    "SubgraphGNN",
    "wl_colors",
    "wl_indistinguishable",
    "HistoricalReport",
    "train_historical",
    "DistributedSampledTrainer",
]
