"""Distributed mini-batch GNN training (the DistDGL pipeline).

The industrial deployment shape Section 3 describes: the graph is
partitioned across workers; each worker samples mini-batch blocks from
its local training vertices; the block's *feature rows* are fetched —
locally when the owner is the sampling worker, over the network
otherwise — optionally through a per-worker feature cache.  This is
where the tutorial's three "graph data communication" techniques
(partitioning, sampling, caching) compose, and this trainer runs all
three against one model with every byte priced:

* partitioning decides which rows are remote (C8);
* fanouts bound how many rows a step touches (C7);
* the cache absorbs repeat fetches of hot vertices (C13).

The learning itself is standard sampled training (same math as
:func:`repro.gnn.train.train_sampled`), so quality is real, and the
:class:`~repro.cluster.comm.Network` carries the feature traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster.comm import Network
from ..graph.csr import Graph
from ..graph.partition import Partition
from .caching import LRUCache, StaticDegreeCache
from .models import Adam, NodeClassifier, accuracy
from .sampling import NeighborSampler
from .tensor import Tensor, no_grad
from .train import TrainReport

__all__ = ["DistributedSampledTrainer"]


@dataclass
class DistributedSampledTrainer:
    """DistDGL-style trainer: partition + sampling + feature cache."""

    model: NodeClassifier
    graph: Graph
    partition: Partition
    features: np.ndarray
    labels: np.ndarray
    fanouts: Sequence[int] = (5, 5)
    batch_size: int = 32
    lr: float = 0.01
    cache_capacity: int = 0
    cache_policy: str = "degree"  # "degree" (AliGraph) or "lru" (BGL)
    seed: int = 0

    def __post_init__(self) -> None:
        self.network = Network(self.partition.num_parts)
        self._optimizer = Adam(self.model.parameters(), lr=self.lr)
        self._sampler = NeighborSampler(self.graph, self.fanouts, seed=self.seed)
        self._caches = [
            self._make_cache() for _ in range(self.partition.num_parts)
        ]
        self.cache_hits = 0
        self.remote_rows = 0
        self.local_rows = 0

    def _make_cache(self):
        if self.cache_capacity <= 0:
            return None
        if self.cache_policy == "degree":
            return StaticDegreeCache(self.graph, self.cache_capacity)
        if self.cache_policy == "lru":
            return LRUCache(self.cache_capacity)
        raise ValueError(f"unknown cache policy {self.cache_policy!r}")

    # -- feature fetch pricing ------------------------------------------------

    def _fetch_rows(self, worker: int, node_ids: np.ndarray) -> None:
        feature_dim = self.features.shape[1]
        cache = self._caches[worker]
        per_owner: Dict[int, int] = {}
        for v in node_ids:
            owner = int(self.partition.assignment[int(v)])
            if owner == worker:
                self.local_rows += 1
                continue
            if cache is not None and cache.lookup(int(v)):
                self.cache_hits += 1
                continue
            self.remote_rows += 1
            per_owner[owner] = per_owner.get(owner, 0) + 1
        for owner, count in per_owner.items():
            self.network.send_now(
                owner, worker, None, tag="features",
                nbytes=count * feature_dim * 8,
            )
            self.network.receive(worker)

    # -- training ----------------------------------------------------------------

    def train(
        self,
        train_mask: np.ndarray,
        val_mask: Optional[np.ndarray] = None,
        epochs: int = 5,
    ) -> TrainReport:
        report = TrainReport()
        train_nodes = np.nonzero(train_mask)[0]
        owners = self.partition.assignment
        from .layers import GraphTensors

        for _ in range(epochs):
            # Each worker samples batches from its own training vertices
            # (DistDGL's local-batch policy); we round-robin workers.
            for worker in range(self.partition.num_parts):
                local_train = train_nodes[
                    owners[train_nodes] == worker
                ]
                if local_train.size == 0:
                    continue
                for block in self._sampler.batches(local_train, self.batch_size):
                    self._fetch_rows(worker, block.node_ids)
                    gt = block.tensors()
                    x = Tensor(self.features[block.node_ids])
                    self._optimizer.zero_grad()
                    logits = self.model(gt, x)
                    seed_logits = logits.gather_rows(block.seed_local)
                    seed_labels = self.labels[
                        block.node_ids[block.seed_local]
                    ]
                    loss = seed_logits.cross_entropy(seed_labels)
                    loss.backward()
                    self._optimizer.step()
                    report.losses.append(float(loss.data))
                    report.steps += 1
                    report.gathered_features += block.gathered_nodes
            gt_full = GraphTensors(self.graph)
            with no_grad():
                out = self.model(gt_full, Tensor(self.features)).data
            report.train_accuracy.append(accuracy(out, self.labels, train_mask))
            if val_mask is not None:
                report.val_accuracy.append(accuracy(out, self.labels, val_mask))
        return report

    @property
    def feature_bytes(self) -> int:
        return self.network.stats.by_tag.get("features", 0)

    @property
    def cache_hit_rate(self) -> float:
        fetches = self.cache_hits + self.remote_rows
        return self.cache_hits / fetches if fetches else 0.0
