"""Lossy quantization for GNN communication compression.

The compressed-training systems of the tutorial — EC-Graph [34],
EXACT [23], F2CGT [24], Sylvie [69] — shrink the dominant traffic
(feature/activation/gradient exchange) with low-bit quantization:

* :func:`quantize` / :func:`dequantize` — per-row uniform affine
  quantization to ``bits`` bits, with optional stochastic rounding
  (unbiased, the standard choice for training);
* :class:`ErrorCompensatedQuantizer` — EC-Graph's error feedback: the
  quantization residual of round ``t`` is added to the payload of round
  ``t + 1``, so errors cancel over time instead of accumulating;
* :func:`quantize_dequantize` — the round trip, used by the distributed
  trainer to make the loss *real* rather than accounted.

``compressed_nbytes`` reports the wire size (payload + scales), so
benches can put true byte counts against accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "quantize",
    "dequantize",
    "quantize_dequantize",
    "compressed_nbytes",
    "ErrorCompensatedQuantizer",
]


def quantize(
    values: np.ndarray,
    bits: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row uniform quantization.

    Returns ``(codes, row_min, row_scale)``; ``codes`` is ``uint8``/
    ``uint16`` holding integers in ``[0, 2^bits - 1]``.  With ``rng``
    given, rounding is stochastic and unbiased; otherwise
    round-to-nearest.
    """
    if bits < 1 or bits > 16:
        raise ValueError("bits must be in 1..16")
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    levels = (1 << bits) - 1
    row_min = values.min(axis=1, keepdims=True)
    row_max = values.max(axis=1, keepdims=True)
    scale = (row_max - row_min) / levels
    scale = np.where(scale == 0, 1.0, scale)
    normalized = (values - row_min) / scale
    if rng is not None:
        floor = np.floor(normalized)
        frac = normalized - floor
        codes = floor + (rng.random(values.shape) < frac)
    else:
        codes = np.rint(normalized)
    codes = np.clip(codes, 0, levels)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return codes.astype(dtype), row_min.squeeze(1), scale.squeeze(1)


def dequantize(
    codes: np.ndarray, row_min: np.ndarray, scale: np.ndarray
) -> np.ndarray:
    """Invert :func:`quantize` (up to quantization error)."""
    return codes.astype(np.float64) * scale[:, None] + row_min[:, None]


def quantize_dequantize(
    values: np.ndarray,
    bits: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The lossy round trip, shaped like the input."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    flat = np.atleast_2d(values)
    codes, row_min, scale = quantize(flat, bits, rng=rng)
    out = dequantize(codes, row_min, scale)
    return out.reshape(values.shape)


def compressed_nbytes(shape: Tuple[int, ...], bits: int) -> int:
    """Wire bytes for a quantized tensor: packed codes + per-row scales."""
    rows = shape[0] if len(shape) > 1 else 1
    cols = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    payload_bits = rows * cols * bits
    overhead = rows * 2 * 8  # per-row (min, scale) as float64
    return payload_bits // 8 + (1 if payload_bits % 8 else 0) + overhead


@dataclass
class ErrorCompensatedQuantizer:
    """EC-Graph-style quantizer with error feedback.

    Each call quantizes ``values + residual`` and retains the new
    residual, so the time-averaged transmitted signal is unbiased even
    at 1-2 bits.
    """

    bits: int
    stochastic: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        self._residual: Optional[np.ndarray] = None
        self._rng = np.random.default_rng(self.seed)

    def compress(self, values: np.ndarray) -> np.ndarray:
        """Quantize with feedback; returns the dequantized payload."""
        values = np.asarray(values, dtype=np.float64)
        if self._residual is None or self._residual.shape != values.shape:
            self._residual = np.zeros_like(values)
        target = values + self._residual
        sent = quantize_dequantize(
            target, self.bits, rng=self._rng if self.stochastic else None
        )
        self._residual = target - sent
        return sent

    def reset(self) -> None:
        self._residual = None
