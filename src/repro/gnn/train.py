"""Single-process GNN trainers: full-graph and sampled mini-batch.

The two training regimes the tutorial's Section 3 contrasts:

* :func:`train_full_graph` — every step runs the model over the whole
  graph (the DistGNN/Sancus/HongTu regime); per-step cost scales with
  ``|E| * feature_dim``;
* :func:`train_sampled` — GraphSAGE-style mini-batch training over
  sampled blocks (the Euler/AliGraph/DistDGL regime); per-step cost is
  bounded by the fanout product, and ``TrainReport.gathered_features``
  records the data volume the sampler touched.

Both return a :class:`TrainReport` with loss/accuracy traces, so benches
and tests can compare convergence as well as cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import MetricsRegistry, StatsViewMixin, Tracer, merge_counters
from ..resilience import FaultInjector, SnapshotStore
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .tensor import Tensor, no_grad

__all__ = ["TrainReport", "train_full_graph", "train_sampled"]

SNAPSHOT_TAG = "gnn"


def _training_state(
    epoch: int, model: NodeClassifier, optimizer: Adam, report: TrainReport
) -> Dict[str, Any]:
    """Everything a resumed run needs to be bit-identical: weights,
    Adam moments + step count, and the report trace so far."""
    return {
        "epoch": epoch,
        "params": [p.data for p in model.parameters()],
        "adam": {"t": optimizer.t, "m": optimizer.m, "v": optimizer.v},
        "report": {
            "losses": report.losses,
            "train_accuracy": report.train_accuracy,
            "val_accuracy": report.val_accuracy,
            "gathered_features": report.gathered_features,
            "steps": report.steps,
        },
    }


def _restore_training_state(
    state: Dict[str, Any],
    model: NodeClassifier,
    optimizer: Adam,
    report: TrainReport,
) -> int:
    for p, data in zip(model.parameters(), state["params"]):
        p.data = data
        p.zero_grad()
    optimizer.t = state["adam"]["t"]
    optimizer.m = state["adam"]["m"]
    optimizer.v = state["adam"]["v"]
    rep = state["report"]
    report.losses[:] = rep["losses"]
    report.train_accuracy[:] = rep["train_accuracy"]
    report.val_accuracy[:] = rep["val_accuracy"]
    report.gathered_features = rep["gathered_features"]
    report.steps = rep["steps"]
    return int(state["epoch"])


@dataclass
class TrainReport(StatsViewMixin):
    """Trace of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    gathered_features: int = 0
    steps: int = 0

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "final_loss": self.final_loss,
            "final_val_accuracy": self.final_val_accuracy,
        }

    def merge(self, other: "TrainReport") -> "TrainReport":
        """Append another run's trace (continuation) to this one."""
        return merge_counters(
            self,
            other,
            sum_fields=("gathered_features", "steps"),
            concat_fields=("losses", "train_accuracy", "val_accuracy"),
        )

    def record_step(
        self,
        loss: float,
        gathered: int,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        """Append one optimizer step, mirroring into ``obs`` if given."""
        self.losses.append(loss)
        self.steps += 1
        self.gathered_features += gathered
        if obs is not None:
            obs.counter("gnn.train.steps", "optimizer steps taken").inc()
            obs.counter(
                "gnn.train.gathered_features",
                "feature rows materialized by training",
            ).inc(gathered)
            obs.histogram("gnn.train.loss", "per-step training loss").observe(loss)


def train_full_graph(
    model: NodeClassifier,
    graph_or_handle=None,
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
    train_mask: Optional[np.ndarray] = None,
    val_mask: Optional[np.ndarray] = None,
    epochs: int = 50,
    lr: float = 0.01,
    obs: Optional[MetricsRegistry] = None,
    injector: Optional[FaultInjector] = None,
    snapshots: Optional[SnapshotStore] = None,
    checkpoint_every: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    *,
    graph: Optional[Graph] = None,
) -> TrainReport:
    """Full-graph training with masked cross-entropy.

    ``graph_or_handle`` takes a :class:`Graph`, any
    :class:`~repro.graph.store.GraphHandle`, or a store-directory path;
    when ``features`` is omitted they are pulled from the handle's
    feature shards (``handle.features()``).  The old ``graph=`` keyword
    still works with a :class:`DeprecationWarning`.

    With an ``injector``, ``fail_epoch`` faults crash the loop at the
    start of that epoch; training resumes from the latest ``gnn``
    snapshot (weights + Adam moments + epoch), replaying the epochs
    since.  ``checkpoint_every`` sets the snapshot cadence (a baseline
    is always taken before epoch 0 when resilience is on).
    """
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    handle = as_handle(
        resolve_graph_argument("train_full_graph", graph_or_handle, graph)
    )
    if features is None:
        features = handle.features()
    if features is None:
        raise TypeError(
            "train_full_graph() needs features: pass the array or use a "
            "handle that carries feature shards"
        )
    if labels is None or train_mask is None:
        raise TypeError(
            "train_full_graph() missing required 'labels'/'train_mask'"
        )
    gt = GraphTensors(handle)
    x = Tensor(features)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_idx = np.nonzero(train_mask)[0]
    resilient = injector is not None or checkpoint_every is not None
    if snapshots is None and resilient:
        snapshots = SnapshotStore(obs=obs)
    if snapshots is not None:
        snapshots.save(
            SNAPSHOT_TAG, 0, _training_state(0, model, optimizer, report)
        )
    epoch = 0
    while epoch < epochs:
        if injector is not None and injector.take_epoch_failure(epoch):
            assert snapshots is not None
            state = snapshots.restore_latest(SNAPSHOT_TAG)
            resumed = _restore_training_state(state, model, optimizer, report)
            if tracer is not None:
                with tracer.span(
                    "resilience.recover",
                    engine="gnn",
                    epoch=epoch,
                    replayed=epoch - resumed,
                ):
                    pass
            epoch = resumed
            continue
        optimizer.zero_grad()
        logits = model(gt, x)
        loss = logits.gather_rows(train_idx).cross_entropy(labels[train_idx])
        loss.backward()
        optimizer.step()
        report.record_step(float(loss.data), handle.num_vertices, obs=obs)
        with no_grad():
            out = model(gt, x).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))
        epoch += 1
        if (
            snapshots is not None
            and checkpoint_every is not None
            and epoch % checkpoint_every == 0
        ):
            snapshots.save(
                SNAPSHOT_TAG,
                epoch,
                _training_state(epoch, model, optimizer, report),
            )
    return report


def train_sampled(
    model: NodeClassifier,
    graph_or_handle=None,
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
    train_mask: Optional[np.ndarray] = None,
    val_mask: Optional[np.ndarray] = None,
    epochs: int = 10,
    batch_size: int = 64,
    fanouts: Sequence[int] = (10, 10),
    lr: float = 0.01,
    seed: int = 0,
    obs: Optional[MetricsRegistry] = None,
    *,
    graph: Optional[Graph] = None,
    prefetch: int = 0,
    cache=None,
    full_eval: bool = False,
    eval_batch_size: Optional[int] = None,
    loader: Optional["MiniBatchLoader"] = None,
    tracer=None,
) -> TrainReport:
    """Mini-batch training over the staged GraphBolt-style dataloader.

    The loss is computed on the batch seeds only; each block is a small
    graph, so a step's work (and feature-gather volume) is independent
    of ``|V|`` — the bound that makes the industrial systems scale.
    Like :func:`train_full_graph`, ``graph_or_handle`` accepts a graph,
    handle, or store path, and ``features`` default to feature shards.

    Batches come from a :class:`~repro.gnn.dataloader.MiniBatchLoader`
    (pass ``prefetch``/``cache`` to configure it, or hand in a prebuilt
    ``loader`` to inspect its schedule/cache reports afterwards).  The
    loader reproduces the legacy sampling loop's RNG order, so losses
    are bit-identical with the pre-loader trainer at fixed ``seed``,
    with prefetch on or off.

    Per-epoch evaluation runs **sampled inference** over the masked
    nodes (cost bounded by fanout, so evaluation no longer re-breaks
    the |V|-independent bound on large graphs); ``full_eval=True``
    restores the exact full-graph forward for small-graph parity tests.
    """
    from .dataloader import MiniBatchLoader, infer_sampled

    handle = as_handle(
        resolve_graph_argument("train_sampled", graph_or_handle, graph)
    )
    if features is None:
        features = handle.features()
    if features is None:
        raise TypeError(
            "train_sampled() needs features: pass the array or use a "
            "handle that carries feature shards"
        )
    if labels is None or train_mask is None:
        raise TypeError(
            "train_sampled() missing required 'labels'/'train_mask'"
        )
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_nodes = np.nonzero(train_mask)[0]
    if loader is None:
        loader = MiniBatchLoader(
            handle,
            items=train_nodes,
            batch_size=batch_size,
            fanouts=fanouts,
            features=features,
            seed=seed,
            cache=cache,
            prefetch=prefetch,
            obs=obs,
            tracer=tracer,
        )
    eval_nodes = train_nodes
    if val_mask is not None:
        eval_nodes = np.unique(
            np.concatenate([train_nodes, np.nonzero(val_mask)[0]])
        )
    for epoch_idx in range(epochs):
        for mb in loader.epoch():
            t0 = time.perf_counter()
            x = Tensor(mb.x)
            optimizer.zero_grad()
            logits = model(mb.gt, x)
            seed_logits = logits.gather_rows(mb.seed_local)
            seed_labels = labels[mb.node_ids[mb.seed_local]]
            loss = seed_logits.cross_entropy(seed_labels)
            loss.backward()
            optimizer.step()
            mb.record_compute(time.perf_counter() - t0)
            report.record_step(float(loss.data), mb.gathered_nodes, obs=obs)
        if full_eval:
            full_gt = GraphTensors(handle)
            with no_grad():
                out = model(full_gt, Tensor(features)).data
            report.train_accuracy.append(accuracy(out, labels, train_mask))
            if val_mask is not None:
                report.val_accuracy.append(accuracy(out, labels, val_mask))
        else:
            # Sampled layer-wise evaluation on the masked nodes only —
            # its own RNG stream, so the training draw order is
            # untouched and losses stay bit-identical to full_eval runs.
            preds = infer_sampled(
                model,
                handle,
                features=features,
                nodes=eval_nodes,
                batch_size=eval_batch_size or batch_size,
                fanouts=fanouts,
                seed=(seed + 1) * 1_000_003 + epoch_idx,
                obs=obs,
            )
            correct = preds == labels[eval_nodes]
            train_sel = train_mask[eval_nodes].astype(bool)
            report.train_accuracy.append(
                float(np.mean(correct[train_sel])) if train_sel.any() else 0.0
            )
            if val_mask is not None:
                val_sel = val_mask[eval_nodes].astype(bool)
                report.val_accuracy.append(
                    float(np.mean(correct[val_sel])) if val_sel.any() else 0.0
                )
    return report
