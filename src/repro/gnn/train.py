"""Single-process GNN trainers: full-graph and sampled mini-batch.

The two training regimes the tutorial's Section 3 contrasts:

* :func:`train_full_graph` — every step runs the model over the whole
  graph (the DistGNN/Sancus/HongTu regime); per-step cost scales with
  ``|E| * feature_dim``;
* :func:`train_sampled` — GraphSAGE-style mini-batch training over
  sampled blocks (the Euler/AliGraph/DistDGL regime); per-step cost is
  bounded by the fanout product, and ``TrainReport.gathered_features``
  records the data volume the sampler touched.

Both return a :class:`TrainReport` with loss/accuracy traces, so benches
and tests can compare convergence as well as cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from ..obs import MetricsRegistry, StatsViewMixin, merge_counters
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .sampling import NeighborSampler
from .tensor import Tensor, no_grad

__all__ = ["TrainReport", "train_full_graph", "train_sampled"]


@dataclass
class TrainReport(StatsViewMixin):
    """Trace of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    gathered_features: int = 0
    steps: int = 0

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "final_loss": self.final_loss,
            "final_val_accuracy": self.final_val_accuracy,
        }

    def merge(self, other: "TrainReport") -> "TrainReport":
        """Append another run's trace (continuation) to this one."""
        return merge_counters(
            self,
            other,
            sum_fields=("gathered_features", "steps"),
            concat_fields=("losses", "train_accuracy", "val_accuracy"),
        )

    def record_step(
        self,
        loss: float,
        gathered: int,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        """Append one optimizer step, mirroring into ``obs`` if given."""
        self.losses.append(loss)
        self.steps += 1
        self.gathered_features += gathered
        if obs is not None:
            obs.counter("gnn.train.steps", "optimizer steps taken").inc()
            obs.counter(
                "gnn.train.gathered_features",
                "feature rows materialized by training",
            ).inc(gathered)
            obs.histogram("gnn.train.loss", "per-step training loss").observe(loss)


def train_full_graph(
    model: NodeClassifier,
    graph: Graph,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    epochs: int = 50,
    lr: float = 0.01,
    obs: Optional[MetricsRegistry] = None,
) -> TrainReport:
    """Full-graph training with masked cross-entropy."""
    gt = GraphTensors(graph)
    x = Tensor(features)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_idx = np.nonzero(train_mask)[0]
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = model(gt, x)
        loss = logits.gather_rows(train_idx).cross_entropy(labels[train_idx])
        loss.backward()
        optimizer.step()
        report.record_step(float(loss.data), graph.num_vertices, obs=obs)
        with no_grad():
            out = model(gt, x).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))
    return report


def train_sampled(
    model: NodeClassifier,
    graph: Graph,
    features: np.ndarray,
    labels: np.ndarray,
    train_mask: np.ndarray,
    val_mask: Optional[np.ndarray] = None,
    epochs: int = 10,
    batch_size: int = 64,
    fanouts: Sequence[int] = (10, 10),
    lr: float = 0.01,
    seed: int = 0,
    obs: Optional[MetricsRegistry] = None,
) -> TrainReport:
    """Mini-batch training over sampled neighborhood blocks.

    The loss is computed on the batch seeds only; each block is a small
    graph, so a step's work (and feature-gather volume) is independent
    of ``|V|`` — the bound that makes the industrial systems scale.
    """
    sampler = NeighborSampler(graph, fanouts, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    report = TrainReport()
    train_nodes = np.nonzero(train_mask)[0]
    for _ in range(epochs):
        for block in sampler.batches(train_nodes, batch_size):
            gt = block.tensors()
            x = Tensor(features[block.node_ids])
            optimizer.zero_grad()
            logits = model(gt, x)
            seed_logits = logits.gather_rows(block.seed_local)
            seed_labels = labels[block.node_ids[block.seed_local]]
            loss = seed_logits.cross_entropy(seed_labels)
            loss.backward()
            optimizer.step()
            report.record_step(float(loss.data), block.gathered_nodes, obs=obs)
        full_gt = GraphTensors(graph)
        with no_grad():
            out = model(full_gt, Tensor(features)).data
        report.train_accuracy.append(accuracy(out, labels, train_mask))
        if val_mask is not None:
            report.val_accuracy.append(accuracy(out, labels, val_mask))
    return report
