"""P3's push-pull parallelism: intra-layer model parallelism + data parallelism.

P3 [13] partitions *features* (columns), not graph structure: layer 1's
weight matrix is sharded with the features, each worker computes a
partial first-layer activation from its feature shard
(``X[:, shard] @ W1[shard, :]``), and the **hidden-width** partial
activations are pushed/summed — so the wire carries ``hidden_dim``
values per vertex instead of ``in_dim``.  Layers above run data-parallel
as usual.

Two artifacts here:

* :func:`partial_aggregation` — the correctness core: the sum of
  per-shard partial products equals the full product (tests assert it
  to float precision);
* :func:`p3_bytes_per_step` vs :func:`data_parallel_bytes_per_step` —
  the traffic model bench C11 sweeps: P3 wins exactly when
  ``in_dim > hidden_dim`` (wide raw features, the regime P3 targets)
  and loses when features are already narrow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "shard_columns",
    "partial_aggregation",
    "data_parallel_bytes_per_step",
    "p3_bytes_per_step",
    "P3Costs",
]


def shard_columns(num_columns: int, num_workers: int) -> List[np.ndarray]:
    """Contiguous column shards, one per worker."""
    bounds = np.linspace(0, num_columns, num_workers + 1).astype(int)
    return [np.arange(bounds[k], bounds[k + 1]) for k in range(num_workers)]


def partial_aggregation(
    x: np.ndarray, w: np.ndarray, num_workers: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Compute ``x @ w`` by summing per-shard partial products.

    Returns ``(full_result, partials)`` where
    ``full_result == sum(partials)`` and partial ``k`` uses only worker
    ``k``'s feature shard — P3's intra-layer model parallelism.
    """
    shards = shard_columns(x.shape[1], num_workers)
    partials = [x[:, s] @ w[s, :] for s in shards]
    return sum(partials), partials


@dataclass
class P3Costs:
    """Per-step traffic of one strategy (bytes)."""

    strategy: str
    feature_fetch: int
    activation_push: int

    @property
    def total(self) -> int:
        return self.feature_fetch + self.activation_push


def data_parallel_bytes_per_step(
    batch_nodes: int,
    fanout_nodes: int,
    in_dim: int,
    remote_fraction: float = 0.75,
    bytes_per_value: int = 8,
) -> P3Costs:
    """Traffic of plain data parallelism (DistDGL-style).

    Every sampled neighborhood node's *raw feature row* (width
    ``in_dim``) is fetched from its owner; on average
    ``remote_fraction`` of them are remote.
    """
    fetched = int((batch_nodes + fanout_nodes) * remote_fraction)
    return P3Costs(
        strategy="data-parallel",
        feature_fetch=fetched * in_dim * bytes_per_value,
        activation_push=0,
    )


def p3_bytes_per_step(
    batch_nodes: int,
    fanout_nodes: int,
    hidden_dim: int,
    num_workers: int,
    remote_fraction: float = 0.75,
    bytes_per_value: int = 8,
) -> P3Costs:
    """Traffic of P3's push-pull.

    Raw features never move (each worker holds a column shard of *all*
    vertices).  Instead every worker pushes its ``hidden_dim``-wide
    partial layer-1 activation for the batch's neighborhood nodes to the
    batch owner, who sums them — ``(num_workers - 1)/num_workers`` of
    the partials cross the network.
    """
    nodes = batch_nodes + fanout_nodes
    crossing = int(nodes * (num_workers - 1) / max(num_workers, 1))
    return P3Costs(
        strategy="p3",
        feature_fetch=0,
        activation_push=crossing * hidden_dim * bytes_per_value,
    )
