"""Distributed data-parallel GNN training over the simulated cluster.

The DistDGL/Euler/AliGraph deployment shape: the graph is partitioned
across workers; every training step each worker

1. **gathers** the features/hidden states of its *halo* (remote vertices
   adjacent to its own) — priced per layer through the
   :class:`~repro.cluster.comm.Network`;
2. computes forward/backward for its own vertices;
3. **synchronizes gradients** (allreduce), also priced.

The computation itself is performed globally (the simulation is
in-process), so with synchronous training the learned model is
bit-identical to single-process full-graph training — tests assert
this — while the traffic statistics faithfully reflect what the chosen
partition would cost on a real cluster.  Bench C8 sweeps partitioners
with exactly this trainer.

``halo_bits`` optionally quantizes the halo features through
:mod:`repro.gnn.quantization` (a *real* lossy effect on training, not
just accounting), which is how bench C10 trades bytes against accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from ..cluster.comm import Network
from ..graph.csr import Graph
from ..graph.partition import Partition
from ..obs import MetricsRegistry
from .layers import GraphTensors
from .models import Adam, NodeClassifier, accuracy
from .quantization import quantize_dequantize
from .tensor import Tensor, no_grad
from .train import TrainReport

__all__ = ["halo_sets", "DistributedTrainer"]


def halo_sets(graph: Graph, partition: Partition) -> List[Set[int]]:
    """For each worker, the remote vertices its layer gather must fetch."""
    halos: List[Set[int]] = [set() for _ in range(partition.num_parts)]
    assignment = partition.assignment
    for u, v in graph.edges():
        pu, pv = int(assignment[u]), int(assignment[v])
        if pu != pv:
            halos[pu].add(v)
            halos[pv].add(u)
    return halos


@dataclass
class DistributedTrainer:
    """Synchronous data-parallel trainer with per-step traffic accounting."""

    model: NodeClassifier
    graph: Graph
    partition: Partition
    features: np.ndarray
    labels: np.ndarray
    lr: float = 0.01
    halo_bits: Optional[int] = None
    error_feedback: bool = False
    grad_bits: Optional[int] = None
    seed: int = 0
    obs: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.obs is None:
            self.obs = MetricsRegistry()
        self.network = Network(self.partition.num_parts, registry=self.obs)
        self._gt = GraphTensors(self.graph)
        self._optimizer = Adam(self.model.parameters(), lr=self.lr)
        self._halos = halo_sets(self.graph, self.partition)
        self._owner_of = self.partition.assignment
        self._rng = np.random.default_rng(self.seed)
        self._residual: Optional[np.ndarray] = None  # halo error feedback
        self._grad_quantizers: Optional[list] = None  # gradient EF state

    # -- traffic accounting --------------------------------------------------

    def _price_halo_exchange(self, feature_dim: int) -> None:
        """Account one layer's halo feature fetch."""
        for worker, halo in enumerate(self._halos):
            per_owner: Dict[int, int] = {}
            for v in halo:
                owner = int(self._owner_of[v])
                per_owner[owner] = per_owner.get(owner, 0) + 1
            for owner, count in per_owner.items():
                self.network.send(
                    owner, worker, None, tag="halo",
                    nbytes=self._halo_nbytes(count, feature_dim),
                )
        self.network.deliver()
        for worker in range(self.partition.num_parts):
            self.network.receive(worker)

    def _halo_nbytes(self, rows: int, feature_dim: int) -> int:
        """Wire size of ``rows`` feature rows at the configured precision.

        Quantized rows carry packed codes plus a per-row (min, scale)
        float pair, matching
        :func:`repro.gnn.quantization.compressed_nbytes`.
        """
        if self.halo_bits is None:
            return rows * feature_dim * 8
        payload_bits = rows * feature_dim * self.halo_bits
        overhead = rows * 2 * 8
        return payload_bits // 8 + (1 if payload_bits % 8 else 0) + overhead

    def _price_gradient_sync(self) -> None:
        """Ring allreduce: each worker ships the full gradient twice."""
        total_params = sum(p.data.size for p in self.model.parameters())
        bits = 64 if self.grad_bits is None else self.grad_bits
        k = self.partition.num_parts
        for worker in range(k):
            nxt = (worker + 1) % k
            self.network.send(
                worker, nxt, None, tag="grad-sync",
                nbytes=2 * total_params * bits // 8 * (k - 1) // max(k, 1),
            )
        self.network.deliver()
        for worker in range(k):
            self.network.receive(worker)

    def _maybe_quantize_gradients(self) -> None:
        """Sylvie/EC-Graph gradient compression, with error feedback.

        Each parameter's gradient is replaced by its quantized image
        before the optimizer step — the lossy effect a real compressed
        allreduce would apply — with one error-feedback residual per
        parameter so the quantization error cancels over steps.
        """
        if self.grad_bits is None:
            return
        from .quantization import ErrorCompensatedQuantizer

        params = self.model.parameters()
        if self._grad_quantizers is None:
            self._grad_quantizers = [
                ErrorCompensatedQuantizer(bits=self.grad_bits, seed=self.seed + i)
                for i in range(len(params))
            ]
        for p, quantizer in zip(params, self._grad_quantizers):
            if p.grad is not None:
                flat = p.grad.reshape(1, -1)
                p.grad = quantizer.compress(flat).reshape(p.grad.shape)

    # -- the lossy halo (quantization applied to real data) ------------------

    def _maybe_quantize_features(self, features: np.ndarray) -> np.ndarray:
        if self.halo_bits is None or self.halo_bits >= 64:
            return features
        # Vertices whose features cross a partition boundary travel
        # quantized; local rows stay exact.
        remote = np.zeros(self.graph.num_vertices, dtype=bool)
        for halo in self._halos:
            for v in halo:
                remote[v] = True
        out = features.copy()
        if self._residual is None:
            self._residual = np.zeros_like(features)
        payload = features[remote] + (
            self._residual[remote] if self.error_feedback else 0.0
        )
        deq = quantize_dequantize(payload, self.halo_bits, rng=self._rng)
        if self.error_feedback:
            self._residual[remote] = payload - deq
        out[remote] = deq
        return out

    # -- training -------------------------------------------------------------

    def train(
        self,
        train_mask: np.ndarray,
        val_mask: Optional[np.ndarray] = None,
        epochs: int = 50,
    ) -> TrainReport:
        report = TrainReport()
        train_idx = np.nonzero(train_mask)[0]
        feature_dim = self.features.shape[1]
        hidden_dims = [
            self.model.layers[i].weight.shape[1]
            for i in range(self.model.num_layers)
        ]
        for _ in range(epochs):
            used = self._maybe_quantize_features(self.features)
            x = Tensor(used)
            self._optimizer.zero_grad()
            logits = self.model(self._gt, x)
            loss = logits.gather_rows(train_idx).cross_entropy(
                self.labels[train_idx]
            )
            loss.backward()
            self._maybe_quantize_gradients()
            self._optimizer.step()
            # Traffic: one halo exchange per layer (input dim then hiddens),
            # then the gradient allreduce.
            self._price_halo_exchange(feature_dim)
            for dim in hidden_dims[:-1]:
                self._price_halo_exchange(dim)
            self._price_gradient_sync()
            report.record_step(
                float(loss.data), self.graph.num_vertices, obs=self.obs
            )
            with no_grad():
                out = self.model(self._gt, Tensor(self.features)).data
            report.train_accuracy.append(accuracy(out, self.labels, train_mask))
            if val_mask is not None:
                report.val_accuracy.append(accuracy(out, self.labels, val_mask))
        return report

    # -- summary ----------------------------------------------------------------

    @property
    def remote_bytes(self) -> int:
        return self.network.stats.bytes_remote

    def bytes_by_tag(self) -> Dict[str, int]:
        return dict(self.network.stats.by_tag)
