"""Host-memory offload for full-graph GNN training (HongTu).

Full-graph training stores every layer's activations for every vertex —
``O(L * |V| * hidden)`` floats — which exceeds GPU memory on large
graphs.  HongTu [42] keeps vertex data in CPU memory and streams
*chunks* of vertices through the GPUs per layer, recomputing boundary
activations as needed.

:func:`plan_offload` sizes that execution: given the graph, model
dimensions and a device-memory budget, it returns the chunking plan —
number of chunks, resident bytes per chunk, host<->device transfer
volume per epoch — and raises :class:`DeviceMemoryExceeded` when even a
single-vertex chunk cannot fit (the model itself is too large).  The
companion :func:`naive_footprint` is what a no-offload system would
need; bench C12/T2 contrast the two across graph sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.csr import Graph

__all__ = ["DeviceMemoryExceeded", "OffloadPlan", "naive_footprint", "plan_offload"]


class DeviceMemoryExceeded(RuntimeError):
    """The workload cannot fit the device even with maximal chunking."""


@dataclass
class OffloadPlan:
    """A feasible chunked execution of one full-graph epoch."""

    num_chunks: int
    chunk_vertices: int
    device_bytes_per_chunk: int
    host_bytes: int
    transfer_bytes_per_epoch: int
    halo_fraction: float

    @property
    def fits(self) -> bool:
        return True


def _activation_bytes(num_vertices: int, dims: List[int]) -> int:
    """Bytes to hold one activation row set for each layer dimension."""
    return int(sum(num_vertices * d * 8 for d in dims))


def naive_footprint(graph: Graph, dims: List[int]) -> int:
    """Device bytes a no-offload full-graph trainer needs.

    All layers' activations resident, forward + retained for backward.
    """
    return 2 * _activation_bytes(graph.num_vertices, dims)


def plan_offload(
    graph: Graph,
    dims: List[int],
    device_budget_bytes: int,
    avg_degree: float = None,
) -> OffloadPlan:
    """Choose the smallest chunk count that fits the device budget.

    A chunk of ``c`` vertices needs its own activations plus the
    activations of its one-hop halo (boundary in-neighbors), estimated
    via the average degree; halo size saturates at ``|V| - c``.
    """
    n = graph.num_vertices
    if avg_degree is None:
        avg_degree = float(graph.degrees().mean()) if n else 0.0
    host_bytes = 2 * _activation_bytes(n, dims)
    for num_chunks in range(1, n + 1):
        c = int(np.ceil(n / num_chunks))
        halo = min(c * avg_degree, max(n - c, 0))
        resident_rows = c + halo
        device = 2 * _activation_bytes(int(resident_rows), dims)
        if device <= device_budget_bytes:
            transfers = num_chunks * device  # load + store per chunk pass
            return OffloadPlan(
                num_chunks=num_chunks,
                chunk_vertices=c,
                device_bytes_per_chunk=int(device),
                host_bytes=host_bytes,
                transfer_bytes_per_epoch=int(transfers),
                halo_fraction=float(halo / max(resident_rows, 1)),
            )
    raise DeviceMemoryExceeded(
        f"even a single-vertex chunk exceeds {device_budget_bytes} bytes"
    )
