"""Subgraph GNNs: graphs as bags of subgraphs.

The tutorial's Section 1 closes with Subgraph GNNs [5, 12] — models
that represent a graph as the multiset of its (e.g. node-deleted)
subgraphs — because they are *provably more expressive* than regular
message-passing GNNs, which are bounded by the 1-WL test.

:class:`SubgraphGNN` implements the ESAN-style node-deleted policy on
our numpy stack: encode every node-deleted subgraph with a shared GCN,
mean-pool across the bag, and classify.  :func:`wl_indistinguishable`
provides the classic counterexample pair — ``C6`` versus two disjoint
triangles (``2 x C3``) — which 1-WL (and hence any plain GCN with
degree features) cannot tell apart, while node-deleted subgraphs can:
deleting a vertex of C6 leaves a connected P5, deleting one of 2xC3
leaves P2 + C3 (disconnected).  The tests train both models on that
task and assert the separation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from .layers import GCNLayer, GraphTensors, Linear, Module
from .models import Adam
from .tensor import Tensor, no_grad

__all__ = ["SubgraphGNN", "PlainGraphGNN", "wl_colors", "wl_indistinguishable"]


def wl_colors(graph: Graph, iterations: int = 3) -> Tuple[int, ...]:
    """1-WL color refinement; returns the sorted final color multiset."""
    colors = [graph.vertex_label(v) for v in graph.vertices()]
    for _ in range(iterations):
        signatures = []
        for v in graph.vertices():
            neighborhood = tuple(sorted(colors[int(w)] for w in graph.neighbors(v)))
            signatures.append((colors[v], neighborhood))
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures)))}
        colors = [palette[sig] for sig in signatures]
    return tuple(sorted(colors))


def wl_indistinguishable(a: Graph, b: Graph, iterations: int = 3) -> bool:
    """True when 1-WL cannot distinguish the two graphs."""
    return wl_colors(a, iterations) == wl_colors(b, iterations)


def _degree_features(graph: Graph) -> np.ndarray:
    deg = graph.degrees().astype(np.float64).reshape(-1, 1)
    return np.hstack([deg, np.ones_like(deg)])


def _node_deleted_bag(graph: Graph) -> List[Graph]:
    """The ESAN node-deleted subgraph bag."""
    bag = []
    vertices = list(graph.vertices())
    for v in vertices:
        keep = [u for u in vertices if u != v]
        sub, _ = graph.subgraph(keep)
        bag.append(sub)
    return bag


class PlainGraphGNN(Module):
    """Baseline: 2-layer GCN + mean pool + linear head (1-WL-bounded)."""

    def __init__(self, hidden: int = 16, num_classes: int = 2, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.conv1 = GCNLayer(2, hidden, rng)
        self.conv2 = GCNLayer(hidden, hidden, rng)
        self.head = Linear(hidden, num_classes, rng)

    def logits(self, graph: Graph) -> Tensor:
        gt = GraphTensors(graph)
        x = Tensor(_degree_features(graph))
        h = self.conv1(gt, x).relu()
        h = self.conv2(gt, h).relu()
        pooled = h.mean(axis=0).reshape(1, -1)
        return self.head(pooled)


class SubgraphGNN(Module):
    """ESAN-style: shared GCN over the node-deleted bag, then pooling."""

    def __init__(self, hidden: int = 16, num_classes: int = 2, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.conv1 = GCNLayer(2, hidden, rng)
        self.conv2 = GCNLayer(hidden, hidden, rng)
        self.head = Linear(hidden, num_classes, rng)

    def _encode_subgraph(self, sub: Graph) -> Tensor:
        gt = GraphTensors(sub)
        x = Tensor(_degree_features(sub))
        h = self.conv1(gt, x).relu()
        h = self.conv2(gt, h).relu()
        return h.mean(axis=0).reshape(1, -1)

    def logits(self, graph: Graph) -> Tensor:
        encodings = [self._encode_subgraph(s) for s in _node_deleted_bag(graph)]
        stacked = encodings[0]
        for enc in encodings[1:]:
            stacked = stacked + enc
        pooled = stacked * (1.0 / len(encodings))
        return self.head(pooled)


def train_graph_classifier(
    model,
    graphs: Sequence[Graph],
    labels: Sequence[int],
    epochs: int = 40,
    lr: float = 0.02,
) -> List[float]:
    """Full-batch training of either model; returns the loss trace."""
    optimizer = Adam(model.parameters(), lr=lr)
    labels = np.asarray(labels, dtype=np.int64)
    losses: List[float] = []
    for _ in range(epochs):
        optimizer.zero_grad()
        total = None
        for g, y in zip(graphs, labels):
            logit = model.logits(g)
            loss = logit.cross_entropy(np.array([y]))
            total = loss if total is None else total + loss
        total = total * (1.0 / len(graphs))
        total.backward()
        optimizer.step()
        losses.append(float(total.data))
    return losses


def evaluate(model, graphs: Sequence[Graph], labels: Sequence[int]) -> float:
    labels = np.asarray(labels, dtype=np.int64)
    correct = 0
    for g, y in zip(graphs, labels):
        with no_grad():
            pred = int(model.logits(g).data.argmax())
        correct += int(pred == y)
    return correct / len(graphs)
