"""GraphBolt-style staged mini-batch dataloader.

DGL's GraphBolt decomposes sampled GNN training into a pipeline of
narrow stages, each replaceable and each individually measurable:

    ItemSampler -> NeighborSampler -> subgraph construct -> FeatureFetcher
        (seeds)        (fanout)          (Block.tensors)      (cache + shards)

:class:`MiniBatchLoader` composes those stages and adds bounded
prefetch: with ``prefetch > 0`` a single producer thread runs the
sample/construct/gather stages ahead of the consumer through a bounded
queue, overlapping data preparation with model compute.  Because one
producer drains the (seeded) RNG in exactly the order the synchronous
loop would, the emitted batches are bit-identical with prefetch on or
off — determinism is never traded for overlap.

Every batch carries its measured :class:`~repro.gnn.pipeline.StageTimes`;
:meth:`MiniBatchLoader.schedule_report` feeds them to the existing
``pipeline.sequential_schedule`` / ``pipelined_schedule`` machinery to
report per-stage utilization and the overlap speedup the pipeline
admits (the simulated-stage accounting is deterministic even where the
GIL limits measured thread overlap).

:func:`infer_sampled` is the serving-side counterpart: bounded-cost
sampled inference over a node set, used by the refactored
``train_sampled`` evaluation path and by ``serve``'s ``gnn.predict``
on stored graphs too large for a full forward pass.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import MetricsRegistry, StatsViewMixin, Tracer
from .caching import FeatureCache
from .layers import GraphTensors
from .models import NodeClassifier
from .pipeline import (
    ScheduleResult,
    StageTimes,
    pipelined_schedule,
    sequential_schedule,
)
from .sampling import Block, NeighborSampler
from .tensor import Tensor, no_grad

__all__ = [
    "ItemSampler",
    "FeatureFetcher",
    "MiniBatch",
    "MiniBatchLoader",
    "InferReport",
    "infer_sampled",
    "sampled_inference_blocks",
]


class ItemSampler:
    """Stage 1 — shuffle and batch the seed items of one epoch.

    The shuffle draws one ``rng.permutation`` per epoch, matching the
    RNG consumption of the legacy ``NeighborSampler.batches`` loop so a
    loader built on top reproduces its blocks bit-for-bit.
    """

    def __init__(
        self,
        items: Sequence[int],
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.items = np.asarray(list(items), dtype=np.int64)
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last

    def __len__(self) -> int:
        """Batches per epoch under the drop-last policy."""
        if self.drop_last:
            return self.items.size // self.batch_size
        return -(-self.items.size // self.batch_size)

    def batches(
        self, rng: Optional[np.random.Generator] = None
    ) -> Iterator[np.ndarray]:
        if self.shuffle:
            if rng is None:
                raise ValueError("shuffle=True needs the epoch rng")
            order = rng.permutation(self.items.size)
        else:
            order = np.arange(self.items.size)
        stop = self.items.size
        if self.drop_last:
            stop -= stop % self.batch_size
        for start in range(0, stop, self.batch_size):
            yield self.items[order[start: start + self.batch_size]]


class FeatureFetcher:
    """Stage 4 — materialize feature rows for a sampled block.

    Rows come from an explicit ``(n, d)`` array when given, else from
    the handle's feature shards (``handle.features(ids)`` — paged
    per-partition reads on stored graphs).  A
    :class:`~repro.gnn.caching.FeatureCache` in front models the remote
    fetch: hits are rows already resident, misses are rows that had to
    be pulled, and both are mirrored into ``gnn.loader.*`` counters.
    """

    def __init__(
        self,
        handle=None,
        features: Optional[np.ndarray] = None,
        cache: Optional[FeatureCache] = None,
        obs: Optional[MetricsRegistry] = None,
    ) -> None:
        self.handle = handle
        self._features = None if features is None else np.asarray(features)
        self.cache = cache
        self.obs = obs
        self.hits = 0
        self.misses = 0

    @property
    def feature_dim(self) -> int:
        if self._features is not None:
            return int(self._features.shape[1])
        probe = self.handle.features(np.zeros(1, dtype=np.int64))
        return 0 if probe is None else int(probe.shape[1])

    def fetch(self, node_ids: np.ndarray) -> np.ndarray:
        """Gather rows for ``node_ids``; returns the dense batch array."""
        if self._features is not None:
            rows = self._features[node_ids]
        else:
            rows = (
                None if self.handle is None
                else self.handle.features(np.asarray(node_ids, dtype=np.int64))
            )
            if rows is None:
                raise TypeError(
                    "FeatureFetcher needs features: pass the array or use "
                    "a handle that carries feature shards"
                )
        hits = misses = 0
        if self.cache is not None:
            for v in node_ids:
                if self.cache.lookup(int(v)):
                    hits += 1
                else:
                    misses += 1
        else:
            misses = int(len(node_ids))
        self.hits += hits
        self.misses += misses
        if self.obs is not None:
            dim = int(rows.shape[1]) if rows.ndim == 2 else 1
            row_bytes = dim * rows.dtype.itemsize
            self.obs.counter(
                "gnn.loader.fetched_rows", "feature rows materialized"
            ).inc(len(node_ids))
            if self.cache is not None:
                self.obs.counter(
                    "gnn.loader.cache_hits", "feature rows served from cache"
                ).inc(hits)
                self.obs.counter(
                    "gnn.loader.cache_misses", "feature rows fetched on miss"
                ).inc(misses)
            self.obs.counter(
                "gnn.loader.bytes_fetched", "feature bytes pulled on misses"
            ).inc(misses * row_bytes)
            self.obs.counter(
                "gnn.loader.bytes_saved", "feature bytes served from cache"
            ).inc(hits * row_bytes)
        return rows

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class MiniBatch:
    """One fully staged mini-batch, ready for a model forward.

    ``times`` is the loader's live accounting record for this batch —
    the trainer adds its measured forward/backward seconds via
    :meth:`record_compute` so :meth:`MiniBatchLoader.schedule_report`
    sees all three stages.
    """

    epoch: int
    index: int
    seeds: np.ndarray
    block: Block
    gt: GraphTensors
    x: np.ndarray
    times: StageTimes
    cache_hits: int = 0
    cache_misses: int = 0
    partitions: Optional[frozenset] = None

    @property
    def node_ids(self) -> np.ndarray:
        return self.block.node_ids

    @property
    def seed_local(self) -> np.ndarray:
        return self.block.seed_local

    @property
    def gathered_nodes(self) -> int:
        return self.block.gathered_nodes

    def record_compute(self, seconds: float) -> None:
        self.times.compute += seconds


_DONE = object()


class _PrefetchIterator:
    """Bounded single-producer prefetch over a batch generator.

    One daemon thread runs the producer generator — and therefore the
    seeded RNG — in exactly the synchronous order, so prefetch changes
    timing, never content.  ``maxsize`` bounds staging memory.
    """

    def __init__(self, source: Iterator[Any], depth: int) -> None:
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None

        def _produce() -> None:
            try:
                for item in source:
                    while not self._stop.is_set():
                        try:
                            self._queue.put(item, timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if self._stop.is_set():
                        return
            except BaseException as exc:  # surfaced on the consumer side
                self._error = exc
            finally:
                try:
                    self._queue.put(_DONE, timeout=1.0)
                except queue.Full:
                    pass

        self._thread = threading.Thread(target=_produce, daemon=True)
        self._thread.start()

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self) -> Any:
        item = self._queue.get()
        if item is _DONE:
            self._thread.join(timeout=5.0)
            if self._error is not None:
                raise self._error
            raise StopIteration
        return item

    def close(self) -> None:
        self._stop.set()
        while True:  # unblock a producer stuck on a full queue
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)


class MiniBatchLoader:
    """The composed staged pipeline with bounded prefetch.

    At fixed ``seed`` the sequence of emitted batches is bit-identical
    to the legacy ``NeighborSampler.batches`` loop, across repeated
    epochs and regardless of ``prefetch`` — the single producer thread
    drains the RNG in program order.

    ``prefetch=0`` runs synchronously (and emits ``gnn.loader.stage``
    tracer spans when a tracer is given); ``prefetch=k`` stages up to
    ``k`` batches ahead through a bounded queue.
    """

    def __init__(
        self,
        graph_or_handle,
        items: Sequence[int],
        batch_size: int,
        fanouts: Sequence[int] = (10, 10),
        features: Optional[np.ndarray] = None,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
        cache: Optional[FeatureCache] = None,
        prefetch: int = 0,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if prefetch < 0:
            raise ValueError("prefetch must be >= 0")
        self.handle = as_handle(graph_or_handle)
        self.item_sampler = ItemSampler(
            items, batch_size, shuffle=shuffle, drop_last=drop_last
        )
        self.sampler = NeighborSampler(self.handle, fanouts, seed=seed)
        if features is None:
            features = self.handle.features()
        self.fetcher = FeatureFetcher(
            self.handle, features=features, cache=cache, obs=obs
        )
        self.prefetch = int(prefetch)
        self.obs = obs
        self.tracer = tracer
        self.stage_times: List[StageTimes] = []
        self.batches_emitted = 0
        self.epochs_run = 0
        self._epoch_index = 0
        self._assignment = getattr(self.handle, "assignment", None)

    def __len__(self) -> int:
        return len(self.item_sampler)

    # -- stage execution ---------------------------------------------------

    def _stage_one(self, epoch: int, index: int, seeds: np.ndarray) -> MiniBatch:
        span = None
        if self.tracer is not None and self.prefetch == 0:
            span = self.tracer.span(
                "gnn.loader.batch", epoch=epoch, index=index, seeds=seeds.size
            )
        t0 = time.perf_counter()
        block = self.sampler.sample(seeds)
        gt = block.tensors()
        t1 = time.perf_counter()
        before_hits, before_misses = self.fetcher.hits, self.fetcher.misses
        x = self.fetcher.fetch(block.node_ids)
        t2 = time.perf_counter()
        times = StageTimes(sample=t1 - t0, gather=t2 - t1, compute=0.0)
        self.stage_times.append(times)
        self.batches_emitted += 1
        partitions = None
        if self._assignment is not None:
            partitions = frozenset(
                int(p) for p in np.unique(self._assignment[block.node_ids])
            )
        if self.obs is not None:
            self.obs.counter("gnn.loader.batches", "mini-batches staged").inc()
            self.obs.counter(
                "gnn.loader.gathered_nodes", "block nodes materialized"
            ).inc(block.gathered_nodes)
            self.obs.histogram(
                "gnn.loader.stage_seconds", "per-stage wall seconds"
            ).observe(times.sample, stage="sample")
            self.obs.histogram(
                "gnn.loader.stage_seconds", "per-stage wall seconds"
            ).observe(times.gather, stage="gather")
        if span is not None:
            span.__exit__(None, None, None)
        return MiniBatch(
            epoch=epoch,
            index=index,
            seeds=seeds,
            block=block,
            gt=gt,
            x=x,
            times=times,
            cache_hits=self.fetcher.hits - before_hits,
            cache_misses=self.fetcher.misses - before_misses,
            partitions=partitions,
        )

    def _produce_epoch(self, epoch: int) -> Iterator[MiniBatch]:
        for index, seeds in enumerate(self.item_sampler.batches(self.sampler.rng)):
            yield self._stage_one(epoch, index, seeds)

    def epoch(self) -> Iterator[MiniBatch]:
        """Iterate one epoch of staged mini-batches.

        Successive calls continue the same RNG stream (one permutation
        per epoch), exactly like repeated ``sampler.batches`` calls.
        """
        epoch = self._epoch_index
        self._epoch_index += 1
        self.epochs_run += 1
        if self.obs is not None:
            self.obs.counter("gnn.loader.epochs", "loader epochs started").inc()
        source = self._produce_epoch(epoch)
        if self.prefetch == 0:
            return source
        return _PrefetchIterator(source, self.prefetch)

    def __iter__(self) -> Iterator[MiniBatch]:
        return self.epoch()

    # -- accounting --------------------------------------------------------

    def schedule_report(self) -> Dict[str, Any]:
        """Analyze the measured stage times with the scheduling machinery.

        ``pipelined`` models the three stages on dedicated executors
        (the prefetch ideal); the ratio of makespans is the overlap
        speedup this batch mix admits.
        """
        seq = sequential_schedule(self.stage_times)
        pipe = pipelined_schedule(self.stage_times)
        speedup = seq.makespan / pipe.makespan if pipe.makespan > 0 else 1.0
        return {
            "batches": len(self.stage_times),
            "sequential": seq.as_dict(),
            "pipelined": pipe.as_dict(),
            "overlap_speedup": speedup,
            "utilization": {s: pipe.utilization(s) for s in pipe.busy},
        }

    def cache_report(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "hits": self.fetcher.hits,
            "misses": self.fetcher.misses,
            "hit_rate": self.fetcher.hit_rate,
        }
        stats = getattr(self.fetcher.cache, "stats", None)
        if stats is not None:
            out["cache_stats"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "admissions": stats.admissions,
                "evictions": stats.evictions,
            }
        return out


# ----------------------------------------------------------------------
# Sampled inference
# ----------------------------------------------------------------------


@dataclass
class InferReport(StatsViewMixin):
    """Cost accounting of one sampled-inference pass."""

    batches: int = 0
    seeds: int = 0
    gathered_features: int = 0
    messages: int = 0
    touched: Optional[np.ndarray] = None
    _touched_parts: List[np.ndarray] = field(default_factory=list, repr=False)

    def extra_dict(self) -> Dict[str, Any]:
        return {"touched_nodes": 0 if self.touched is None else int(self.touched.size)}


def sampled_inference_blocks(
    handle,
    nodes: np.ndarray,
    fanouts: Sequence[int],
    seed: int,
    batch_size: int,
) -> Iterator[Block]:
    """The deterministic block stream of one sampled-inference pass.

    Factored out so serve footprint computation can re-derive exactly
    the nodes an inference request touched (same seed -> same blocks)
    without paying for the forward pass.
    """
    sampler = NeighborSampler(handle, fanouts, seed=seed)
    for start in range(0, nodes.size, batch_size):
        yield sampler.sample(nodes[start: start + batch_size])


def infer_sampled(
    model: NodeClassifier,
    graph_or_handle=None,
    features: Optional[np.ndarray] = None,
    nodes: Optional[Sequence[int]] = None,
    batch_size: int = 64,
    fanouts: Sequence[int] = (10, 10),
    seed: int = 0,
    obs: Optional[MetricsRegistry] = None,
    report: Optional[InferReport] = None,
    *,
    graph=None,
) -> np.ndarray:
    """Bounded-cost sampled inference: predicted classes for ``nodes``.

    Each batch's work is capped by ``batch_size * prod(fanouts)``
    rather than ``|E|`` — the property that lets serve answer
    ``gnn.predict`` on stored graphs too large for a full forward.
    Deterministic at fixed ``seed``; pass an :class:`InferReport` to
    collect message counts and the touched node set.
    """
    handle = as_handle(
        resolve_graph_argument("infer_sampled", graph_or_handle, graph)
    )
    if features is None:
        features = handle.features()
    if features is None:
        raise TypeError(
            "infer_sampled() needs features: pass the array or use a "
            "handle that carries feature shards"
        )
    features = np.asarray(features)
    if nodes is None:
        nodes = np.arange(handle.num_vertices, dtype=np.int64)
    else:
        nodes = np.asarray(list(nodes), dtype=np.int64)
    preds = np.empty(nodes.size, dtype=np.int64)
    rep = report if report is not None else InferReport()
    pos = 0
    for block in sampled_inference_blocks(handle, nodes, fanouts, seed, batch_size):
        gt = block.tensors()
        x = Tensor(features[block.node_ids])
        with no_grad():
            logits = model(gt, x).data
        batch_preds = np.argmax(logits[block.seed_local], axis=1)
        preds[pos: pos + batch_preds.size] = batch_preds
        pos += batch_preds.size
        rep.batches += 1
        rep.seeds += int(block.seed_local.size)
        rep.gathered_features += block.gathered_nodes
        rep.messages += int(gt.num_messages)
        rep._touched_parts.append(block.node_ids)
    if rep._touched_parts:
        rep.touched = np.unique(np.concatenate(rep._touched_parts))
    else:
        rep.touched = np.empty(0, dtype=np.int64)
    if obs is not None:
        obs.counter("gnn.infer.batches", "sampled-inference batches").inc(rep.batches)
        obs.counter("gnn.infer.seeds", "nodes predicted").inc(rep.seeds)
        obs.counter(
            "gnn.infer.gathered_features", "feature rows gathered for inference"
        ).inc(rep.gathered_features)
        obs.counter(
            "gnn.infer.messages", "messages flowed during inference"
        ).inc(rep.messages)
    return preds
