"""GNN models for node and graph classification.

Stacked layer models with the readouts the Figure-1 pipeline needs:
:class:`NodeClassifier` for the "vertex analytics + ML" path and
:class:`GraphClassifier` (mean-pool readout) for the
"structure analytics + ML" path.
"""

from __future__ import annotations

from typing import Literal, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from .layers import GATLayer, GCNLayer, GINLayer, GraphTensors, Linear, Module, SAGELayer, SAGEPoolLayer
from .tensor import Tensor, no_grad

__all__ = ["NodeClassifier", "GraphClassifier", "SGD", "Adam", "accuracy"]

LayerKind = Literal["gcn", "sage", "sage-pool", "gat", "gin"]

_LAYER_TYPES = {
    "gcn": GCNLayer,
    "sage": SAGELayer,
    "sage-pool": SAGEPoolLayer,
    "gat": GATLayer,
    "gin": GINLayer,
}


class NodeClassifier(Module):
    """A stack of graph convolutions ending in per-node class logits."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        layer: LayerKind = "gcn",
        seed: int = 0,
    ) -> None:
        if layer not in _LAYER_TYPES:
            raise ValueError(f"unknown layer kind {layer!r}")
        rng = np.random.default_rng(seed)
        cls = _LAYER_TYPES[layer]
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        self.layers = [cls(dims[i], dims[i + 1], rng) for i in range(num_layers)]
        self.layer_kind = layer

    def __call__(self, gt: GraphTensors, x: Tensor) -> Tensor:
        h = x
        for i, layer in enumerate(self.layers):
            h = layer(gt, h)
            if i < len(self.layers) - 1:
                h = h.relu()
        return h

    def forward_layer(self, index: int, gt: GraphTensors, h: Tensor) -> Tensor:
        """One layer, with the inter-layer ReLU — for pipelined trainers."""
        h = self.layers[index](gt, h)
        if index < len(self.layers) - 1:
            h = h.relu()
        return h

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def predict(self, gt: GraphTensors, x: Tensor) -> np.ndarray:
        with no_grad():
            logits = self(gt, x)
        return logits.data.argmax(axis=1)


class GraphClassifier(Module):
    """Graph-level classifier: convolutions + mean-pool readout + MLP."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 2,
        layer: LayerKind = "gcn",
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        cls = _LAYER_TYPES[layer]
        dims = [in_dim] + [hidden_dim] * num_layers
        self.layers = [cls(dims[i], dims[i + 1], rng) for i in range(num_layers)]
        self.head = Linear(hidden_dim, num_classes, rng)

    def __call__(self, gt: GraphTensors, x: Tensor) -> Tensor:
        h = x
        for layer in self.layers:
            h = layer(gt, h).relu()
        pooled = h.mean(axis=0).reshape(1, -1)
        return self.head(pooled)

    def predict(self, gt: GraphTensors, x: Tensor) -> int:
        with no_grad():
            logits = self(gt, x)
        return int(logits.data.argmax())


class SGD:
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, params: Sequence, lr: float = 0.01, weight_decay: float = 0.0) -> None:
        self.params = list(params)
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            p.data = p.data - self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimizer."""

    def __init__(
        self,
        params: Sequence,
        lr: float = 0.01,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            self.m[i] = self.b1 * self.m[i] + (1 - self.b1) * p.grad
            self.v[i] = self.b2 * self.v[i] + (1 - self.b2) * p.grad ** 2
            m_hat = self.m[i] / (1 - self.b1 ** self.t)
            v_hat = self.v[i] / (1 - self.b2 ** self.t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> float:
    """Classification accuracy, optionally restricted to a boolean mask."""
    pred = logits.argmax(axis=1)
    correct = pred == labels
    if mask is not None:
        correct = correct[mask]
    return float(correct.mean()) if correct.size else 0.0
