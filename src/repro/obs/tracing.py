"""Span-based tracing with wall-clock *and* simulated-clock durations.

The engines in this library run simulations: the TLAG task engine
advances per-worker virtual clocks, the staleness simulator advances
virtual step times, the TLAV engine counts supersteps.  A profiler that
only measures wall time would measure the *simulator*, not the system
being simulated — so a :class:`Span` carries two clocks:

* **wall** — ``time.perf_counter()`` seconds, what the host paid;
* **sim** — optional simulated time, read from a ``sim_clock`` callable
  at span start/end (or set explicitly), in whatever unit the engine
  uses (ops, supersteps, seconds).

Spans nest: entering a span inside another makes it a child, and the
export preserves the tree — ``Pipeline`` uses this for per-stage
timings, the TLAV engine for per-superstep records.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region; build through :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_start",
        "wall_end",
        "sim_start",
        "sim_end",
        "_sim_clock",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        sim_clock: Optional[Callable[[], float]] = None,
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.wall_start: float = 0.0
        self.wall_end: Optional[float] = None
        self.sim_start: Optional[float] = None
        self.sim_end: Optional[float] = None
        self._sim_clock = sim_clock
        self._tracer = tracer

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Span":
        self.wall_start = time.perf_counter()
        if self._sim_clock is not None:
            self.sim_start = float(self._sim_clock())
        return self

    def finish(self) -> "Span":
        self.wall_end = time.perf_counter()
        if self._sim_clock is not None:
            self.sim_end = float(self._sim_clock())
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- readings ----------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def finished(self) -> bool:
        return self.wall_end is not None

    def set(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def set_sim(self, start: float, end: float) -> "Span":
        """Explicitly record simulated start/end (no sim_clock needed)."""
        self.sim_start = float(start)
        self.sim_end = float(end)
        return self

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        from .stats import json_safe

        out: Dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
        }
        if self.sim_duration is not None:
            out["sim_start"] = self.sim_start
            out["sim_end"] = self.sim_end
            out["sim_duration"] = self.sim_duration
        if self.attrs:
            out["attrs"] = json_safe(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sim = f", sim={self.sim_duration}" if self.sim_duration is not None else ""
        return f"Span({self.name!r}, wall={self.wall_seconds:.6f}s{sim})"


class Tracer:
    """Collects a forest of spans; thread it through one run.

    ``sim_clock`` set on the tracer is inherited by every span it
    opens; a per-span ``sim_clock`` overrides it.
    """

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None) -> None:
        self.roots: List[Span] = []
        self.sim_clock = sim_clock
        self._stack: List[Span] = []

    def span(
        self,
        name: str,
        sim_clock: Optional[Callable[[], float]] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span (use as a context manager)."""
        span = Span(
            name,
            sim_clock=sim_clock or self.sim_clock,
            attrs=attrs,
            tracer=self,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span.start()

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- queries -----------------------------------------------------------

    def _walk(self, spans: List[Span]):
        for s in spans:
            yield s
            yield from self._walk(s.children)

    def find(self, name: str) -> List[Span]:
        """All spans (any depth) with the given name."""
        return [s for s in self._walk(self.roots) if s.name == name]

    def total_wall(self, name: str) -> float:
        return sum(s.wall_seconds for s in self.find(name))

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {"spans": [s.as_dict() for s in self.roots]}

    def to_json(self, indent: Any = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def merge(self, other: "Tracer") -> "Tracer":
        """Adopt another tracer's root spans (in place); returns self."""
        self.roots.extend(other.roots)
        return self
