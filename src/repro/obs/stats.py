"""The :class:`StatsView` protocol and helpers shared by all stats objects.

Before this module the library had three inconsistent reporting shapes
(``tlag.engine.EngineStats``, ``cluster.comm.CommStats``, the GNN
trainers' report dataclasses).  ``StatsView`` is the common contract
they all implement now:

* ``as_dict()`` — a JSON-serializable dict of the object's counters;
* ``merge(other)`` — fold another view of the same shape into this one
  (in place) and return ``self``; used to combine per-worker stats;
* ``to_json()`` — the dict, serialized.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Protocol, runtime_checkable

import numpy as np

__all__ = ["StatsView", "StatsViewMixin", "json_safe", "merge_counters"]


@runtime_checkable
class StatsView(Protocol):
    """What every stats/report object in the library exposes."""

    def as_dict(self) -> Dict[str, Any]:  # pragma: no cover - protocol
        ...

    def merge(self, other: Any) -> Any:  # pragma: no cover - protocol
        ...

    def to_json(self, indent: Any = None) -> str:  # pragma: no cover - protocol
        ...


def json_safe(value: Any) -> Any:
    """Recursively convert ``value`` into something ``json.dumps`` accepts.

    numpy scalars become python scalars, arrays become nested lists,
    dataclasses and objects with ``as_dict`` flatten to dicts, sets are
    sorted into lists; anything else unknown falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else str(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return json_safe(float(value))
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(v) for v in value)
    if hasattr(value, "as_dict"):
        return json_safe(value.as_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: json_safe(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return str(value)


def merge_counters(
    target: Any,
    other: Any,
    sum_fields: tuple = (),
    max_fields: tuple = (),
    concat_fields: tuple = (),
) -> Any:
    """Field-wise merge helper: sum, max, or concatenate named attrs."""
    for name in sum_fields:
        setattr(target, name, getattr(target, name) + getattr(other, name))
    for name in max_fields:
        setattr(target, name, max(getattr(target, name), getattr(other, name)))
    for name in concat_fields:
        getattr(target, name).extend(getattr(other, name))
    return target


class StatsViewMixin:
    """Default ``as_dict``/``to_json`` for dataclass-shaped stats.

    ``as_dict`` serializes dataclass fields (skipping private ones) plus
    whatever :meth:`extra_dict` contributes — subclasses list derived
    properties (hit rates, makespans) there so exports carry them.
    """

    def extra_dict(self) -> Dict[str, Any]:
        return {}

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if dataclasses.is_dataclass(self):
            for f in dataclasses.fields(self):
                if not f.name.startswith("_"):
                    out[f.name] = json_safe(getattr(self, f.name))
        out.update(json_safe(self.extra_dict()))
        return out

    def to_json(self, indent: Any = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
