"""Unified observability: metrics registry, tracing, and the stats protocol.

Every quantified claim this reproduction regenerates is an argument
about *measured counters* — messages, bytes, steals, idle time, cache
hits.  Before this package each engine reported them through its own
ad-hoc dataclass; :mod:`repro.obs` gives them one substrate:

* :class:`MetricsRegistry` — labeled counters, gauges and histograms
  with dict/JSON export and associative ``merge`` (so per-worker or
  per-shard registries combine into a cluster view);
* :class:`Tracer` / :class:`Span` — span-based tracing that records
  **both** wall-clock time and the engines' *simulated* clocks (the
  TLAG task engine and the staleness simulator advance virtual time;
  a span can carry either or both);
* :class:`StatsView` — the protocol (``as_dict()`` / ``merge()`` /
  ``to_json()``) every stats object in the library now implements,
  replacing three inconsistent reporting shapes.

The engines accept an optional ``obs=`` registry; when none is given
they create a private one, so existing call sites are unchanged while
callers that care can pass a shared registry and get one merged
snapshot across subsystems.
"""

from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry
from .stats import StatsView, StatsViewMixin, json_safe, merge_counters
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "Span",
    "StatsView",
    "StatsViewMixin",
    "Tracer",
    "json_safe",
    "merge_counters",
]
