"""Labeled metrics: counters, gauges, histograms, and their registry.

The model is deliberately Prometheus-shaped: a *metric* is a named
family; each distinct label set names a *series* inside the family
(``registry.counter("cluster.bytes").inc(64, locality="remote")``).
Unlabeled use is the common case and costs one dict lookup.

Merging is the load-bearing operation: engines keep per-worker or
per-subsystem registries and ``merge`` folds them — counters and
histograms add, gauges take the maximum (a merged "peak pending tasks"
across workers is the cluster peak).  All three rules are associative
and commutative, so merge order never changes a benchmark table.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Metric", "Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class Metric:
    """Base class: a named family of labeled series."""

    kind = "metric"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def series(self) -> Dict[str, Any]:
        """``{rendered-label-key: exported-value}`` for every series."""
        raise NotImplementedError

    def merge(self, other: "Metric") -> "Metric":
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "series": self.series()}
        if self.description:
            out["description"] = self.description
        return out

    def _check_mergeable(self, other: "Metric") -> None:
        if type(other) is not type(self) or other.name != self.name:
            raise ValueError(
                f"cannot merge {type(other).__name__} {other.name!r} "
                f"into {type(self).__name__} {self.name!r}"
            )


class Counter(Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def series(self) -> Dict[str, Any]:
        return {_render_key(k): v for k, v in sorted(self._values.items())}

    def merge(self, other: Metric) -> "Counter":
        self._check_mergeable(other)
        for key, v in other._values.items():  # type: ignore[attr-defined]
            self._values[key] = self._values.get(key, 0) + v
        return self

    def reset(self) -> None:
        self._values.clear()


class Gauge(Metric):
    """A value that can move both ways (queue depth, peak watermark)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: Any) -> None:
        """Raise the gauge to ``value`` if it is below it (peak tracking)."""
        key = _label_key(labels)
        if value > self._values.get(key, float("-inf")):
            self._values[key] = value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0)

    def values(self) -> Dict[LabelKey, float]:
        return dict(self._values)

    def series(self) -> Dict[str, Any]:
        return {_render_key(k): v for k, v in sorted(self._values.items())}

    def merge(self, other: Metric) -> "Gauge":
        # Max is the associative choice: merged peaks are cluster peaks.
        self._check_mergeable(other)
        for key, v in other._values.items():  # type: ignore[attr-defined]
            self._values[key] = max(self._values.get(key, v), v)
        return self

    def reset(self) -> None:
        self._values.clear()


# Geometric default buckets: fine at the low end (counts of ops,
# message sizes) and wide enough for simulated-clock makespans.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    float(2**i) for i in range(0, 31, 2)
)


class _HistogramSeries:
    __slots__ = ("count", "total", "min", "max", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 overflow bucket


class Histogram(Metric):
    """Distribution of observed values with fixed upper-bound buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, description)
        bounds = DEFAULT_BUCKETS if buckets is None else tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, labels: Mapping[str, Any]) -> _HistogramSeries:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.bounds))
        return series

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        s = self._get(labels)
        s.count += 1
        s.total += value
        s.min = min(s.min, value)
        s.max = max(s.max, value)
        s.bucket_counts[bisect_left(self.bounds, value)] += 1

    def count(self, **labels: Any) -> int:
        s = self._series.get(_label_key(labels))
        return s.count if s else 0

    def sum(self, **labels: Any) -> float:
        s = self._series.get(_label_key(labels))
        return s.total if s else 0.0

    def mean(self, **labels: Any) -> float:
        s = self._series.get(_label_key(labels))
        return s.total / s.count if s and s.count else 0.0

    def percentile(self, q: float, **labels: Any) -> float:
        """Bucket-upper-bound estimate of the ``q``-quantile (0..1)."""
        s = self._series.get(_label_key(labels))
        if s is None or s.count == 0:
            return 0.0
        rank = q * s.count
        seen = 0
        for i, n in enumerate(s.bucket_counts):
            seen += n
            if seen >= rank and n:
                if i >= len(self.bounds):
                    return s.max
                return min(self.bounds[i], s.max)
        return s.max

    def series(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key, s in sorted(self._series.items()):
            out[_render_key(key)] = {
                "count": s.count,
                "sum": s.total,
                "min": s.min if s.count else None,
                "max": s.max if s.count else None,
                "buckets": {
                    ("+inf" if i >= len(self.bounds) else repr(self.bounds[i])): n
                    for i, n in enumerate(s.bucket_counts)
                    if n
                },
            }
        return out

    def as_dict(self) -> Dict[str, Any]:
        out = super().as_dict()
        out["bounds"] = list(self.bounds)
        return out

    def merge(self, other: Metric) -> "Histogram":
        self._check_mergeable(other)
        assert isinstance(other, Histogram)
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing buckets"
            )
        for key, theirs in other._series.items():
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = _HistogramSeries(len(self.bounds))
            mine.count += theirs.count
            mine.total += theirs.total
            mine.min = min(mine.min, theirs.min)
            mine.max = max(mine.max, theirs.max)
            for i, n in enumerate(theirs.bucket_counts):
                mine.bucket_counts[i] += n
        return self

    def reset(self) -> None:
        self._series.clear()


class MetricsRegistry:
    """Get-or-create home for metrics, with snapshot/merge/JSON export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, description, **kwargs)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, description, buckets=buckets
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Any]:
        """Snapshot of every metric: ``{name: {kind, series, ...}}``."""
        return {name: m.as_dict() for name, m in sorted(self._metrics.items())}

    def to_json(self, indent: Any = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                # Adopt a copy by merging into a fresh empty metric of
                # the same type, so later merges never alias `other`.
                if isinstance(metric, Histogram):
                    fresh: Metric = Histogram(
                        name, metric.description, buckets=metric.bounds
                    )
                else:
                    fresh = type(metric)(name, metric.description)
                self._metrics[name] = fresh.merge(metric)
            else:
                mine.merge(metric)
        return self

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()
