"""Retry with capped exponential backoff and deterministic jitter.

The policy every resilient path shares: the lossy network retransmits
un-acked messages with it, the serverless fleet re-invokes failed and
straggling lambdas with it, and the crash-tolerant executor bounds its
pool rebuilds with it.

Jitter is the textbook cure for retry storms (everyone who failed
together retrying together), but random jitter would make recovery
runs unreproducible — so the jitter here is a pure hash of
``(seed, key, attempt)``: spread out across keys, identical across
runs.  Delays are *simulated* by default (accounted, not slept), which
keeps the chaos suite fast; pass a real ``sleep`` to deploy it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Type

from ..obs import MetricsRegistry

__all__ = ["RetryPolicy"]


def _jitter_unit(seed: int, key: Any, attempt: int) -> float:
    """Deterministic uniform [0,1) from (seed, key, attempt)."""
    data = repr((seed, key, attempt)).encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout + capped exponential backoff with deterministic jitter.

    ``max_attempts`` counts *total* tries (1 = no retries).  The delay
    before retry ``a`` (1-based) is::

        min(max_delay, base_delay * multiplier**(a-1)) * (1 ± jitter)

    with the ± drawn deterministically from ``(seed, key, a)``.
    ``timeout`` is the per-attempt deadline consumers that model time
    (the lambda fleet) charge before declaring an attempt dead.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    timeout: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.timeout < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # -- delay schedule -----------------------------------------------------

    def delay(self, attempt: int, key: Any = 0) -> float:
        """Backoff before retry ``attempt`` (1-based) for event ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter == 0:
            return base
        u = _jitter_unit(self.seed, key, attempt)
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))

    def delays(self, key: Any = 0) -> List[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay(a, key) for a in range(1, self.max_attempts)]

    def total_backoff(self, key: Any = 0) -> float:
        """Worst-case summed backoff if every attempt fails."""
        return sum(self.delays(key))

    # -- execution ----------------------------------------------------------

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        key: Any = 0,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        sleep: Optional[Callable[[float], None]] = None,
        obs: Optional[MetricsRegistry] = None,
        op: str = "call",
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` with retries; re-raises after ``max_attempts``.

        ``sleep=None`` (the default) only *accounts* the backoff into
        the ``resilience.backoff_seconds`` counter — simulated time, the
        same convention the engines use.  Retries are counted under
        ``resilience.retries`` labelled by ``op``.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                pause = self.delay(attempt + 1, key)
                if obs is not None:
                    obs.counter(
                        "resilience.retries", "retried operations, by op"
                    ).inc(op=op)
                    obs.counter(
                        "resilience.backoff_seconds",
                        "summed (simulated) backoff delay",
                    ).inc(pause)
                if sleep is not None:
                    sleep(pause)
        assert last is not None
        raise last
