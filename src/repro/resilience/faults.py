"""Deterministic fault injection: the plan and its injector.

A :class:`FaultPlan` is a declarative schedule of failures — *what*
should go wrong — built with chainable methods::

    plan = (FaultPlan(seed=7)
            .crash_worker(chunk=3)          # executor: worker dies mid-fan-out
            .fail_superstep(4)              # TLAV: crash before superstep 4
            .fail_task(10)                  # TLAG: crash before task #10
            .fail_epoch(2)                  # GNN: crash before epoch 2
            .lossy_network(drop=0.2, duplicate=0.05)
            .fail_lambda(0.1, straggler=0.05))

A :class:`FaultInjector` (``plan.build()``) is the runtime half that
engines consult.  Two determinism properties make recovery testable:

* **scheduled faults** (crash at chunk c / superstep s / task n /
  epoch e) fire a fixed number of times (default once) and then stay
  quiet, so a recovered run does not re-crash at the same point;
* **probabilistic faults** (message fates, lambda outcomes) are pure
  functions of ``(seed, stream, event-key, attempt)`` — drawing one
  event's fate never advances a shared RNG, so retransmissions and
  replays leave every other event's fate unchanged.

Every fault taken increments the ``resilience.faults_injected`` counter
(labelled by ``kind``) in the injector's metrics registry.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs import MetricsRegistry

__all__ = [
    "ENV_FAULT_SEED",
    "FaultError",
    "FaultPlan",
    "FaultInjector",
    "MessageFate",
    "resolve_fault_seed",
]

#: Environment knob: the default seed for :class:`FaultPlan` (CI pins it
#: so the chaos suite replays the exact same failure schedule).
ENV_FAULT_SEED = "REPRO_FAULT_SEED"


def resolve_fault_seed(seed: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_FAULT_SEED``, else 0."""
    if seed is not None:
        return int(seed)
    env = os.environ.get(ENV_FAULT_SEED)
    return int(env) if env else 0


class FaultError(RuntimeError):
    """An injected failure (distinguishable from organic bugs)."""

    def __init__(self, kind: str, **info: Any) -> None:
        self.kind = kind
        self.info = info
        detail = ", ".join(f"{k}={v}" for k, v in sorted(info.items()))
        super().__init__(f"injected fault: {kind}" + (f" ({detail})" if detail else ""))


@dataclass(frozen=True)
class MessageFate:
    """What the lossy link does to one transmission attempt."""

    action: str  # "deliver" | "drop" | "duplicate" | "delay"
    delay_rounds: int = 0


@dataclass
class _Scheduled:
    """A point fault that fires ``times`` times at a given event key."""

    kind: str
    key: Any
    times: int = 1


class FaultPlan:
    """Declarative, seeded schedule of failures (chainable builder)."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = resolve_fault_seed(seed)
        self._scheduled: List[_Scheduled] = []
        self.drop_rate = 0.0
        self.duplicate_rate = 0.0
        self.delay_rate = 0.0
        self.max_delay_rounds = 1
        self.lambda_fail_rate = 0.0
        self.lambda_straggler_rate = 0.0
        self.io_error_rate = 0.0
        self.endpoint_fail_rates: Dict[str, float] = {}

    # -- scheduled (point) faults ------------------------------------------

    def crash_worker(self, chunk: int, times: int = 1) -> "FaultPlan":
        """Kill the worker executing payload index ``chunk`` of a fan-out."""
        self._scheduled.append(_Scheduled("worker_crash", int(chunk), times))
        return self

    def fail_superstep(self, superstep: int, times: int = 1) -> "FaultPlan":
        """Crash the TLAV engine just before ``superstep`` executes."""
        self._scheduled.append(_Scheduled("superstep_failure", int(superstep), times))
        return self

    def fail_task(self, index: int, times: int = 1) -> "FaultPlan":
        """Crash the TLAG engine just before its ``index``-th task runs."""
        self._scheduled.append(_Scheduled("task_failure", int(index), times))
        return self

    def fail_epoch(self, epoch: int, times: int = 1) -> "FaultPlan":
        """Crash the GNN training loop just before ``epoch`` runs."""
        self._scheduled.append(_Scheduled("epoch_failure", int(epoch), times))
        return self

    def drop_message(self, seq: int, times: int = 1) -> "FaultPlan":
        """Drop the first transmission of send-sequence ``seq``."""
        self._scheduled.append(_Scheduled("message_drop", int(seq), times))
        return self

    def duplicate_message(self, seq: int, times: int = 1) -> "FaultPlan":
        """Deliver send-sequence ``seq`` twice."""
        self._scheduled.append(_Scheduled("message_duplicate", int(seq), times))
        return self

    def delay_message(self, seq: int, rounds: int = 1, times: int = 1) -> "FaultPlan":
        """Hold send-sequence ``seq`` for ``rounds`` delivery rounds."""
        self._scheduled.append(
            _Scheduled("message_delay", (int(seq), int(rounds)), times)
        )
        return self

    # -- storage faults -----------------------------------------------------

    def crash_at_chunk(self, chunk: int, times: int = 1) -> "FaultPlan":
        """Crash the chunked store ingest right after spill-chunk ``chunk``
        commits (the crash lands exactly on a journal boundary)."""
        self._scheduled.append(_Scheduled("ingest_crash", int(chunk), times))
        return self

    def torn_write(self, chunk: int, times: int = 1) -> "FaultPlan":
        """Crash the ingest mid-flush of spill-chunk ``chunk``, leaving a
        half-written (torn) tail past the last journaled offset."""
        self._scheduled.append(_Scheduled("torn_write", int(chunk), times))
        return self

    def fail_write(self, relpath: str, times: int = 1) -> "FaultPlan":
        """Fail the shard write of ``relpath`` (store-relative) with an
        I/O error; the writer's deterministic retry sees attempt 1."""
        self._scheduled.append(_Scheduled("io_error", str(relpath), times))
        return self

    # -- probabilistic faults ----------------------------------------------

    def io_error(self, rate: float) -> "FaultPlan":
        """Every shard-file write fails independently with probability
        ``rate`` (per attempt — retries draw a fresh fate)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"io_error rate must be in [0, 1], got {rate}")
        self.io_error_rate = rate
        return self

    def fail_endpoint(self, endpoint: str, rate: float) -> "FaultPlan":
        """Serve: calls to ``endpoint`` fail with probability ``rate``
        (``"*"`` applies to every endpoint without its own rate)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fail_endpoint rate must be in [0, 1], got {rate}")
        self.endpoint_fail_rates[str(endpoint)] = rate
        return self

    def lossy_network(
        self,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        max_delay_rounds: int = 1,
    ) -> "FaultPlan":
        """Make every transmission fail independently with these rates."""
        for name, p in (("drop", drop), ("duplicate", duplicate), ("delay", delay)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {p}")
        self.drop_rate = drop
        self.duplicate_rate = duplicate
        self.delay_rate = delay
        self.max_delay_rounds = max(1, int(max_delay_rounds))
        return self

    def fail_lambda(self, p: float, straggler: float = 0.0) -> "FaultPlan":
        """Each lambda invocation fails with probability ``p`` (and
        straggles — runs far past its deadline — with ``straggler``)."""
        for name, q in (("p", p), ("straggler", straggler)):
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {q}")
        self.lambda_fail_rate = p
        self.lambda_straggler_rate = straggler
        return self

    # -- introspection ------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._scheduled and not any(
            (
                self.drop_rate,
                self.duplicate_rate,
                self.delay_rate,
                self.lambda_fail_rate,
                self.lambda_straggler_rate,
                self.io_error_rate,
            )
        ) and not self.endpoint_fail_rates

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "scheduled": [
                {"kind": s.kind, "key": s.key, "times": s.times}
                for s in self._scheduled
            ],
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "max_delay_rounds": self.max_delay_rounds,
            "lambda_fail_rate": self.lambda_fail_rate,
            "lambda_straggler_rate": self.lambda_straggler_rate,
            "io_error_rate": self.io_error_rate,
            "endpoint_fail_rates": dict(self.endpoint_fail_rates),
        }

    def build(self, obs: Optional[MetricsRegistry] = None) -> "FaultInjector":
        """Instantiate the runtime injector for one run."""
        return FaultInjector(self, obs=obs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, {len(self._scheduled)} scheduled)"


class FaultInjector:
    """Runtime oracle the engines consult; deterministic under ``seed``.

    One injector serves one run.  Scheduled faults are consumed (they
    fire ``times`` times then disarm); probabilistic fates are stateless
    hashes, so the injector can be shared across subsystems without any
    draw-order coupling.
    """

    def __init__(
        self, plan: Optional[FaultPlan] = None, obs: Optional[MetricsRegistry] = None
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.obs = obs if obs is not None else MetricsRegistry()
        self._c_injected = self.obs.counter(
            "resilience.faults_injected", "faults fired by the injector, by kind"
        )
        # Remaining fire-budget per (kind, key).
        self._armed: Dict[Tuple[str, Any], int] = {}
        for s in self.plan._scheduled:
            self._armed[(s.kind, s.key)] = (
                self._armed.get((s.kind, s.key), 0) + s.times
            )

    # -- internals ---------------------------------------------------------

    def arm(self, kind: str, key: Any, times: int = 1) -> None:
        """Schedule an extra point fault on a live injector (shim path)."""
        self._armed[(kind, key)] = self._armed.get((kind, key), 0) + times

    def _take(self, kind: str, key: Any) -> bool:
        """Consume one firing of a scheduled fault, if armed."""
        left = self._armed.get((kind, key), 0)
        if left <= 0:
            return False
        self._armed[(kind, key)] = left - 1
        self._c_injected.inc(kind=kind)
        return True

    def _roll(self, stream: str, *key: Any) -> float:
        """Uniform [0,1) determined purely by (seed, stream, key).

        Hashed with blake2b rather than ``random.Random(tuple)`` because
        python's ``hash()`` of strings is salted per process — fates must
        agree across workers and CI runs.
        """
        data = repr((self.plan.seed, stream) + key).encode()
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2**64

    # -- point-fault queries (one per engine) ------------------------------

    def take_worker_crash(self, chunk: int) -> bool:
        """Executor: should the worker running this chunk die now?"""
        return self._take("worker_crash", int(chunk))

    def take_superstep_failure(self, superstep: int) -> bool:
        """TLAV: should the engine crash before this superstep?"""
        return self._take("superstep_failure", int(superstep))

    def take_task_failure(self, task_index: int) -> bool:
        """TLAG: should the engine crash before this task?"""
        return self._take("task_failure", int(task_index))

    def take_epoch_failure(self, epoch: int) -> bool:
        """GNN: should training crash before this epoch?"""
        return self._take("epoch_failure", int(epoch))

    # -- storage fates -------------------------------------------------------

    def take_ingest_crash(self, chunk: int) -> bool:
        """Store ingest: crash right after this spill chunk commits?"""
        return self._take("ingest_crash", int(chunk))

    def take_torn_write(self, chunk: int) -> bool:
        """Store ingest: tear (half-write) this spill chunk's flush?"""
        return self._take("torn_write", int(chunk))

    def take_io_error(self, relpath: str, attempt: int = 0) -> bool:
        """Store writer: should this shard-file write attempt fail?

        Scheduled :meth:`FaultPlan.fail_write` faults hit the first
        attempt only (the retry is a fresh write); the probabilistic
        ``io_error`` rate applies to every attempt independently.
        """
        if attempt == 0 and self._take("io_error", str(relpath)):
            return True
        rate = self.plan.io_error_rate
        if rate and self._roll("io", str(relpath), int(attempt)) < rate:
            self._c_injected.inc(kind="io_error")
            return True
        return False

    # -- serve fates ---------------------------------------------------------

    def endpoint_outcome(
        self, endpoint: str, request_id: int, attempt: int = 0
    ) -> str:
        """``"ok"`` / ``"fail"`` for one endpoint execution attempt.

        Pure function of ``(seed, endpoint, request_id, attempt)`` — a
        hedged retry draws an independent fate and no other request's
        fate moves.
        """
        rates = self.plan.endpoint_fail_rates
        rate = rates.get(str(endpoint), rates.get("*", 0.0))
        if rate and self._roll("endpoint", str(endpoint), int(request_id), int(attempt)) < rate:
            self._c_injected.inc(kind="endpoint_failure")
            return "fail"
        return "ok"

    # -- network fates ------------------------------------------------------

    def message_fate(self, seq: int, attempt: int = 0) -> MessageFate:
        """Fate of transmission ``attempt`` of send-sequence ``seq``.

        Scheduled per-message faults apply to the first attempt only
        (a retransmission is a fresh packet); the probabilistic rates
        apply to every attempt independently.
        """
        if attempt == 0:
            if self._take("message_drop", int(seq)):
                return MessageFate("drop")
            if self._take("message_duplicate", int(seq)):
                return MessageFate("duplicate")
            for (kind, key), left in list(self._armed.items()):
                if kind == "message_delay" and key[0] == int(seq) and left > 0:
                    self._take(kind, key)
                    return MessageFate("delay", delay_rounds=key[1])
        p = self.plan
        if p.drop_rate or p.duplicate_rate or p.delay_rate:
            u = self._roll("net", int(seq), int(attempt))
            if u < p.drop_rate:
                self._c_injected.inc(kind="message_drop")
                return MessageFate("drop")
            if u < p.drop_rate + p.duplicate_rate:
                self._c_injected.inc(kind="message_duplicate")
                return MessageFate("duplicate")
            if u < p.drop_rate + p.duplicate_rate + p.delay_rate:
                self._c_injected.inc(kind="message_delay")
                rounds = 1 + int(
                    self._roll("net-delay", int(seq), int(attempt))
                    * p.max_delay_rounds
                )
                return MessageFate("delay", delay_rounds=min(rounds, p.max_delay_rounds))
        return MessageFate("deliver")

    # -- lambda outcomes -----------------------------------------------------

    def lambda_outcome(self, invocation: int, attempt: int = 0) -> str:
        """``"ok"`` / ``"fail"`` / ``"straggler"`` for one invocation."""
        p = self.plan
        if p.lambda_fail_rate or p.lambda_straggler_rate:
            u = self._roll("lambda", int(invocation), int(attempt))
            if u < p.lambda_fail_rate:
                self._c_injected.inc(kind="lambda_failure")
                return "fail"
            if u < p.lambda_fail_rate + p.lambda_straggler_rate:
                self._c_injected.inc(kind="lambda_straggler")
                return "straggler"
        return "ok"

    # -- reporting -----------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return int(self._c_injected.total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"injected={self.faults_injected})"
        )
