"""Differential checks for the resilience layer.

The layer's contract: **recovery changes the cost surface, never the
answer**.  A checkpointed TLAV run that crashes and replays must equal
the failure-free run bit for bit; a lossy link with ack/retransmit must
deliver exactly the messages a reliable link delivers; and a snapshot
store must round-trip arbitrary engine state (the checkpoint
save -> restore invariant).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..check.invariants import same_multiset, same_values
from ..check.registry import BIT_IDENTICAL, invariant, pair
from ..check.workloads import gen_graph_params, make_graph
from ..cluster.comm import Network
from ..tlav.algorithms import BFSProgram, pagerank
from ..tlav.engine import PregelEngine
from ..tlav.fault_tolerance import CheckpointedEngine
from .faults import FaultPlan
from .retry import RetryPolicy
from .snapshot import SnapshotStore


def _gen_recovery(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    params["source"] = int(rng.integers(1 << 16))
    params["fail_superstep"] = int(rng.integers(1, 6))
    params["checkpoint_interval"] = int(rng.integers(1, 4))
    return params


@pair(
    "resilience.tlav.recovery_vs_plain", "resilience", BIT_IDENTICAL,
    gen=_gen_recovery,
    floors={"n": 4, "fail_superstep": 1, "checkpoint_interval": 1},
    description="A BFS run that crashes mid-computation, restores the "
    "latest checkpoint and replays must produce exactly the values of "
    "the failure-free run, and must record the injected failure.",
)
def _check_recovery(params: Dict) -> List[str]:
    graph = make_graph(params)
    source = int(params["source"]) % graph.num_vertices
    plain = PregelEngine(
        graph, BFSProgram(source), max_supersteps=graph.num_vertices + 1
    ).run()
    plan = FaultPlan(seed=0).fail_superstep(int(params["fail_superstep"]))
    engine = CheckpointedEngine(
        graph,
        BFSProgram(source),
        checkpoint_interval=int(params["checkpoint_interval"]),
        max_supersteps=graph.num_vertices + 1,
        injector=plan.build(),
    )
    recovered = engine.run()
    out = same_values(list(plain), list(recovered), "bfs")
    if engine.stats.failures < 1:
        out.append(
            f"recovery: expected at least one injected failure, saw "
            f"{engine.stats.failures} (fault never fired?)"
        )
    return out


def _gen_lossy(rng: np.random.Generator) -> Dict:
    return {
        "num_workers": int(rng.integers(2, 6)),
        "messages": int(rng.integers(8, 129)),
        "rounds": int(rng.integers(1, 5)),
        "drop": round(float(rng.uniform(0.05, 0.5)), 3),
        "duplicate": round(float(rng.uniform(0.0, 0.3)), 3),
        "fault_seed": int(rng.integers(1 << 16)),
    }


@pair(
    "resilience.network.lossy_retry_vs_reliable", "resilience", BIT_IDENTICAL,
    gen=_gen_lossy,
    floors={"num_workers": 2, "messages": 1, "rounds": 1, "drop": 0.0,
            "duplicate": 0.0},
    description="Sender-side ack/retransmit over a dropping, "
    "duplicating link gives exactly-once delivery: every worker "
    "receives exactly the multiset of payloads a lossless link "
    "delivers.",
)
def _check_lossy(params: Dict) -> List[str]:
    workers = int(params["num_workers"])
    messages = int(params["messages"])
    rounds = int(params["rounds"])

    def pump(network: Network) -> List[List]:
        received: List[List] = [[] for _ in range(workers)]
        seq = 0
        for _ in range(rounds):
            for _ in range(messages):
                src = seq % workers
                dst = (seq * 7 + 3) % workers
                network.send(src, dst, ("payload", seq))
                seq += 1
            network.deliver()
            for w in range(workers):
                received[w].extend(m.payload for m in network.receive(w))
        # Drain delayed/straggler deliveries.
        for _ in range(8):
            if not network.deliver():
                break
            for w in range(workers):
                received[w].extend(m.payload for m in network.receive(w))
        return received

    reliable = pump(Network(workers))
    plan = FaultPlan(seed=int(params["fault_seed"])).lossy_network(
        drop=float(params["drop"]), duplicate=float(params["duplicate"])
    )
    lossy = pump(
        Network(
            workers,
            injector=plan.build(),
            retry=RetryPolicy(max_attempts=6, seed=int(params["fault_seed"])),
        )
    )
    out: List[str] = []
    for w in range(workers):
        out += same_multiset(reliable[w], lossy[w], f"worker[{w}]")
    return out


def _gen_snapshot(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 32))
    params["iterations"] = int(rng.integers(1, 5))
    params["keep"] = int(rng.integers(1, 4))
    params["saves"] = int(rng.integers(1, 7))
    return params


@invariant(
    "resilience.snapshot.roundtrip", "resilience", gen=_gen_snapshot,
    floors={"n": 4, "iterations": 1, "keep": 1, "saves": 1},
    description="SnapshotStore round-trips real engine state (float "
    "arrays, nested dicts) bit-exactly, keeps exactly the newest "
    "`keep` snapshots, and its checkpoint counter matches the saves "
    "issued.",
)
def _check_snapshot(params: Dict) -> List[str]:
    graph = make_graph(params)
    ranks = pagerank(graph, iterations=int(params["iterations"]))
    store = SnapshotStore(keep=int(params["keep"]))
    saves = int(params["saves"])
    state = None
    for step in range(saves):
        state = {
            "step": step,
            "ranks": ranks * (step + 1),
            "halted": [bool(i % 2) for i in range(graph.num_vertices)],
            "nested": {"labels": list(range(step + 1))},
        }
        store.save("check", step, state)
    restored = store.restore_latest("check")
    out: List[str] = []
    if restored["step"] != state["step"]:
        out.append(
            f"snapshot: restored step {restored['step']} != {state['step']}"
        )
    if not np.array_equal(restored["ranks"], state["ranks"]):
        out.append("snapshot: ranks array did not round-trip bit-exactly")
    out += same_values(state["halted"], restored["halted"], "halted")
    out += same_values(
        state["nested"]["labels"], restored["nested"]["labels"], "labels"
    )
    if store.checkpoints_taken("check") != saves:
        out.append(
            f"snapshot: checkpoints_taken {store.checkpoints_taken('check')} "
            f"!= {saves} saves"
        )
    history = store._by_tag.get("check", [])
    if len(history) != min(saves, int(params["keep"])):
        out.append(
            f"snapshot: store holds {len(history)} snapshots, expected "
            f"{min(saves, int(params['keep']))} (keep={params['keep']})"
        )
    return out
