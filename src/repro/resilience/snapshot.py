"""The unified checkpoint/restore protocol (LWCP, generalized).

LWCP's insight for Pregel systems — snapshot the cheap durable state,
regenerate the rest by replay — applies to every engine in this stack
once "state" is named per engine:

===========  ====================================================
engine       what a snapshot holds
===========  ====================================================
TLAV         vertex values + halted votes (+ inbox when ``full``)
TLAG         pending task queues + worker clocks + emitted results
executor     nothing — chunks are pure, recovery is re-dispatch
GNN          model weights + optimizer state (Adam m/v/t) + epoch
===========  ====================================================

A :class:`SnapshotStore` keeps the latest :class:`Snapshot` per tag
(engines use one tag per run), prices every checkpoint in pickled
bytes — the cost axis of the LWCP evaluation — and counts traffic
under ``resilience.checkpoints`` / ``resilience.checkpoint_bytes`` /
``resilience.restores``.  Snapshots are deep copies (via pickle), so a
restored engine cannot alias live state that later mutates.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..obs import MetricsRegistry

__all__ = ["Snapshot", "SnapshotStore"]


@dataclass(frozen=True)
class Snapshot:
    """One immutable checkpoint: pickled state plus its coordinates."""

    tag: str
    step: int
    payload: bytes

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def restore(self) -> Any:
        """Materialize a fresh deep copy of the checkpointed state."""
        return pickle.loads(self.payload)


class SnapshotStore:
    """Latest-checkpoint-per-tag store with byte accounting.

    ``keep`` > 1 retains a short history (the chaos CLI uses it to show
    the recovery point chosen); engines only ever need ``latest``.
    """

    def __init__(
        self, obs: Optional[MetricsRegistry] = None, keep: int = 1
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.obs = obs if obs is not None else MetricsRegistry()
        self.keep = keep
        self._by_tag: Dict[str, list] = {}
        self._c_checkpoints = self.obs.counter(
            "resilience.checkpoints", "snapshots taken, by tag"
        )
        self._c_bytes = self.obs.counter(
            "resilience.checkpoint_bytes", "pickled snapshot bytes, by tag"
        )
        self._c_restores = self.obs.counter(
            "resilience.restores", "snapshot restores, by tag"
        )

    def save(
        self, tag: str, step: int, state: Any, billed_bytes: Optional[int] = None
    ) -> Snapshot:
        """Checkpoint ``state`` (deep-copied via pickle) at ``step``.

        ``billed_bytes`` overrides the bytes *accounted* (not stored):
        LWCP's light checkpoints keep the inbox in the simulation so
        recovery stays exact, but bill only the state a real system
        would persist.
        """
        snap = Snapshot(tag, int(step), pickle.dumps(state))
        history = self._by_tag.setdefault(tag, [])
        history.append(snap)
        del history[: -self.keep]
        self._c_checkpoints.inc(tag=tag)
        self._c_bytes.inc(
            snap.nbytes if billed_bytes is None else int(billed_bytes), tag=tag
        )
        return snap

    def latest(self, tag: str) -> Optional[Snapshot]:
        history = self._by_tag.get(tag)
        return history[-1] if history else None

    def restore_latest(self, tag: str) -> Any:
        """Restore the newest snapshot for ``tag`` (raises if none)."""
        snap = self.latest(tag)
        if snap is None:
            raise KeyError(f"no snapshot for tag {tag!r}")
        self._c_restores.inc(tag=tag)
        return snap.restore()

    # -- accounting ---------------------------------------------------------

    def checkpoints_taken(self, tag: Optional[str] = None) -> int:
        c = self._c_checkpoints
        return int(c.value(tag=tag) if tag is not None else c.total)

    def checkpoint_bytes(self, tag: Optional[str] = None) -> int:
        c = self._c_bytes
        return int(c.value(tag=tag) if tag is not None else c.total)

    def restores(self, tag: Optional[str] = None) -> int:
        c = self._c_restores
        return int(c.value(tag=tag) if tag is not None else c.total)

    def tags(self) -> list:
        return sorted(self._by_tag)

    def __contains__(self, tag: str) -> bool:
        return tag in self._by_tag
