"""Unified resilience: deterministic faults, retries, and checkpoints.

The surveyed systems are distributed by nature, and each family grew
its own fault-tolerance machinery: Pregel-family TLAV engines
checkpoint vertex state and replay (LWCP [48]), Dorylus [39] runs the
tensor stage on preemptible serverless lambdas and re-invokes the ones
that fail or straggle, and the task/GNN engines must survive worker
crashes and lossy links.  Before this package each corner modelled
failure ad hoc (``CheckpointedEngine.inject_failure``); ``repro.resilience``
gives the whole stack one substrate:

* :class:`FaultPlan` / :class:`FaultInjector` — a *seeded, deterministic*
  fault schedule (crash worker at chunk c, drop/duplicate/delay message
  k, fail superstep s, fail a lambda invocation with probability p)
  that every engine consumes.  Determinism is per-event: each fault
  decision hashes ``(seed, stream, event-key)``, so replaying or
  retransmitting never shifts another event's fate;
* :class:`RetryPolicy` — timeout + capped exponential backoff with
  deterministic jitter, wired into :class:`~repro.cluster.comm.Network`
  (ack/retransmit on a lossy link) and the serverless lambda fleet
  (re-invocation of failed/straggler lambdas);
* :class:`Snapshot` / :class:`SnapshotStore` — the checkpoint/restore
  protocol generalizing LWCP beyond TLAV: the TLAG engine snapshots its
  pending task queues, the GNN training loop its weights + optimizer
  state + epoch, and the multicore executor re-dispatches the spans a
  dead process worker leaves behind.

Everything reports through :mod:`repro.obs` under the ``resilience.*``
namespace (faults injected, retries, retransmitted bytes, re-dispatched
chunks, checkpoint/restore traffic) and is driveable end-to-end from
the ``repro chaos`` CLI subcommand.

The invariant every consumer is tested against: **with a fixed seed and
chunking, a run under a fault plan produces bit-identical results to
the failure-free run** — recovery changes the cost surface, never the
answer.
"""

from .faults import (
    ENV_FAULT_SEED,
    FaultError,
    FaultInjector,
    FaultPlan,
    MessageFate,
    resolve_fault_seed,
)
from .retry import RetryPolicy
from .snapshot import Snapshot, SnapshotStore

__all__ = [
    "ENV_FAULT_SEED",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "MessageFate",
    "RetryPolicy",
    "Snapshot",
    "SnapshotStore",
    "resolve_fault_seed",
]
