"""G²-AIMD-style chunked BFS extension with adaptive chunk sizing.

G²-AIMD [62] keeps the GPU-friendly BFS extension of GSI/cuTS but
avoids the intermediate-embedding explosion with two mechanisms the
tutorial calls out:

* **adaptive chunk-size adjustment** — instead of expanding a whole
  level at once, expand a *chunk* of embeddings; grow the chunk size
  additively while expansions fit in device memory, and halve it
  (multiplicative decrease) when an expansion would overflow — the
  classic AIMD control loop;
* **host-memory subgraph buffering** — embeddings that do not fit on
  the device spill to a host-side buffer and are consumed chunk by
  chunk.

This module simulates both against an explicit ``device_capacity``
budget (max embeddings resident on the "device") and reports the
control-loop trace, so bench C5 can show: plain BFS overflows the
device at the explosion level, while AIMD completes with bounded
device residency at the cost of more, smaller kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..graph.csr import Graph
from .bfs_engine import _canonical_generation

__all__ = ["AimdStats", "DeviceOverflow", "aimd_enumerate"]


class DeviceOverflow(RuntimeError):
    """Raised when a non-adaptive BFS expansion exceeds device capacity."""


@dataclass
class AimdStats:
    """Control-loop trace of one AIMD run."""

    chunk_trace: List[int] = field(default_factory=list)
    launches: int = 0
    peak_device_embeddings: int = 0
    peak_host_buffer: int = 0
    decreases: int = 0
    results: int = 0


def aimd_enumerate(
    graph: Graph,
    k: int,
    device_capacity: int,
    keep_filter: Optional[Callable[[Tuple[int, ...], Graph], bool]] = None,
    initial_chunk: int = 64,
    additive_increase: int = 64,
    adaptive: bool = True,
) -> Tuple[List[Tuple[int, ...]], AimdStats]:
    """Enumerate connected k-subgraphs by chunked BFS extension.

    Parameters
    ----------
    device_capacity:
        Max embeddings that may be resident in "device memory" during one
        expansion (input chunk + its outputs).
    adaptive:
        With ``False`` the whole frontier is expanded at once (the
        GSI/cuTS regime) and :class:`DeviceOverflow` is raised when it
        does not fit — the failure mode G²-AIMD eliminates.

    Returns ``(final_embeddings, stats)``.
    """
    keep = keep_filter or (lambda emb, g: True)
    stats = AimdStats()
    # Host buffer holds the current level's pending embeddings.
    host: List[Tuple[int, ...]] = [
        (v,) for v in graph.vertices() if keep((v,), graph)
    ]
    stats.peak_host_buffer = len(host)
    chunk = initial_chunk

    for size in range(2, k + 1):
        next_host: List[Tuple[int, ...]] = []
        cursor = 0
        while cursor < len(host):
            if not adaptive:
                take = len(host)
            else:
                take = min(chunk, len(host) - cursor)
            batch = host[cursor: cursor + take]
            outputs = _expand_batch(graph, batch, keep)
            resident = len(batch) + len(outputs)
            if resident > device_capacity:
                if not adaptive:
                    raise DeviceOverflow(
                        f"level {size}: {resident} embeddings exceed device "
                        f"capacity {device_capacity}"
                    )
                if take == 1:
                    # A single embedding's expansion overflows: spill its
                    # outputs straight through the host buffer (G²-AIMD's
                    # host-memory buffering makes this safe).
                    stats.launches += 1
                    stats.chunk_trace.append(take)
                    stats.peak_device_embeddings = max(
                        stats.peak_device_embeddings, resident
                    )
                    next_host.extend(outputs)
                    stats.peak_host_buffer = max(
                        stats.peak_host_buffer, len(next_host) + len(host) - cursor
                    )
                    cursor += 1
                    chunk = 1
                    continue
                # Multiplicative decrease and retry with a smaller chunk.
                chunk = max(1, take // 2)
                stats.decreases += 1
                continue
            stats.launches += 1
            stats.chunk_trace.append(take)
            stats.peak_device_embeddings = max(stats.peak_device_embeddings, resident)
            next_host.extend(outputs)
            stats.peak_host_buffer = max(
                stats.peak_host_buffer, len(next_host) + len(host) - cursor
            )
            cursor += take
            if adaptive:
                chunk = chunk + additive_increase  # additive increase
        host = next_host
    stats.results = len(host)
    return host, stats


def _expand_batch(
    graph: Graph,
    batch: List[Tuple[int, ...]],
    keep: Callable[[Tuple[int, ...], Graph], bool],
) -> List[Tuple[int, ...]]:
    """Expand a chunk of embeddings by one vertex (canonical, filtered)."""
    outputs: List[Tuple[int, ...]] = []
    for emb in batch:
        members = set(emb)
        candidates = set()
        for u in emb:
            for w in graph.neighbors(u):
                w = int(w)
                if w not in members:
                    candidates.add(w)
        for w in sorted(candidates):
            new_emb = emb + (w,)
            if new_emb != _canonical_generation(new_emb, graph):
                continue
            if keep(new_emb, graph):
                outputs.append(new_emb)
    return outputs
