"""BFS-style subgraph extension (the Arabesque/RStream/Pangolin model).

These systems support SF and FSM under one programming model by growing
subgraphs breadth-first: all embeddings of size ``i`` are materialized
before any embedding of size ``i + 1`` is generated.  The price is the
intermediate **embedding explosion** the tutorial highlights — the
number of materialized embeddings grows exponentially with pattern size,
which is precisely what the DFS/task systems avoid.

:class:`BfsExplorer` implements the model faithfully:

* levels of *canonical* embeddings — an embedding is kept only if its
  extension order is the canonical one for its vertex set (Arabesque's
  automorphism-dedup via canonicality checking), so each connected
  subgraph instance appears exactly once per level;
* a user ``filter`` prunes embeddings (e.g. "is still a clique") and a
  ``process`` callback consumes each surviving embedding;
* ``LevelStats`` records the materialized-count and peak-memory numbers
  bench C2 plots against the DFS engine.

The canonicality rule (from Arabesque): an embedding ``(v0 < ...)``
grown as a vertex sequence is canonical iff each appended vertex is
(a) adjacent to the prefix and (b) the smallest such vertex that is
larger than the earliest prefix position it attaches to — concretely we
use the standard rule "extend only with vertices greater than the
minimum vertex the extension attaches to, and keep an embedding iff its
sorted vertex set regenerates the same sequence".  For simplicity and
provable exactness we canonicalize on the *vertex set*: an embedding
survives iff its vertex sequence equals the lexicographically smallest
connected generation order of its set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..graph.csr import Graph

__all__ = ["LevelStats", "BfsExplorer", "bfs_enumerate_cliques", "bfs_enumerate_connected"]


@dataclass
class LevelStats:
    """Materialization counters per BFS level."""

    level: int
    generated: int
    kept: int


@dataclass
class BfsResult:
    """Output of a BFS exploration run."""

    levels: List[LevelStats] = field(default_factory=list)
    final_embeddings: List[Tuple[int, ...]] = field(default_factory=list)

    @property
    def peak_materialized(self) -> int:
        """Max embeddings held at once — the memory bottleneck of BFS systems."""
        return max((s.kept for s in self.levels), default=0)

    @property
    def total_generated(self) -> int:
        return sum(s.generated for s in self.levels)


def _canonical_generation(vertex_set: Tuple[int, ...], graph: Graph) -> Tuple[int, ...]:
    """Lexicographically smallest connected generation order of a vertex set."""
    vertices = sorted(vertex_set)
    members = set(vertices)
    sequence = [vertices[0]]
    used = {vertices[0]}
    while len(sequence) < len(vertices):
        # Smallest unused member adjacent to the current prefix.
        for v in vertices:
            if v in used:
                continue
            if any(int(w) in used for w in graph.neighbors(v) if int(w) in members):
                sequence.append(v)
                used.add(v)
                break
        else:  # disconnected set — cannot happen for connected growth
            raise ValueError("vertex set is not connected")
    return tuple(sequence)


class BfsExplorer:
    """Level-synchronous subgraph extension with canonicality dedup."""

    def __init__(
        self,
        graph: Graph,
        max_size: int,
        keep_filter: Optional[Callable[[Tuple[int, ...], Graph], bool]] = None,
    ) -> None:
        self.graph = graph
        self.max_size = max_size
        self.keep_filter = keep_filter or (lambda emb, g: True)

    def run(self) -> BfsResult:
        """Run levels 1..max_size; returns stats and the final level."""
        result = BfsResult()
        current: List[Tuple[int, ...]] = [
            (v,) for v in self.graph.vertices() if self.keep_filter((v,), self.graph)
        ]
        result.levels.append(
            LevelStats(level=1, generated=self.graph.num_vertices, kept=len(current))
        )
        for size in range(2, self.max_size + 1):
            generated = 0
            next_level: List[Tuple[int, ...]] = []
            for emb in current:
                members = set(emb)
                # Candidate extensions: neighbors of any member, outside.
                candidates: Set[int] = set()
                for u in emb:
                    for w in self.graph.neighbors(u):
                        w = int(w)
                        if w not in members:
                            candidates.add(w)
                for w in sorted(candidates):
                    generated += 1
                    new_emb = emb + (w,)
                    # Canonicality: keep only the canonical generation order.
                    if new_emb != _canonical_generation(new_emb, self.graph):
                        continue
                    if self.keep_filter(new_emb, self.graph):
                        next_level.append(new_emb)
            result.levels.append(
                LevelStats(level=size, generated=generated, kept=len(next_level))
            )
            current = next_level
        result.final_embeddings = current
        return result


def _is_clique(embedding: Tuple[int, ...], graph: Graph) -> bool:
    for i, u in enumerate(embedding):
        for v in embedding[i + 1:]:
            if not graph.has_edge(u, v):
                return False
    return True


def bfs_enumerate_cliques(graph: Graph, k: int) -> BfsResult:
    """All k-cliques by BFS extension (the Arabesque clique program)."""
    return BfsExplorer(graph, max_size=k, keep_filter=_is_clique).run()


def bfs_enumerate_connected(graph: Graph, k: int) -> BfsResult:
    """All connected k-vertex subgraph instances by BFS extension."""
    return BfsExplorer(graph, max_size=k).run()
