"""Distributed TLAG execution: remote adjacency pulls with caching.

The real G-thinker [53, 54] is a *distributed* framework: the data
graph is partitioned across machines, a task's subgraph may grow into
vertices whose adjacency lists live elsewhere, and the engine's central
mechanism is **pull-and-cache** — a task requests the remote adjacency
lists it needs, and each worker keeps an LRU-bounded *vertex cache* so
hot vertices (hubs) are fetched once, not once per task.

:class:`DistributedTaskEngine` reproduces that data plane on top of the
simulated :class:`~repro.cluster.comm.Network`:

* the graph is partitioned; each worker owns its vertices' adjacency;
* tasks execute exactly as in :class:`~repro.tlag.engine.TaskEngine`
  (same programs, same results — tests assert it), but every adjacency
  access is routed through a :class:`VertexCache`: local reads are
  free, remote reads are priced through the network unless cached;
* stolen tasks are priced by their serialized size.

``cache_capacity=0`` disables caching — the ablation benches use it to
measure how much of G-thinker's traffic the cache removes on power-law
graphs (hubs dominate accesses, so hit rates are high).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..cluster.comm import Network
from ..graph.csr import Graph
from ..graph.partition import Partition
from ..obs import MetricsRegistry, StatsViewMixin, Tracer
from .engine import EngineStats
from .task import Task, TaskContext, TaskProgram

__all__ = ["CacheStats", "VertexCache", "DistributedTaskEngine"]


@dataclass
class CacheStats(StatsViewMixin):
    """Adjacency-access counters for one worker (or aggregated)."""

    local_reads: int = 0
    cache_hits: int = 0
    remote_pulls: int = 0
    bytes_pulled: int = 0

    @property
    def total_reads(self) -> int:
        return self.local_reads + self.cache_hits + self.remote_pulls

    @property
    def hit_rate(self) -> float:
        remote_accesses = self.cache_hits + self.remote_pulls
        return self.cache_hits / remote_accesses if remote_accesses else 0.0

    def extra_dict(self) -> Dict[str, Any]:
        return {"total_reads": self.total_reads, "hit_rate": self.hit_rate}

    def merge(self, other: "CacheStats") -> "CacheStats":
        self.local_reads += other.local_reads
        self.cache_hits += other.cache_hits
        self.remote_pulls += other.remote_pulls
        self.bytes_pulled += other.bytes_pulled
        return self


class VertexCache:
    """Per-worker LRU cache of remote adjacency lists."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()

    def get(self, vertex: int) -> Optional[np.ndarray]:
        if vertex in self._entries:
            self._entries.move_to_end(vertex)
            return self._entries[vertex]
        return None

    def put(self, vertex: int, adjacency: np.ndarray) -> None:
        if self.capacity <= 0:
            return
        self._entries[vertex] = adjacency
        self._entries.move_to_end(vertex)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


class _CachedGraphView:
    """A Graph facade whose adjacency reads are priced per worker.

    Presents the same read API the task programs use (``neighbors``,
    ``degree``, ``has_edge``, labels, sizes); owned vertices read
    locally, others go through the worker's cache or the network.
    """

    def __init__(self, engine: "DistributedTaskEngine", worker: int) -> None:
        self._engine = engine
        self._worker = worker

    # -- sizes / labels are metadata every worker holds ------------------

    @property
    def num_vertices(self) -> int:
        return self._engine.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._engine.graph.num_edges

    @property
    def directed(self) -> bool:
        return self._engine.graph.directed

    @property
    def vertex_labels(self):
        return self._engine.graph.vertex_labels

    @property
    def edge_labels(self):
        return self._engine.graph.edge_labels

    def edge_label(self, u: int, v: int) -> int:
        return self._engine.graph.edge_label(u, v)

    def vertices(self):
        return self._engine.graph.vertices()

    def vertex_label(self, v: int) -> int:
        return self._engine.graph.vertex_label(v)

    # -- priced adjacency --------------------------------------------------

    def neighbors(self, v: int) -> np.ndarray:
        return self._engine._read_adjacency(self._worker, int(v))

    def degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    def degrees(self) -> np.ndarray:
        return self._engine.graph.degrees()

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        k = int(np.searchsorted(nbrs, v))
        return k < nbrs.size and nbrs[k] == v

    def edges(self):
        return self._engine.graph.edges()

    def orient_by_degree(self) -> Graph:
        return self._engine.graph.orient_by_degree()


class DistributedTaskEngine:
    """The G-thinker data plane: partitioned graph + pull-and-cache."""

    def __init__(
        self,
        graph: Graph,
        program: TaskProgram,
        partition: Partition,
        cache_capacity: int = 1024,
        task_budget: Optional[int] = None,
        steal: bool = True,
        collect_results: bool = True,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.program = program
        self.partition = partition
        self.num_workers = partition.num_parts
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.network = Network(self.num_workers, registry=self.obs)
        self.task_budget = task_budget
        self.steal = steal
        self.collect_results = collect_results
        self.results: List[Any] = []
        self.result_count = 0
        self.cache_stats = [CacheStats() for _ in range(self.num_workers)]
        self._caches = [VertexCache(cache_capacity) for _ in range(self.num_workers)]
        self.stats = EngineStats(
            self.num_workers, registry=self.obs,
            worker_busy=[0] * self.num_workers,
        )
        self._c_cache_reads = self.obs.counter(
            "tlag.cache.reads", "adjacency reads, by kind (local/hit/pull)"
        )
        self._c_cache_bytes = self.obs.counter(
            "tlag.cache.bytes_pulled", "bytes fetched for remote adjacency"
        )

    @property
    def steals(self) -> int:
        return self.stats.steals

    @property
    def tasks_executed(self) -> int:
        return self.stats.tasks_executed

    # -- the priced adjacency read -------------------------------------------

    def _read_adjacency(self, worker: int, v: int) -> np.ndarray:
        owner = int(self.partition.assignment[v])
        stats = self.cache_stats[worker]
        adjacency = self.graph.neighbors(v)
        if owner == worker:
            stats.local_reads += 1
            self._c_cache_reads.inc(kind="local")
            return adjacency
        cached = self._caches[worker].get(v)
        if cached is not None:
            stats.cache_hits += 1
            self._c_cache_reads.inc(kind="hit")
            return cached
        nbytes = int(adjacency.nbytes) + 8  # list + vertex id header
        self.network.send_now(owner, worker, None, tag="adj-pull", nbytes=nbytes)
        self.network.receive(worker)
        stats.remote_pulls += 1
        stats.bytes_pulled += nbytes
        self._c_cache_reads.inc(kind="pull")
        self._c_cache_bytes.inc(nbytes)
        self._caches[worker].put(v, adjacency)
        return adjacency

    # -- execution ----------------------------------------------------------------

    def run(self) -> List[Any]:
        """Execute all tasks; same results as the shared-memory engine."""
        span = (
            self.tracer.span("tlag.distributed.run", workers=self.num_workers)
            if self.tracer is not None
            else None
        )
        try:
            return self._run()
        finally:
            if span is not None:
                span.set_sim(0, self.stats.makespan)
                span.set("tasks", self.tasks_executed)
                span.__exit__(None, None, None)

    def _run(self) -> List[Any]:
        queues: List[deque] = [deque() for _ in range(self.num_workers)]
        for task in self.program.spawn(self.graph):
            # Tasks spawn at the worker owning their first vertex
            # (G-thinker's vertex-spawned placement).
            home = int(self.partition.assignment[task.subgraph[0]])
            queues[home].append(task)

        clocks = [0] * self.num_workers
        heap = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(heap)
        views = [_CachedGraphView(self, w) for w in range(self.num_workers)]

        while heap:
            clock, w = heapq.heappop(heap)
            task = self._next_task(w, queues)
            if task is None:
                continue
            ctx = TaskContext(views[w], budget=self.task_budget)
            ctx.collect_results = self.collect_results
            self.program.process(task, ctx)
            clocks[w] = clock + max(ctx.ops, 1)
            self.stats.record_task(w, ctx.ops, len(ctx.forked), clocks[w])
            self.result_count += ctx.result_count
            if self.collect_results:
                self.results.extend(ctx.results)
            for child in ctx.forked:
                queues[w].append(child)
            self.stats.record_pending(sum(len(q) for q in queues))
            heapq.heappush(heap, (clocks[w], w))
            if self.steal:
                in_heap = {entry[1] for entry in heap}
                pending = sum(len(q) for q in queues)
                for other in range(self.num_workers):
                    if other not in in_heap and pending > 0:
                        heapq.heappush(heap, (max(clocks[other], clock), other))
                        in_heap.add(other)
        return self.results

    def _next_task(self, w: int, queues: List[deque]) -> Optional[Task]:
        if queues[w]:
            return queues[w].pop()
        if not self.steal:
            return None
        victim = max(range(self.num_workers), key=lambda k: len(queues[k]))
        if queues[victim] and victim != w:
            task = queues[victim].popleft()
            nbytes = 16 * (len(task.subgraph) + 2)
            self.network.send_now(victim, w, None, tag="steal", nbytes=nbytes)
            self.network.receive(w)
            self.stats.record_steal()
            return task
        return None

    # -- summaries -------------------------------------------------------------------

    def aggregate_cache_stats(self) -> CacheStats:
        total = CacheStats()
        for stats in self.cache_stats:
            total.merge(stats)
        return total

    @property
    def remote_bytes(self) -> int:
        return self.network.stats.bytes_remote
