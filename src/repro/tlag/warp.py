"""Simulated SIMT warps for GPU subgraph matching (STMatch / T-DFS).

The GPU systems of Table 1 fall into two regimes:

* **BFS systems** (GSI [67], cuTS [45]) expand all partial matches level
  by level — memory-hungry but perfectly coalesced;
* **warp-centric DFS systems** (STMatch [44], T-DFS [64]) give every
  warp its own stack over a chunk of independent search subtrees, and
  balance load by work stealing that splits heavy tasks.

Real GPUs are out of scope offline, so this module simulates the SIMT
execution model at the level the papers reason about: a
:class:`WarpSimulator` runs ``num_warps`` warps of ``warp_width`` lanes
in lock step.  In every cycle each warp takes the top frame of its
stack, the frame's candidate list is processed ``warp_width`` at a time
(one lane per candidate), and counters track:

* **divergence** — lanes idle because a frame had fewer candidates than
  the warp width (the cost of DFS irregularity the papers discuss);
* **stack depth** — memory per warp (O(pattern size), the DFS win);
* **steals** — idle warps split the deepest-loaded warp's bottom frame
  (STMatch's "work stealing which splits heavy tasks").

Bench C5 contrasts this against the BFS regime's peak-materialization
from :mod:`repro.tlag.aimd` and the hybrid policy of
:mod:`repro.tlag.hybrid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from ..matching.pattern import PatternGraph, default_order, symmetry_breaking_restrictions

__all__ = ["WarpStats", "WarpSimulator", "warp_match"]


@dataclass
class WarpStats:
    """Counters from one simulated kernel."""

    num_warps: int
    warp_width: int
    cycles: int = 0
    lane_slots: int = 0       # cycles * width summed over active warps
    lanes_busy: int = 0       # slots that actually processed a candidate
    steals: int = 0
    max_stack_depth: int = 0
    embeddings: int = 0

    @property
    def divergence(self) -> float:
        """Fraction of lane slots wasted by control divergence."""
        if self.lane_slots == 0:
            return 0.0
        return 1.0 - self.lanes_busy / self.lane_slots


@dataclass
class _Frame:
    """One DFS stack frame: a partial embedding and its pending candidates."""

    partial: Tuple[int, ...]
    candidates: List[int]


class WarpSimulator:
    """Lock-step warps running stack-based DFS subgraph matching."""

    def __init__(
        self,
        graph: Graph,
        pattern: PatternGraph,
        order: Optional[Sequence[int]] = None,
        num_warps: int = 8,
        warp_width: int = 32,
        steal: bool = True,
    ) -> None:
        self.graph = graph
        self.pattern = pattern
        self.order = list(order) if order is not None else default_order(pattern)
        self.num_warps = num_warps
        self.warp_width = warp_width
        self.steal = steal
        restrictions = symmetry_breaking_restrictions(pattern)
        position_of = {pv: i for i, pv in enumerate(self.order)}
        self._backward = [
            [position_of[q] for q in pattern.adj[pv] if position_of[q] < i]
            for i, pv in enumerate(self.order)
        ]
        self._gt_at: List[List[int]] = [[] for _ in range(pattern.n)]
        self._lt_at: List[List[int]] = [[] for _ in range(pattern.n)]
        for u, v in restrictions:
            iu, iv = position_of[u], position_of[v]
            if iu < iv:
                self._gt_at[iv].append(iu)
            else:
                self._lt_at[iu].append(iv)

    def _candidates(self, partial: Tuple[int, ...], step: int) -> List[int]:
        pattern, graph = self.pattern, self.graph
        pv = self.order[step]
        want = pattern.label(pv)
        back = self._backward[step]
        labels = graph.vertex_labels
        if not back:
            base: Sequence[int] = range(graph.num_vertices)
        else:
            lists = sorted(
                (graph.neighbors(partial[j]) for j in back), key=lambda a: a.size
            )
            base = []
            for x in lists[0]:
                x = int(x)
                ok = True
                for other in lists[1:]:
                    k = int(np.searchsorted(other, x))
                    if k >= other.size or other[k] != x:
                        ok = False
                        break
                if ok:
                    base.append(x)
        lo = max((partial[j] for j in self._gt_at[step]), default=-1)
        hi = min(
            (partial[j] for j in self._lt_at[step]), default=graph.num_vertices
        )
        out = []
        for x in base:
            x = int(x)
            if x <= lo or x >= hi or x in partial:
                continue
            if labels is not None and int(labels[x]) != want:
                continue
            out.append(x)
        return out

    def run(self) -> WarpStats:
        """Simulate the kernel; returns the counters."""
        stats = WarpStats(self.num_warps, self.warp_width)
        n = self.pattern.n
        # Root tasks: chunks of first-level candidates, round-robin.
        roots = self._candidates((), 0)
        stacks: List[List[_Frame]] = [[] for _ in range(self.num_warps)]
        for i in range(self.num_warps):
            chunk = roots[i:: self.num_warps]
            if chunk:
                stacks[i].append(_Frame(partial=(), candidates=list(chunk)))

        while any(stacks):
            stats.cycles += 1
            for w in range(self.num_warps):
                if not stacks[w]:
                    if self.steal:
                        self._steal_into(w, stacks, stats)
                    if not stacks[w]:
                        continue
                frame = stacks[w][-1]
                stats.max_stack_depth = max(stats.max_stack_depth, len(stacks[w]))
                batch = frame.candidates[: self.warp_width]
                del frame.candidates[: len(batch)]
                stats.lane_slots += self.warp_width
                stats.lanes_busy += len(batch)
                step = len(frame.partial)
                for x in batch:
                    partial = frame.partial + (x,)
                    if step + 1 == n:
                        stats.embeddings += 1
                    else:
                        cands = self._candidates(partial, step + 1)
                        if cands:
                            stacks[w].append(
                                _Frame(partial=partial, candidates=cands)
                            )
                if not frame.candidates and frame in stacks[w]:
                    stacks[w].remove(frame)
        return stats

    def _steal_into(self, w: int, stacks: List[List[_Frame]], stats: WarpStats) -> None:
        """Split the bottom frame of the most loaded warp (task splitting)."""
        victim = max(
            range(self.num_warps),
            key=lambda k: sum(len(f.candidates) for f in stacks[k]),
        )
        if victim == w:
            return
        for frame in stacks[victim]:
            if len(frame.candidates) >= 2:
                half = len(frame.candidates) // 2
                stolen = frame.candidates[half:]
                del frame.candidates[half:]
                stacks[w].append(_Frame(partial=frame.partial, candidates=stolen))
                stats.steals += 1
                return


def warp_match(
    graph: Graph,
    pattern: PatternGraph,
    order: Optional[Sequence[int]] = None,
    num_warps: int = 8,
    warp_width: int = 32,
    steal: bool = True,
) -> WarpStats:
    """Run the warp simulator once; returns its stats (incl. count)."""
    return WarpSimulator(
        graph, pattern, order=order, num_warps=num_warps,
        warp_width=warp_width, steal=steal,
    ).run()
