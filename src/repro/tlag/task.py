"""The task abstraction of think-like-a-task (TLAG) systems.

G-thinker [53, 54], G-Miner [7] and Fractal [10] replace the
vertex-centric model with *tasks*: a task owns a partial subgraph plus
whatever state it needs to grow it (candidate sets, frontier, bounds),
and tasks are the unit of scheduling, splitting and stealing.

:class:`Task` is deliberately minimal — engines never look inside
``state``; only the user's :class:`TaskProgram` does.  The
:class:`TaskContext` given to ``process`` provides:

* ``emit(result)`` — report a found subgraph (or count);
* ``fork(task)`` — enqueue a child task instead of recursing (the
  splitting mechanism);
* ``charge(n)`` — account ``n`` units of work (the simulated-time
  currency used for load-balance measurements);
* ``over_budget()`` — True once the task has used more than the
  engine's per-task budget, signalling the program to stop recursing
  and fork its remaining branches (G-thinker's timeout-based task
  decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..graph.csr import Graph

__all__ = ["Task", "TaskContext", "TaskProgram"]


@dataclass
class Task:
    """A unit of subgraph-centric work.

    ``subgraph`` is the partial embedding (a tuple of data-graph vertex
    ids, in extension order); ``state`` is program-defined (candidate
    sets, remaining depth, bounds...).
    """

    subgraph: Tuple[int, ...]
    state: Any = None

    @property
    def size(self) -> int:
        return len(self.subgraph)


class TaskContext:
    """Execution context handed to :meth:`TaskProgram.process`."""

    def __init__(self, graph: Graph, budget: Optional[int] = None) -> None:
        self.graph = graph
        self.budget = budget
        self.ops = 0
        self.results: List[Any] = []
        self.forked: List[Task] = []
        self.result_count = 0
        self.collect_results = True

    def charge(self, n: int = 1) -> None:
        """Account ``n`` units of work against this task."""
        self.ops += n

    def over_budget(self) -> bool:
        """Has this task exceeded the engine's per-task budget?

        Programs that honour this (by forking their remaining branches)
        get G-thinker-style timeout decomposition; programs that ignore
        it simply run tasks to completion.
        """
        return self.budget is not None and self.ops > self.budget

    def emit(self, result: Any) -> None:
        """Report one found result (subgraph, count contribution, ...)."""
        self.result_count += 1
        if self.collect_results:
            self.results.append(result)

    def fork(self, task: Task) -> None:
        """Enqueue a child task for later (possibly remote) execution."""
        self.forked.append(task)


class TaskProgram:
    """User-defined subgraph-centric computation.

    Implement :meth:`spawn` to seed the initial tasks (typically one per
    data-graph vertex, mirroring G-thinker's vertex-spawned tasks) and
    :meth:`process` to run one task — recursing internally (DFS) and/or
    forking children via ``ctx.fork``.
    """

    def spawn(self, graph: Graph):
        """Yield the initial tasks."""
        raise NotImplementedError

    def process(self, task: Task, ctx: TaskContext) -> None:
        """Execute one task against the data graph."""
        raise NotImplementedError
