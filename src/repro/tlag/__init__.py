"""Think-like-a-graph/task (TLAG) engines for subgraph search."""

from .aimd import AimdStats, DeviceOverflow, aimd_enumerate
from .distributed import CacheStats, DistributedTaskEngine, VertexCache
from .bfs_engine import BfsExplorer, bfs_enumerate_cliques, bfs_enumerate_connected
from .engine import EngineStats, TaskEngine
from .hybrid import HybridStats, hybrid_match
from .programs import (
    ConnectedSubgraphProgram,
    KCliqueProgram,
    MatchProgram,
    MaximalCliqueProgram,
    TriangleProgram,
)
from .query import Query, QueryResult, QueryServer
from .task import Task, TaskContext, TaskProgram
from .warp import WarpSimulator, WarpStats, warp_match

__all__ = [
    "Task",
    "TaskContext",
    "TaskProgram",
    "TaskEngine",
    "EngineStats",
    "MaximalCliqueProgram",
    "KCliqueProgram",
    "ConnectedSubgraphProgram",
    "MatchProgram",
    "TriangleProgram",
    "BfsExplorer",
    "bfs_enumerate_cliques",
    "bfs_enumerate_connected",
    "AimdStats",
    "DeviceOverflow",
    "aimd_enumerate",
    "HybridStats",
    "hybrid_match",
    "WarpSimulator",
    "WarpStats",
    "warp_match",
    "Query",
    "QueryResult",
    "QueryServer",
    "DistributedTaskEngine",
    "VertexCache",
    "CacheStats",
]
