"""Differential checks for the TLAG task engine.

``num_workers=1, task_budget=None`` degenerates the engine to a plain
serial DFS, which is the reference; multi-worker runs (with stealing
and budget-triggered splitting) and explicit chunking may reorder the
result stream but never change the result *set* — the declared relation
is permutation equality, with the count cross-checked against the
independent ``repro.matching`` triangle counter.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..check.invariants import same_multiset, same_values
from ..check.registry import PERMUTATION, pair
from ..check.workloads import gen_graph_params, make_graph
from ..matching.triangles import triangle_count
from .engine import TaskEngine
from .programs import TriangleProgram


def _gen_workers(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["num_workers"] = int(rng.integers(2, 7))
    params["task_budget"] = int(rng.integers(4, 64))
    return params


@pair(
    "tlag.triangles.workers_vs_serial", "tlag", PERMUTATION,
    gen=_gen_workers,
    floors={"n": 4, "num_workers": 2, "task_budget": 4},
    description="Work stealing and budget splits reorder task "
    "execution; the enumerated triangle set must be a permutation of "
    "the serial DFS's, and its size must match the matching-subsystem "
    "count.",
)
def _check_workers(params: Dict) -> List[str]:
    graph = make_graph(params)
    serial = TaskEngine(graph, TriangleProgram(), num_workers=1).run()
    multi = TaskEngine(
        graph,
        TriangleProgram(),
        num_workers=int(params["num_workers"]),
        task_budget=int(params["task_budget"]),
    ).run()
    out = same_multiset(serial, multi, "triangles")
    out += same_values(len(serial), triangle_count(graph), "count")
    return out


def _gen_chunked(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["num_workers"] = int(rng.integers(2, 5))
    params["chunk_size"] = int(rng.integers(1, 9))
    return params


@pair(
    "tlag.triangles.chunked_vs_default", "tlag", PERMUTATION,
    gen=_gen_chunked,
    floors={"n": 4, "num_workers": 2, "chunk_size": 1},
    description="Root-chunked task spawning is a scheduling choice: "
    "any chunk_size yields a permutation of the default spawn order's "
    "results.",
)
def _check_chunked(params: Dict) -> List[str]:
    graph = make_graph(params)
    workers = int(params["num_workers"])
    default = TaskEngine(graph, TriangleProgram(), num_workers=workers).run()
    chunked = TaskEngine(
        graph,
        TriangleProgram(),
        num_workers=workers,
        chunk_size=int(params["chunk_size"]),
    ).run()
    return same_multiset(default, chunked, "triangles")
