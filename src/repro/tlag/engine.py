"""The TLAG task engine: DFS tasks, work stealing, task splitting.

This is the G-thinker [53, 54] execution model in simulation:

* every worker owns a deque of tasks; local execution pops from the back
  (LIFO ⇒ depth-first, bounded memory);
* an idle worker **steals** from the front of the most loaded worker's
  deque (FIFO end ⇒ the shallowest, largest tasks move, amortizing the
  steal);
* a task that exceeds the per-task budget stops recursing and *forks*
  its remaining branches as new tasks (timeout-based task splitting),
  which is what makes stealing effective on skewed inputs.

Time is simulated: each worker has a clock advanced by the ops its tasks
charge, and the engine always schedules the worker with the smallest
clock next.  ``EngineStats`` then reports makespan (max clock), total
work, per-worker busy time, steals and splits — exactly the load-balance
quantities the G-thinker/STMatch papers plot.

All counters live in a :class:`~repro.obs.MetricsRegistry` under the
``tlag.*`` namespace; ``EngineStats`` is a read view over it, so the
legacy attribute surface (``stats.steals`` etc.) is unchanged while the
same numbers appear in any shared registry snapshot.

Setting ``num_workers=1`` and ``task_budget=None`` degenerates to a
plain serial DFS solver, which tests use as the reference.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Dict, List, Optional

from ..graph.csr import Graph
from ..graph.store.handle import as_handle, resolve_graph_argument
from ..obs import MetricsRegistry, StatsViewMixin, Tracer
from ..parallel.chunking import chunk_list
from ..resilience import FaultInjector, SnapshotStore
from .task import Task, TaskContext, TaskProgram

__all__ = ["TaskEngine", "EngineStats"]

SNAPSHOT_TAG = "tlag"


class EngineStats(StatsViewMixin):
    """Observability surface of a :class:`TaskEngine` run.

    A view over ``tlag.*`` metrics in ``registry``; the engine writes
    through the ``record_*`` methods and readers see plain attributes.
    """

    def __init__(
        self,
        num_workers: int,
        registry: Optional[MetricsRegistry] = None,
        worker_busy: Optional[List[int]] = None,
    ) -> None:
        self.num_workers = num_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_tasks = self.registry.counter(
            "tlag.tasks_executed", "tasks popped and processed"
        )
        self._c_forked = self.registry.counter(
            "tlag.tasks_forked", "tasks created by budget-triggered splits"
        )
        self._c_steals = self.registry.counter(
            "tlag.steals", "tasks stolen from another worker's deque"
        )
        self._c_ops = self.registry.counter(
            "tlag.total_ops", "simulated operations charged by tasks"
        )
        self._g_busy = self.registry.gauge(
            "tlag.worker_busy", "per-worker simulated clock (busy time)"
        )
        self._g_peak = self.registry.gauge(
            "tlag.peak_pending_tasks", "peak queued tasks across all workers"
        )
        self._h_task_ops = self.registry.histogram(
            "tlag.task_ops", "ops charged per task"
        )
        for w, busy in enumerate(worker_busy or []):
            self._g_busy.set(busy, worker=w)

    # -- write path (engine-only) ------------------------------------------

    def record_task(self, worker: int, ops: int, forked: int, clock: int) -> None:
        self._c_tasks.inc()
        self._c_ops.inc(ops)
        if forked:
            self._c_forked.inc(forked)
        self._g_busy.set(clock, worker=worker)
        self._h_task_ops.observe(ops)

    def record_steal(self) -> None:
        self._c_steals.inc()

    def record_pending(self, pending: int) -> None:
        self._g_peak.set_max(pending)

    # -- legacy attribute surface ------------------------------------------

    @property
    def tasks_executed(self) -> int:
        return int(self._c_tasks.total)

    @property
    def tasks_forked(self) -> int:
        return int(self._c_forked.total)

    @property
    def steals(self) -> int:
        return int(self._c_steals.total)

    @property
    def total_ops(self) -> int:
        return int(self._c_ops.total)

    @property
    def peak_pending_tasks(self) -> int:
        return int(self._g_peak.value())

    @property
    def worker_busy(self) -> List[int]:
        by_worker = {
            int(dict(key)["worker"]): int(v)
            for key, v in self._g_busy.values().items()
        }
        return [by_worker.get(w, 0) for w in range(self.num_workers)]

    @property
    def makespan(self) -> int:
        """Simulated finish time: the busiest worker's clock."""
        busy = self.worker_busy
        return max(busy) if busy else 0

    @property
    def balance(self) -> float:
        """Makespan over ideal (total/num_workers); 1.0 is perfect."""
        if not self.worker_busy or self.total_ops == 0:
            return 1.0
        ideal = self.total_ops / self.num_workers
        return self.makespan / ideal if ideal else 1.0

    # -- StatsView ----------------------------------------------------------

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "num_workers": self.num_workers,
            "tasks_executed": self.tasks_executed,
            "tasks_forked": self.tasks_forked,
            "steals": self.steals,
            "total_ops": self.total_ops,
            "worker_busy": self.worker_busy,
            "peak_pending_tasks": self.peak_pending_tasks,
            "makespan": self.makespan,
            "balance": self.balance,
        }

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Combine runs: counters add, peaks/busy take per-worker max."""
        self.num_workers = max(self.num_workers, other.num_workers)
        for metric in (
            self._c_tasks, self._c_forked, self._c_steals, self._c_ops,
            self._g_busy, self._g_peak, self._h_task_ops,
        ):
            metric.merge(other.registry.get(metric.name))
        return self


class TaskEngine:
    """Simulated multi-worker executor for :class:`TaskProgram`.

    Parameters
    ----------
    graph:
        Data graph shared by all workers (read-only).
    program:
        The subgraph-centric program.
    num_workers:
        Simulated worker count.
    task_budget:
        Per-task ops budget; programs that honour ``ctx.over_budget()``
        fork their remaining work once past it.  ``None`` disables
        splitting.
    steal:
        Enable work stealing (disable to measure the imbalance it fixes).
    collect_results:
        Keep emitted results (disable for counting-only runs to avoid
        materialization — the G-thinker "no instance materialization"
        property).
    chunk_size:
        Unit of the initial task deal: contiguous chunks of this many
        spawned tasks go to workers round-robin (``None`` keeps the
        task-at-a-time deal).  This is the *same* chunking policy
        (:mod:`repro.parallel.chunking`) the multicore executor uses, so
        bench C4 and the real backend share one knob: bigger chunks mean
        cheaper scheduling but coarser stealing granularity.
    obs:
        Optional shared :class:`~repro.obs.MetricsRegistry`; the engine
        emits its ``tlag.*`` counters there (it creates a private one
        when omitted).
    tracer:
        Optional :class:`~repro.obs.Tracer`; :meth:`run` is recorded as
        a ``tlag.run`` span whose simulated clock is the makespan.
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; its
        ``fail_task`` faults crash the engine just before the n-th task
        executes, losing every queue back to the last checkpoint.
    snapshots:
        Optional shared :class:`~repro.resilience.SnapshotStore` for the
        ``tlag``-tagged checkpoints (pending task queues + worker
        clocks + results so far).  A private one is created when an
        injector or cadence is given without a store.
    checkpoint_every:
        Tasks between checkpoints (``None`` keeps only the pre-run
        snapshot, i.e. recovery restarts the deal).
    """

    def __init__(
        self,
        graph_or_handle=None,
        program: Optional[TaskProgram] = None,
        num_workers: int = 4,
        task_budget: Optional[int] = None,
        steal: bool = True,
        collect_results: bool = True,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        chunk_size: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        snapshots: Optional[SnapshotStore] = None,
        checkpoint_every: Optional[int] = None,
        *,
        graph: Optional[Graph] = None,
    ) -> None:
        if program is None:
            raise TypeError("TaskEngine() missing required 'program' argument")
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.graph = as_handle(
            resolve_graph_argument("TaskEngine", graph_or_handle, graph)
        )
        self.program = program
        self.num_workers = num_workers
        self.task_budget = task_budget
        self.steal = steal
        self.chunk_size = chunk_size
        self.collect_results = collect_results
        self.results: List[Any] = []
        self.result_count = 0
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.injector = injector
        self.checkpoint_every = checkpoint_every
        resilient = injector is not None or checkpoint_every is not None
        if snapshots is None and resilient:
            snapshots = SnapshotStore(obs=self.obs)
        self.snapshots = snapshots
        self.stats = EngineStats(
            num_workers, registry=self.obs, worker_busy=[0] * num_workers
        )

    def run(self) -> List[Any]:
        """Execute to completion; returns collected results."""
        span = (
            self.tracer.span("tlag.run", workers=self.num_workers)
            if self.tracer is not None
            else None
        )
        try:
            return self._run()
        finally:
            if span is not None:
                span.set_sim(0, self.stats.makespan)
                span.set("tasks", self.stats.tasks_executed)
                span.__exit__(None, None, None)

    def _run(self) -> List[Any]:
        queues: List[deque] = [deque() for _ in range(self.num_workers)]
        if self.chunk_size is None:
            for i, task in enumerate(self.program.spawn(self.graph)):
                queues[i % self.num_workers].append(task)
        else:
            spawned = list(self.program.spawn(self.graph))
            for i, chunk in enumerate(chunk_list(spawned, self.chunk_size)):
                queues[i % self.num_workers].extend(chunk)

        # Event-driven simulation: always advance the worker whose clock
        # is smallest (ties by id for determinism).
        clocks = [0] * self.num_workers
        heap = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(heap)
        executed = 0  # monotonic task index, the fail_task coordinate
        if self.snapshots is not None:
            self._checkpoint(queues, clocks, heap, executed)

        while heap:
            clock, w = heapq.heappop(heap)
            task = self._next_task(w, queues)
            if task is None:
                continue  # worker retires (re-queued below if work appears)
            if self.injector is not None and self.injector.take_task_failure(
                executed
            ):
                # Crash: every deque, clock and partial result is volatile;
                # fall back to the last checkpoint and re-execute from there.
                queues, clocks, heap, executed = self._recover(executed)
                continue
            ctx = TaskContext(self.graph, budget=self.task_budget)
            ctx.collect_results = self.collect_results
            self.program.process(task, ctx)
            clocks[w] = clock + max(ctx.ops, 1)
            self.stats.record_task(w, ctx.ops, len(ctx.forked), clocks[w])
            self.result_count += ctx.result_count
            if self.collect_results:
                self.results.extend(ctx.results)
            for child in ctx.forked:
                queues[w].append(child)
            pending = sum(len(q) for q in queues)
            self.stats.record_pending(pending)
            heapq.heappush(heap, (clocks[w], w))
            # Wake any retired workers if there is now surplus work.
            in_heap = {entry[1] for entry in heap}
            if self.steal:
                for other in range(self.num_workers):
                    if other not in in_heap and pending > 0:
                        heapq.heappush(heap, (max(clocks[other], clock), other))
                        in_heap.add(other)
            executed += 1
            if (
                self.snapshots is not None
                and self.checkpoint_every is not None
                and executed % self.checkpoint_every == 0
            ):
                self._checkpoint(queues, clocks, heap, executed)
        return self.results

    # -- checkpoint/restore (unified Snapshot protocol, tag "tlag") ---------

    def _checkpoint(
        self,
        queues: List[deque],
        clocks: List[int],
        heap: List[Any],
        executed: int,
    ) -> None:
        assert self.snapshots is not None
        state = {
            "queues": queues,
            "clocks": clocks,
            "heap": heap,
            "executed": executed,
            "results": self.results,
            "result_count": self.result_count,
        }
        self.snapshots.save(SNAPSHOT_TAG, executed, state)

    def _recover(self, executed: int) -> Any:
        assert self.snapshots is not None
        state = self.snapshots.restore_latest(SNAPSHOT_TAG)
        replayed = executed - state["executed"]
        if self.tracer is not None:
            with self.tracer.span(
                "resilience.recover",
                engine="tlag",
                task=executed,
                replayed=replayed,
            ):
                pass
        self.results = state["results"]
        self.result_count = state["result_count"]
        heap = state["heap"]
        heapq.heapify(heap)
        return state["queues"], state["clocks"], heap, state["executed"]

    def _next_task(self, w: int, queues: List[deque]) -> Optional[Task]:
        """Pop local LIFO work, or steal FIFO from the most loaded worker."""
        if queues[w]:
            return queues[w].pop()
        if not self.steal:
            return None
        victim = max(range(self.num_workers), key=lambda k: len(queues[k]))
        if queues[victim]:
            self.stats.record_steal()
            return queues[victim].popleft()
        return None
