"""The TLAG task engine: DFS tasks, work stealing, task splitting.

This is the G-thinker [53, 54] execution model in simulation:

* every worker owns a deque of tasks; local execution pops from the back
  (LIFO ⇒ depth-first, bounded memory);
* an idle worker **steals** from the front of the most loaded worker's
  deque (FIFO end ⇒ the shallowest, largest tasks move, amortizing the
  steal);
* a task that exceeds the per-task budget stops recursing and *forks*
  its remaining branches as new tasks (timeout-based task splitting),
  which is what makes stealing effective on skewed inputs.

Time is simulated: each worker has a clock advanced by the ops its tasks
charge, and the engine always schedules the worker with the smallest
clock next.  ``EngineStats`` then reports makespan (max clock), total
work, per-worker busy time, steals and splits — exactly the load-balance
quantities the G-thinker/STMatch papers plot.

Setting ``num_workers=1`` and ``task_budget=None`` degenerates to a
plain serial DFS solver, which tests use as the reference.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..graph.csr import Graph
from .task import Task, TaskContext, TaskProgram

__all__ = ["TaskEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Observability surface of a :class:`TaskEngine` run."""

    num_workers: int
    tasks_executed: int = 0
    tasks_forked: int = 0
    steals: int = 0
    total_ops: int = 0
    worker_busy: List[int] = field(default_factory=list)
    peak_pending_tasks: int = 0

    @property
    def makespan(self) -> int:
        """Simulated finish time: the busiest worker's clock."""
        return max(self.worker_busy) if self.worker_busy else 0

    @property
    def balance(self) -> float:
        """Makespan over ideal (total/num_workers); 1.0 is perfect."""
        if not self.worker_busy or self.total_ops == 0:
            return 1.0
        ideal = self.total_ops / self.num_workers
        return self.makespan / ideal if ideal else 1.0


class TaskEngine:
    """Simulated multi-worker executor for :class:`TaskProgram`.

    Parameters
    ----------
    graph:
        Data graph shared by all workers (read-only).
    program:
        The subgraph-centric program.
    num_workers:
        Simulated worker count.
    task_budget:
        Per-task ops budget; programs that honour ``ctx.over_budget()``
        fork their remaining work once past it.  ``None`` disables
        splitting.
    steal:
        Enable work stealing (disable to measure the imbalance it fixes).
    collect_results:
        Keep emitted results (disable for counting-only runs to avoid
        materialization — the G-thinker "no instance materialization"
        property).
    """

    def __init__(
        self,
        graph: Graph,
        program: TaskProgram,
        num_workers: int = 4,
        task_budget: Optional[int] = None,
        steal: bool = True,
        collect_results: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.graph = graph
        self.program = program
        self.num_workers = num_workers
        self.task_budget = task_budget
        self.steal = steal
        self.collect_results = collect_results
        self.results: List[Any] = []
        self.result_count = 0
        self.stats = EngineStats(num_workers, worker_busy=[0] * num_workers)

    def run(self) -> List[Any]:
        """Execute to completion; returns collected results."""
        queues: List[deque] = [deque() for _ in range(self.num_workers)]
        for i, task in enumerate(self.program.spawn(self.graph)):
            queues[i % self.num_workers].append(task)

        # Event-driven simulation: always advance the worker whose clock
        # is smallest (ties by id for determinism).
        clocks = [0] * self.num_workers
        heap = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(heap)
        live = self.num_workers

        while heap:
            clock, w = heapq.heappop(heap)
            task = self._next_task(w, queues)
            if task is None:
                continue  # worker retires (re-queued below if work appears)
            ctx = TaskContext(self.graph, budget=self.task_budget)
            ctx.collect_results = self.collect_results
            self.program.process(task, ctx)
            self.stats.tasks_executed += 1
            self.stats.total_ops += ctx.ops
            self.stats.tasks_forked += len(ctx.forked)
            clocks[w] = clock + max(ctx.ops, 1)
            self.stats.worker_busy[w] = clocks[w]
            self.result_count += ctx.result_count
            if self.collect_results:
                self.results.extend(ctx.results)
            for child in ctx.forked:
                queues[w].append(child)
            pending = sum(len(q) for q in queues)
            self.stats.peak_pending_tasks = max(self.stats.peak_pending_tasks, pending)
            heapq.heappush(heap, (clocks[w], w))
            # Wake any retired workers if there is now surplus work.
            in_heap = {entry[1] for entry in heap}
            if self.steal:
                for other in range(self.num_workers):
                    if other not in in_heap and pending > 0:
                        heapq.heappush(heap, (max(clocks[other], clock), other))
                        in_heap.add(other)
        return self.results

    def _next_task(self, w: int, queues: List[deque]) -> Optional[Task]:
        """Pop local LIFO work, or steal FIFO from the most loaded worker."""
        if queues[w]:
            return queues[w].pop()
        if not self.steal:
            return None
        victim = max(range(self.num_workers), key=lambda k: len(queues[k]))
        if queues[victim]:
            self.stats.steals += 1
            return queues[victim].popleft()
        return None
