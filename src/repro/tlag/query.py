"""Interactive subgraph querying (the G-thinkerQ model).

G-thinker runs one offline job at a time; G-thinkerQ [63] extends the
task-based model to *online* querying, where users continually submit
subgraph queries and the system multiplexes all of their tasks over the
same workers.  The practical win is scheduling: a short query's tasks
interleave with a long-running query's tasks instead of waiting behind
them, so mean response time drops — the classic shared-server argument.

:class:`QueryServer` reproduces this: queries are compiled to anchored
matching tasks (one per candidate of the first order vertex, as in
:class:`~repro.tlag.programs.MatchProgram`), and the simulated workers
pick the next task from the *least-served* live query (fair sharing).
``serve()`` returns per-query results whose ``response_time`` is
``completion_time - arrival`` in simulated ops; ``run_sequentially()``
is the baseline that runs the same queries back to back.  Bench C15
compares the two.  The server reports through :mod:`repro.obs`
(``tlag.query.*`` counters/histograms and a ``tlag.query.serve`` span
via :class:`QueryServerStats`), and the multi-tenant front door in
:mod:`repro.serve` exposes this query model as its ``tlag`` endpoint
family.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..graph.csr import Graph
from ..matching.backtrack import MatchStats, match
from ..matching.pattern import PatternGraph, symmetry_breaking_restrictions
from ..matching.plan import GraphStats, Planner
from ..obs import MetricsRegistry, StatsViewMixin, Tracer

__all__ = ["Query", "QueryResult", "QueryServer", "QueryServerStats"]


@dataclass
class Query:
    """One subgraph query: a pattern plus an optional matching order."""

    pattern: PatternGraph
    order: Optional[Sequence[int]] = None
    arrival: int = 0  # simulated ops timestamp of submission


@dataclass
class QueryResult:
    """Outcome of one query."""

    query_id: int
    embeddings: int
    completion_time: int  # simulated ops clock when the last task finished
    work: int  # total ops spent on this query
    arrival: int = 0  # when the query was submitted

    @property
    def response_time(self) -> int:
        """What the user waited: completion minus submission time."""
        return self.completion_time - self.arrival


@dataclass
class _QueryState:
    query: Query
    tasks: List[int] = field(default_factory=list)  # pending anchor vertices
    work_done: int = 0
    embeddings: int = 0
    completed_at: int = 0


class QueryServerStats(StatsViewMixin):
    """Registry view over the ``tlag.query.*`` metrics one server emits."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_submitted = self.registry.counter(
            "tlag.query.submitted", "queries registered with the server"
        )
        self._c_completed = self.registry.counter(
            "tlag.query.completed", "queries fully answered, by mode"
        )
        self._c_tasks = self.registry.counter(
            "tlag.query.tasks", "anchored matching tasks executed"
        )
        self._c_work = self.registry.counter(
            "tlag.query.work_ops", "simulated ops spent matching"
        )
        self._h_response = self.registry.histogram(
            "tlag.query.response_ops",
            "per-query response time (completion - arrival), simulated ops",
        )

    def record_submit(self) -> None:
        self._c_submitted.inc()

    def record_task(self, ops: int) -> None:
        self._c_tasks.inc()
        self._c_work.inc(ops)

    def record_completion(self, result: "QueryResult", mode: str) -> None:
        self._c_completed.inc(mode=mode)
        self._h_response.observe(result.response_time, mode=mode)

    @property
    def submitted(self) -> int:
        return int(self._c_submitted.total)

    @property
    def completed(self) -> int:
        return int(self._c_completed.total)

    @property
    def tasks_executed(self) -> int:
        return int(self._c_tasks.total)

    @property
    def total_work(self) -> int:
        return int(self._c_work.total)

    def mean_response(self, mode: str) -> float:
        return self._h_response.mean(mode=mode)


class QueryServer:
    """Multiplexes concurrent subgraph queries over shared workers."""

    def __init__(
        self,
        graph: Graph,
        num_workers: int = 4,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.graph = graph
        self.num_workers = num_workers
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.stats = QueryServerStats(self.obs)
        self._planner = Planner(GraphStats.of(graph))
        self._queries: List[_QueryState] = []

    def submit(self, query: Query) -> int:
        """Register a query; returns its id."""
        if query.order is None:
            query.order = self._planner.plan(query.pattern).order
        self.stats.record_submit()
        state = _QueryState(query=query)
        first = query.order[0]
        want = query.pattern.label(first)
        for v in self.graph.vertices():
            if (
                self.graph.vertex_labels is None
                or self.graph.vertex_label(v) == want
            ):
                state.tasks.append(v)
        self._queries.append(state)
        return len(self._queries) - 1

    def _run_task(self, state: _QueryState, anchor: int) -> int:
        stats = MatchStats()
        restrictions = symmetry_breaking_restrictions(state.query.pattern)
        count = match(
            self.graph,
            state.query.pattern,
            order=state.query.order,
            restrictions=restrictions,
            stats=stats,
            anchor=(state.query.order[0], anchor),
        )
        state.embeddings += count
        ops = max(stats.candidates_scanned, 1)
        state.work_done += ops
        self.stats.record_task(ops)
        return ops

    def serve(self) -> List[QueryResult]:
        """Fair-shared execution of all submitted queries.

        Workers always take the next task of the live query with the
        least work done so far (max-min fairness), which is what lets
        short queries overtake long ones.
        """
        clocks = [0] * self.num_workers
        heap = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(heap)
        pending = {i for i, s in enumerate(self._queries) if s.tasks}
        for i, s in enumerate(self._queries):
            if not s.tasks:
                s.completed_at = 0
        while pending and heap:
            clock, w = heapq.heappop(heap)
            # Least-served live query whose arrival time has passed.
            eligible = [i for i in pending if self._queries[i].query.arrival <= clock]
            if not eligible:
                # Jump the worker's clock to the next arrival.
                next_arrival = min(
                    self._queries[i].query.arrival for i in pending
                )
                heapq.heappush(heap, (next_arrival, w))
                continue
            qid = min(eligible, key=lambda i: self._queries[i].work_done)
            state = self._queries[qid]
            anchor = state.tasks.pop()
            ops = self._run_task(state, anchor)
            clocks[w] = clock + ops
            if not state.tasks:
                state.completed_at = clocks[w]
                pending.discard(qid)
            heapq.heappush(heap, (clocks[w], w))
        return self._finalize("shared")

    def run_sequentially(self) -> List[QueryResult]:
        """Baseline: finish each query entirely before starting the next."""
        clock = 0
        for state in self._queries:
            clock = max(clock, state.query.arrival)
            per_worker = [0] * self.num_workers
            while state.tasks:
                w = per_worker.index(min(per_worker))
                anchor = state.tasks.pop()
                per_worker[w] += self._run_task(state, anchor)
            clock += max(per_worker) if per_worker else 0
            state.completed_at = clock
        return self._finalize("sequential")

    def _results(self) -> List[QueryResult]:
        return [
            QueryResult(
                query_id=i,
                embeddings=s.embeddings,
                completion_time=s.completed_at,
                work=s.work_done,
                arrival=s.query.arrival,
            )
            for i, s in enumerate(self._queries)
        ]

    def _finalize(self, mode: str) -> List[QueryResult]:
        results = self._results()
        for result in results:
            self.stats.record_completion(result, mode)
        if self.tracer is not None and results:
            with self.tracer.span(
                "tlag.query.serve", mode=mode, queries=len(results),
                workers=self.num_workers,
            ) as span:
                span.set_sim(0, max(r.completion_time for r in results))
        return results
