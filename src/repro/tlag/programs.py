"""Task programs: the TLAG workloads expressed for the task engine.

Each program mirrors how G-thinker applications are written: a task is
spawned per data vertex, grows its subgraph depth-first, and — when the
engine's per-task budget is exceeded — forks its remaining branches as
fresh tasks so stealing can balance them.

* :class:`MaximalCliqueProgram` — Bron–Kerbosch over vertex-spawned
  tasks (each task explores cliques whose minimum vertex is the spawn
  vertex, so no clique is found twice);
* :class:`KCliqueProgram` — k-clique listing over the degree-ordered
  orientation;
* :class:`MatchProgram` — subgraph matching: one task per candidate of
  the first order vertex, reusing the kernel of
  :mod:`repro.matching.backtrack`;
* :class:`TriangleProgram` — the task-engine formulation of triangle
  counting.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graph.csr import Graph
from ..matching.backtrack import match
from ..matching.pattern import PatternGraph, default_order, symmetry_breaking_restrictions
from .task import Task, TaskContext, TaskProgram

__all__ = [
    "ConnectedSubgraphProgram",
    "MaximalCliqueProgram",
    "KCliqueProgram",
    "MatchProgram",
    "TriangleProgram",
]


class MaximalCliqueProgram(TaskProgram):
    """Maximal clique enumeration as vertex-spawned tasks.

    The task for spawn vertex ``v`` explores the Bron–Kerbosch tree with
    ``R = {v}``, ``P = {higher neighbors of v}`` and
    ``X = {lower neighbors of v}``, which partitions the maximal cliques
    by their minimum member.  When the context goes over budget the
    program forks each unexplored branch as ``Task(subgraph=R+{u},
    state=(P', X'))`` — G-thinker's decomposition, verbatim.
    """

    def __init__(self, min_size: int = 1) -> None:
        self.min_size = min_size

    def spawn(self, graph: Graph) -> Iterator[Task]:
        for v in graph.vertices():
            higher = set(int(w) for w in graph.neighbors(v) if int(w) > v)
            lower = set(int(w) for w in graph.neighbors(v) if int(w) < v)
            yield Task(subgraph=(v,), state=(higher, lower))

    def process(self, task: Task, ctx: TaskContext) -> None:
        graph = ctx.graph
        adj = lambda u: set(int(w) for w in graph.neighbors(u))  # noqa: E731
        r = list(task.subgraph)
        p, x = task.state

        def expand(r: List[int], p: Set[int], x: Set[int]) -> None:
            ctx.charge()
            if not p and not x:
                if len(r) >= self.min_size:
                    ctx.emit(tuple(sorted(r)))
                return
            if ctx.over_budget() and len(p) > 1:
                # Fork remaining branches instead of recursing further.
                local_p, local_x = set(p), set(x)
                pivot = max(local_p | local_x, key=lambda u: len(adj(u) & local_p))
                for v in sorted(local_p - adj(pivot)):
                    a = adj(v)
                    ctx.fork(
                        Task(
                            subgraph=tuple(r + [v]),
                            state=(local_p & a, local_x & a),
                        )
                    )
                    local_p.remove(v)
                    local_x.add(v)
                return
            pivot = max(p | x, key=lambda u: len(adj(u) & p))
            for v in sorted(p - adj(pivot)):
                a = adj(v)
                expand(r + [v], p & a, x & a)
                p.remove(v)
                x.add(v)

        expand(r, set(p), set(x))


class KCliqueProgram(TaskProgram):
    """k-clique listing over the degree-ordered orientation."""

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.k = k
        self._out: Optional[List[Set[int]]] = None

    def _oriented(self, graph: Graph) -> List[Set[int]]:
        if self._out is None:
            oriented = graph.orient_by_degree()
            self._out = [
                set(int(w) for w in oriented.neighbors(v))
                for v in oriented.vertices()
            ]
        return self._out

    def spawn(self, graph: Graph) -> Iterator[Task]:
        out = self._oriented(graph)
        for v in graph.vertices():
            if out[v]:
                yield Task(subgraph=(v,), state=frozenset(out[v]))

    def process(self, task: Task, ctx: TaskContext) -> None:
        out = self._oriented(ctx.graph)

        def extend(clique: List[int], candidates: Set[int]) -> None:
            ctx.charge()
            if len(clique) == self.k:
                ctx.emit(tuple(sorted(clique)))
                return
            if ctx.over_budget() and len(candidates) > 1:
                for v in sorted(candidates):
                    ctx.fork(
                        Task(
                            subgraph=tuple(clique + [v]),
                            state=frozenset(candidates & out[v]),
                        )
                    )
                return
            for v in sorted(candidates):
                extend(clique + [v], candidates & out[v])

        extend(list(task.subgraph), set(task.state))


class MatchProgram(TaskProgram):
    """Subgraph matching: one task per candidate of the first order vertex.

    Tasks run the shared backtracking kernel anchored at their spawn
    vertex; results are embedding tuples (or just counts when the engine
    runs with ``collect_results=False``).
    """

    def __init__(
        self,
        pattern: PatternGraph,
        order: Optional[Sequence[int]] = None,
        restrictions: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        self.pattern = pattern
        self.order = list(order) if order is not None else default_order(pattern)
        self.restrictions = (
            list(restrictions)
            if restrictions is not None
            else symmetry_breaking_restrictions(pattern)
        )

    def spawn(self, graph: Graph) -> Iterator[Task]:
        first = self.order[0]
        want = self.pattern.label(first)
        for v in graph.vertices():
            if graph.vertex_labels is None or graph.vertex_label(v) == want:
                yield Task(subgraph=(v,), state=None)

    def process(self, task: Task, ctx: TaskContext) -> None:
        from ..matching.backtrack import MatchStats

        stats = MatchStats()
        match(
            ctx.graph,
            self.pattern,
            order=self.order,
            restrictions=self.restrictions,
            on_match=ctx.emit,
            stats=stats,
            anchor=(self.order[0], task.subgraph[0]),
        )
        ctx.charge(max(stats.candidates_scanned, 1))


class TriangleProgram(TaskProgram):
    """Triangle counting as per-vertex tasks over the oriented graph."""

    def __init__(self) -> None:
        self._out: Optional[List[np.ndarray]] = None

    def spawn(self, graph: Graph) -> Iterator[Task]:
        oriented = graph.orient_by_degree()
        self._out = [oriented.neighbors(v) for v in oriented.vertices()]
        for v in graph.vertices():
            if self._out[v].size >= 2:
                yield Task(subgraph=(v,))

    def process(self, task: Task, ctx: TaskContext) -> None:
        v = task.subgraph[0]
        out_v = self._out[v]
        for w in out_v:
            out_w = self._out[int(w)]
            i = j = 0
            while i < out_v.size and j < out_w.size:
                ctx.charge()
                a, b = out_v[i], out_w[j]
                if a == b:
                    ctx.emit((v, int(w), int(a)))
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1


class ConnectedSubgraphProgram(TaskProgram):
    """Enumerate connected k-vertex subgraph instances depth-first.

    The exact DFS counterpart of
    :func:`repro.tlag.bfs_engine.bfs_enumerate_connected`: both apply the
    same canonical-generation-order rule, so they produce identical
    instance sets — but this program holds only a recursion stack (plus
    forked tasks) instead of whole levels, which is the memory contrast
    bench C2 measures.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def spawn(self, graph: Graph) -> Iterator[Task]:
        for v in graph.vertices():
            yield Task(subgraph=(v,))

    def process(self, task: Task, ctx: TaskContext) -> None:
        from .bfs_engine import _canonical_generation

        graph = ctx.graph

        def extend(emb: Tuple[int, ...]) -> None:
            ctx.charge()
            if len(emb) == self.k:
                ctx.emit(emb)
                return
            members = set(emb)
            candidates: Set[int] = set()
            for u in emb:
                for w in graph.neighbors(u):
                    w = int(w)
                    if w not in members:
                        candidates.add(w)
            for w in sorted(candidates):
                new_emb = emb + (w,)
                if new_emb != _canonical_generation(new_emb, graph):
                    continue
                if ctx.over_budget():
                    ctx.fork(Task(subgraph=new_emb))
                else:
                    extend(new_emb)

        extend(task.subgraph)
