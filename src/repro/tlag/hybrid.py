"""EGSM-style BFS-DFS hybrid subgraph matching under a memory budget.

EGSM [36] observes that on GPUs the BFS expansion (materialize all
partial matches of the next query vertex) is the fast path — coalesced,
massively parallel — *while memory lasts*; when the partial-match table
would overflow device memory, it falls back to DFS for the remaining
query vertices, which needs only a stack.

:func:`hybrid_match` reproduces the policy: expand partial embeddings
level-synchronously while the next level fits in ``memory_budget``
(measured in resident partial embeddings), otherwise finish each pending
partial embedding by depth-first backtracking.  ``HybridStats`` records
where the switch happened and the peak residency, so bench C5 can plot
the budget sweep: large budgets → pure BFS; tiny budgets → switch at
level 1 (pure DFS); in between → hybrid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from ..matching.pattern import PatternGraph, default_order, symmetry_breaking_restrictions

__all__ = ["HybridStats", "hybrid_match"]


@dataclass
class HybridStats:
    """Trace of one hybrid run."""

    switch_level: Optional[int] = None  # None = never switched (pure BFS)
    peak_resident: int = 0
    bfs_levels: int = 0
    dfs_completions: int = 0
    embeddings: int = 0


def hybrid_match(
    graph: Graph,
    pattern: PatternGraph,
    memory_budget: int,
    order: Optional[Sequence[int]] = None,
    restrictions: Optional[Sequence[Tuple[int, int]]] = None,
) -> Tuple[int, HybridStats]:
    """Count embeddings of ``pattern`` with the BFS-DFS hybrid policy.

    Returns ``(count, stats)``.  The result is independent of the budget
    (tests sweep it); only the execution trace changes.
    """
    if order is None:
        order = default_order(pattern)
    order = list(order)
    if restrictions is None:
        restrictions = symmetry_breaking_restrictions(pattern)
    position_of = {pv: i for i, pv in enumerate(order)}
    n = pattern.n
    backward: List[List[int]] = [
        [position_of[q] for q in pattern.adj[pv] if position_of[q] < i]
        for i, pv in enumerate(order)
    ]
    lt_at: List[List[int]] = [[] for _ in range(n)]
    gt_at: List[List[int]] = [[] for _ in range(n)]
    for u, v in restrictions:
        iu, iv = position_of[u], position_of[v]
        if iu < iv:
            gt_at[iv].append(iu)
        else:
            lt_at[iu].append(iv)
    labels = graph.vertex_labels

    def step_candidates(partial: Tuple[int, ...], step: int) -> List[int]:
        pv = order[step]
        want = pattern.label(pv)
        back = backward[step]
        if not back:
            base = range(graph.num_vertices)
        else:
            lists = sorted(
                (graph.neighbors(partial[j]) for j in back), key=lambda a: a.size
            )
            first = lists[0]
            base = []
            for x in first:
                x = int(x)
                ok = True
                for other in lists[1:]:
                    kk = int(np.searchsorted(other, x))
                    if kk >= other.size or other[kk] != x:
                        ok = False
                        break
                if ok:
                    base.append(x)
        lo = max((partial[j] for j in gt_at[step]), default=-1)
        hi = min((partial[j] for j in lt_at[step]), default=graph.num_vertices)
        out = []
        for x in base:
            x = int(x)
            if x <= lo or x >= hi or x in partial:
                continue
            if labels is not None and int(labels[x]) != want:
                continue
            out.append(x)
        return out

    stats = HybridStats()
    frontier: List[Tuple[int, ...]] = [()]
    level = 0

    while level < n:
        # Estimate the next level's size by expanding; if it would blow
        # the budget we switch to DFS for all pending partials.
        next_frontier: List[Tuple[int, ...]] = []
        overflow = False
        for partial in frontier:
            extensions = step_candidates(partial, level)
            for x in extensions:
                next_frontier.append(partial + (x,))
                if len(next_frontier) + len(frontier) > memory_budget:
                    overflow = True
                    break
            if overflow:
                break
        if overflow:
            stats.switch_level = level
            break
        stats.bfs_levels += 1
        stats.peak_resident = max(
            stats.peak_resident, len(frontier) + len(next_frontier)
        )
        frontier = next_frontier
        level += 1

    if level == n:
        stats.embeddings = len(frontier)
        return stats.embeddings, stats

    # DFS fallback for the remaining query vertices.
    count = 0

    def dfs(partial: Tuple[int, ...], step: int) -> None:
        nonlocal count
        if step == n:
            count += 1
            return
        for x in step_candidates(partial, step):
            dfs(partial + (x,), step + 1)

    for partial in frontier:
        stats.dfs_completions += 1
        dfs(partial, level)
    stats.peak_resident = max(stats.peak_resident, len(frontier) + n)
    stats.embeddings = count
    return count, stats
