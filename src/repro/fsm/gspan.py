"""gSpan: frequent subgraph mining over transaction databases.

The pattern-growth core shared by PrefixFPM [56, 57] and the
transaction-database side of the tutorial's FSM discussion.  Patterns
are *DFS codes* — sequences of edge tuples ``(i, j, l_i, l_e, l_j)``
where ``i``/``j`` are discovery indices — grown one edge at a time along
the rightmost path, with the minimum-DFS-code canonicality test
guaranteeing each pattern is mined exactly once.

The implementation keeps full embedding lists per pattern (transaction
graphs are small molecules in our workloads), which makes the
projection explicit — the structure PrefixFPM parallelizes by handing
each frequent child pattern (with its projected database) to a task.

Key objects
-----------
* :class:`DFSCode` — hashable pattern identity, convertible to a
  labeled :class:`~repro.graph.csr.Graph`;
* :func:`is_min` — canonicality check (the pattern equals the minimum
  DFS code of the graph it denotes);
* :class:`GSpan` — the miner; ``run()`` returns
  :class:`FrequentPattern` records with supports and per-transaction
  embedding counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.csr import Graph, GraphBuilder
from ..graph.transactions import TransactionDatabase

__all__ = ["EdgeTuple", "DFSCode", "FrequentPattern", "GSpan", "is_min", "mine_frequent_subgraphs"]

# (i, j, label_i, label_edge, label_j); forward edge iff j == i's new index
EdgeTuple = Tuple[int, int, int, int, int]


class DFSCode(tuple):
    """A DFS code: an immutable sequence of :data:`EdgeTuple`."""

    def num_vertices(self) -> int:
        return max(max(t[0], t[1]) for t in self) + 1 if self else 0

    def rightmost_path(self) -> List[int]:
        """DFS indices from the rightmost vertex back to the root."""
        path: List[int] = []
        child = None
        for i, j, *_ in reversed(self):
            if i < j and (child is None or j == child):
                path.append(j)
                child = i
                if i == 0:
                    break
        path.append(0)
        return path  # rightmost vertex first, root (0) last

    def to_graph(self) -> Graph:
        """Reconstruct the labeled pattern graph this code denotes."""
        n = self.num_vertices()
        labels = [0] * n
        builder = GraphBuilder(directed=False)
        builder.add_vertex(n - 1)
        for i, j, li, le, lj in self:
            labels[i] = li
            labels[j] = lj
            builder.add_edge(i, j, label=le)
        return builder.build(num_vertices=n, vertex_labels=labels)


def _edge_key(t: EdgeTuple) -> tuple:
    """gSpan's extension order: backward before forward.

    Backward edges (j < i) sort by smaller destination ``j`` first;
    forward edges (i < j) sort by *deeper* source ``i`` first.  Label
    triples break ties.
    """
    i, j, li, le, lj = t
    if j < i:  # backward
        return (0, j, le, lj, 0)
    return (1, -i, li, le, lj)


@dataclass(frozen=True)
class _Embedding:
    """One embedding of a code in one transaction."""

    gid: int
    vmap: Tuple[int, ...]  # data vertex per DFS index
    edges: FrozenSet[Tuple[int, int]]  # normalized data edges used


@dataclass
class FrequentPattern:
    """A mined pattern with its support information."""

    code: DFSCode
    support: int
    graph_ids: FrozenSet[int]

    def to_graph(self) -> Graph:
        return self.code.to_graph()

    @property
    def num_edges(self) -> int:
        return len(self.code)


def _norm(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _extensions(
    code: DFSCode,
    embeddings: List[_Embedding],
    db: Dict[int, Graph],
) -> Dict[EdgeTuple, List[_Embedding]]:
    """All rightmost-path extensions of ``code`` over its embeddings."""
    rmpath = code.rightmost_path()
    rightmost = rmpath[0]
    n = code.num_vertices()
    out: Dict[EdgeTuple, List[_Embedding]] = {}

    for emb in embeddings:
        graph = db[emb.gid]
        mapped = set(emb.vmap)
        d_r = emb.vmap[rightmost]
        # Backward extensions: rightmost vertex -> earlier rmpath vertex.
        for idx in rmpath[1:]:
            d_j = emb.vmap[idx]
            if not graph.has_edge(d_r, d_j):
                continue
            if _norm(d_r, d_j) in emb.edges:
                continue
            elabel = (
                graph.edge_label(d_r, d_j) if graph.edge_labels is not None else 0
            )
            t: EdgeTuple = (
                rightmost,
                idx,
                graph.vertex_label(d_r),
                elabel,
                graph.vertex_label(d_j),
            )
            out.setdefault(t, []).append(
                _Embedding(
                    gid=emb.gid,
                    vmap=emb.vmap,
                    edges=emb.edges | {_norm(d_r, d_j)},
                )
            )
        # Forward extensions: from each rmpath vertex to a new data vertex.
        for idx in rmpath:
            d_i = emb.vmap[idx]
            for w in graph.neighbors(d_i):
                w = int(w)
                if w in mapped:
                    continue
                elabel = (
                    graph.edge_label(d_i, w) if graph.edge_labels is not None else 0
                )
                t = (
                    idx,
                    n,
                    graph.vertex_label(d_i),
                    elabel,
                    graph.vertex_label(w),
                )
                out.setdefault(t, []).append(
                    _Embedding(
                        gid=emb.gid,
                        vmap=emb.vmap + (w,),
                        edges=emb.edges | {_norm(d_i, w)},
                    )
                )
    return out


def is_min(code: DFSCode) -> bool:
    """Is ``code`` the minimum DFS code of the graph it denotes?

    Rebuilds the pattern graph and greedily constructs its minimum code
    by always taking the smallest extension; the moment the minimum
    diverges from ``code``, the answer is known.
    """
    if not code:
        return True
    if len(code) == 1:
        _, _, li, _, lj = code[0]
        return li <= lj  # the canonical orientation of a single edge
    graph = code.to_graph()
    db = {0: graph}
    # Minimum first tuple over all edges/orientations of the pattern.
    first_candidates: Dict[EdgeTuple, List[_Embedding]] = {}
    for u, v in graph.edges():
        elabel = graph.edge_label(u, v) if graph.edge_labels is not None else 0
        for a, b in ((u, v), (v, u)):
            t: EdgeTuple = (
                0,
                1,
                graph.vertex_label(a),
                elabel,
                graph.vertex_label(b),
            )
            first_candidates.setdefault(t, []).append(
                _Embedding(gid=0, vmap=(a, b), edges=frozenset({_norm(a, b)}))
            )
    tmin = min(first_candidates, key=lambda t: (t[2], t[3], t[4]))
    if tmin != code[0]:
        return False
    prefix = DFSCode((tmin,))
    embeddings = first_candidates[tmin]
    for k in range(1, len(code)):
        exts = _extensions(prefix, embeddings, db)
        if not exts:
            return False  # malformed code
        tmin = min(exts, key=_edge_key)
        if tmin != code[k]:
            return False
        embeddings = exts[tmin]
        prefix = DFSCode(prefix + (tmin,))
    return True


class GSpan:
    """The gSpan miner.

    Parameters
    ----------
    min_support:
        Minimum number of transactions a pattern must occur in.
    max_edges:
        Stop growing patterns beyond this many edges (``None`` = no cap).
    min_edges:
        Report only patterns with at least this many edges (smaller
        patterns are still grown through).
    """

    def __init__(
        self,
        min_support: int,
        max_edges: Optional[int] = None,
        min_edges: int = 1,
    ) -> None:
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        self.min_support = min_support
        self.max_edges = max_edges
        self.min_edges = min_edges
        self.patterns_pruned_not_min = 0
        self.patterns_pruned_infrequent = 0

    def run(self, db: TransactionDatabase) -> List[FrequentPattern]:
        """Mine all frequent subgraph patterns of ``db``."""
        graphs = {t.graph_id: t.graph for t in db}
        results: List[FrequentPattern] = []
        # Frequent 1-edge seeds.
        seeds: Dict[EdgeTuple, List[_Embedding]] = {}
        for gid, graph in graphs.items():
            for u, v in graph.edges():
                elabel = (
                    graph.edge_label(u, v) if graph.edge_labels is not None else 0
                )
                for a, b in ((u, v), (v, u)):
                    t: EdgeTuple = (
                        0,
                        1,
                        graph.vertex_label(a),
                        elabel,
                        graph.vertex_label(b),
                    )
                    seeds.setdefault(t, []).append(
                        _Embedding(
                            gid=gid, vmap=(a, b), edges=frozenset({_norm(a, b)})
                        )
                    )
        for t in sorted(seeds, key=lambda t: (t[2], t[3], t[4])):
            code = DFSCode((t,))
            if not is_min(code):
                continue  # keeps only the canonical orientation l_i <= l_j
            self._grow(code, seeds[t], graphs, results)
        return results

    def _grow(
        self,
        code: DFSCode,
        embeddings: List[_Embedding],
        graphs: Dict[int, Graph],
        results: List[FrequentPattern],
    ) -> None:
        gids = frozenset(e.gid for e in embeddings)
        if len(gids) < self.min_support:
            self.patterns_pruned_infrequent += 1
            return
        if len(code) >= self.min_edges:
            results.append(
                FrequentPattern(code=code, support=len(gids), graph_ids=gids)
            )
        if self.max_edges is not None and len(code) >= self.max_edges:
            return
        exts = _extensions(code, embeddings, graphs)
        for t in sorted(exts, key=_edge_key):
            child = DFSCode(code + (t,))
            if not is_min(child):
                self.patterns_pruned_not_min += 1
                continue
            self._grow(child, exts[t], graphs, results)


def mine_frequent_subgraphs(
    db: TransactionDatabase,
    min_support: int,
    max_edges: Optional[int] = None,
    min_edges: int = 1,
) -> List[FrequentPattern]:
    """Convenience wrapper around :class:`GSpan`."""
    return GSpan(min_support, max_edges=max_edges, min_edges=min_edges).run(db)
