"""PrefixFPM: a general-purpose parallel prefix-projection framework.

PrefixFPM [56, 57] observes that the pattern-growth miners for
*sequences* (PrefixSpan), *trees* and *graphs* (gSpan) all share one
recursion shape: a canonical pattern, its projected database, and a
children-generation rule.  The framework owns the task-parallel
execution — each ``(pattern, projected DB)`` pair is an independent
task, processed depth-first with work inherited by idle workers — and
users plug in the pattern semantics.

:class:`PrefixMiner` is that framework; :class:`SequencePatterns`
instantiates it as PrefixSpan for sequence databases, and
:class:`GraphPatterns` instantiates it over the gSpan machinery of
:mod:`repro.fsm.gspan` (sharing its DFS-code canonicality).  The
simulated-parallel runner reports makespan/balance the same way
:class:`~repro.tlag.engine.TaskEngine` does, because PrefixFPM *is* a
think-like-a-task system — that is the tutorial's point.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..graph.transactions import TransactionDatabase
from .gspan import DFSCode, FrequentPattern, _Embedding, _extensions, _edge_key, is_min

__all__ = [
    "PatternDomain",
    "PrefixMiner",
    "MinerStats",
    "SequencePatterns",
    "GraphPatterns",
]

P = TypeVar("P")  # pattern type
D = TypeVar("D")  # projected-database type


class PatternDomain(Generic[P, D]):
    """The pluggable pattern semantics of PrefixFPM."""

    def roots(self) -> Iterable[Tuple[P, D]]:
        """Initial (pattern, projected DB) pairs."""
        raise NotImplementedError

    def support(self, pattern: P, projected: D) -> int:
        """Support of ``pattern`` given its projection."""
        raise NotImplementedError

    def children(self, pattern: P, projected: D) -> Iterable[Tuple[P, D]]:
        """Canonical child patterns with their projections."""
        raise NotImplementedError

    def cost(self, pattern: P, projected: D) -> int:
        """Work estimate of processing this node (for the simulator)."""
        return 1


@dataclass
class MinerStats:
    """Load-balance counters of a parallel mining run."""

    num_workers: int
    tasks: int = 0
    total_ops: int = 0
    worker_busy: List[int] = field(default_factory=list)
    steals: int = 0

    @property
    def makespan(self) -> int:
        return max(self.worker_busy) if self.worker_busy else 0

    @property
    def balance(self) -> float:
        if not self.worker_busy or self.total_ops == 0:
            return 1.0
        ideal = self.total_ops / self.num_workers
        return self.makespan / ideal if ideal else 1.0


class PrefixMiner(Generic[P, D]):
    """Task-parallel depth-first pattern-growth executor."""

    def __init__(
        self,
        domain: PatternDomain[P, D],
        min_support: int,
        num_workers: int = 1,
    ) -> None:
        self.domain = domain
        self.min_support = min_support
        self.num_workers = num_workers
        self.stats = MinerStats(num_workers, worker_busy=[0] * num_workers)

    def run(self) -> List[Tuple[P, int]]:
        """Mine all frequent patterns; returns ``(pattern, support)`` pairs."""
        results: List[Tuple[P, int]] = []
        queues: List[deque] = [deque() for _ in range(self.num_workers)]
        for idx, root in enumerate(self.domain.roots()):
            queues[idx % self.num_workers].append(root)

        clocks = [0] * self.num_workers
        heap = [(0, w) for w in range(self.num_workers)]
        heapq.heapify(heap)
        while heap:
            clock, w = heapq.heappop(heap)
            item = self._take(w, queues)
            if item is None:
                continue
            pattern, projected = item
            support = self.domain.support(pattern, projected)
            cost = self.domain.cost(pattern, projected)
            self.stats.tasks += 1
            self.stats.total_ops += cost
            clocks[w] = clock + max(cost, 1)
            self.stats.worker_busy[w] = clocks[w]
            if support >= self.min_support:
                results.append((pattern, support))
                for child in self.domain.children(pattern, projected):
                    queues[w].append(child)
            heapq.heappush(heap, (clocks[w], w))
            in_heap = {entry[1] for entry in heap}
            if any(queues):
                for other in range(self.num_workers):
                    if other not in in_heap:
                        heapq.heappush(heap, (max(clocks[other], clock), other))
                        in_heap.add(other)
        return results

    def _take(self, w: int, queues: List[deque]):
        if queues[w]:
            return queues[w].pop()  # LIFO: depth-first
        victim = max(range(self.num_workers), key=lambda k: len(queues[k]))
        if queues[victim]:
            self.stats.steals += 1
            return queues[victim].popleft()  # steal shallow work
        return None


# ----------------------------------------------------------------------
# PrefixSpan: sequences
# ----------------------------------------------------------------------


class SequencePatterns(PatternDomain[Tuple[Any, ...], List[Tuple[int, int]]]):
    """PrefixSpan over a database of item sequences.

    A projection is a list of ``(sequence_index, offset)`` suffix
    pointers; a child extends the prefix by one item occurring in enough
    suffixes.
    """

    def __init__(self, sequences: Sequence[Sequence[Any]]) -> None:
        self.sequences = [tuple(s) for s in sequences]

    def roots(self):
        items: Dict[Any, List[Tuple[int, int]]] = {}
        for sid, seq in enumerate(self.sequences):
            seen: set = set()
            for pos, item in enumerate(seq):
                if item not in seen:
                    seen.add(item)
                    items.setdefault(item, []).append((sid, pos + 1))
        for item in sorted(items):
            yield (item,), items[item]

    def support(self, pattern, projected) -> int:
        return len({sid for sid, _ in projected})

    def children(self, pattern, projected):
        items: Dict[Any, List[Tuple[int, int]]] = {}
        for sid, offset in projected:
            seq = self.sequences[sid]
            seen: set = set()
            for pos in range(offset, len(seq)):
                item = seq[pos]
                if item not in seen:
                    seen.add(item)
                    items.setdefault(item, []).append((sid, pos + 1))
        for item in sorted(items):
            yield pattern + (item,), items[item]

    def cost(self, pattern, projected) -> int:
        return sum(len(self.sequences[sid]) - off + 1 for sid, off in projected)


# ----------------------------------------------------------------------
# gSpan plugged into the framework
# ----------------------------------------------------------------------


class GraphPatterns(PatternDomain[DFSCode, List["_Embedding"]]):
    """gSpan's pattern growth expressed as a PrefixFPM domain.

    Reuses the DFS-code machinery of :mod:`repro.fsm.gspan`; the
    projected database is the embedding list.  ``PrefixMiner`` with this
    domain returns exactly the patterns :class:`~repro.fsm.gspan.GSpan`
    returns (tests assert it), while distributing the pattern tree over
    workers.
    """

    def __init__(
        self, db: TransactionDatabase, max_edges: Optional[int] = None
    ) -> None:
        self.graphs = {t.graph_id: t.graph for t in db}
        self.max_edges = max_edges

    def roots(self):
        seeds: Dict[tuple, List[_Embedding]] = {}
        from .gspan import _norm

        for gid, graph in self.graphs.items():
            for u, v in graph.edges():
                elabel = (
                    graph.edge_label(u, v) if graph.edge_labels is not None else 0
                )
                for a, b in ((u, v), (v, u)):
                    t = (
                        0,
                        1,
                        graph.vertex_label(a),
                        elabel,
                        graph.vertex_label(b),
                    )
                    seeds.setdefault(t, []).append(
                        _Embedding(
                            gid=gid, vmap=(a, b), edges=frozenset({_norm(a, b)})
                        )
                    )
        for t in sorted(seeds, key=lambda t: (t[2], t[3], t[4])):
            code = DFSCode((t,))
            if is_min(code):
                yield code, seeds[t]

    def support(self, pattern: DFSCode, projected) -> int:
        return len({e.gid for e in projected})

    def children(self, pattern: DFSCode, projected):
        if self.max_edges is not None and len(pattern) >= self.max_edges:
            return
        exts = _extensions(pattern, projected, self.graphs)
        for t in sorted(exts, key=_edge_key):
            child = DFSCode(pattern + (t,))
            if is_min(child):
                yield child, exts[t]

    def cost(self, pattern: DFSCode, projected) -> int:
        return len(projected)
