"""Frequent subgraph mining: gSpan, PrefixFPM, and single-graph MNI mining."""

from .bfs_fsm import BfsFsmStats, bfs_mine_frequent_subgraphs
from .closed import closed_graph_patterns, closed_sequences, is_subpattern
from .gspan import DFSCode, FrequentPattern, GSpan, is_min, mine_frequent_subgraphs
from .prefixfpm import (
    GraphPatterns,
    MinerStats,
    PatternDomain,
    PrefixMiner,
    SequencePatterns,
)
from .single_graph import (
    MNIResult,
    SingleGraphFSM,
    SingleGraphPattern,
    mni_support,
    mni_support_parallel,
)

__all__ = [
    "DFSCode",
    "FrequentPattern",
    "GSpan",
    "is_min",
    "mine_frequent_subgraphs",
    "PatternDomain",
    "PrefixMiner",
    "MinerStats",
    "SequencePatterns",
    "GraphPatterns",
    "MNIResult",
    "mni_support",
    "mni_support_parallel",
    "SingleGraphFSM",
    "SingleGraphPattern",
    "closed_graph_patterns",
    "closed_sequences",
    "is_subpattern",
    "BfsFsmStats",
    "bfs_mine_frequent_subgraphs",
]
