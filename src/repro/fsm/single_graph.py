"""Frequent subgraph mining in a single big graph (GraMi / ScaleMine / T-FSM).

In a single graph, "how often does a pattern occur" cannot just count
embeddings (not anti-monotone); the standard measure is **MNI**
(minimum-image-based support): for each pattern vertex, count the
distinct data vertices that appear in that position across all
embeddings, and take the minimum.  MNI is anti-monotone, so pattern
growth with support pruning is sound.

The tutorial's systems differ in *how they evaluate* MNI:

* GraMi [11] solves one existence CSP per (pattern vertex, candidate
  data vertex) pair, with prunings; this module implements its three
  core prunings, individually toggleable for bench C6:

  - ``prune_nlf`` — neighborhood label/degree filtering of candidate
    domains before any search;
  - ``early_stop`` — stop filling a domain once it reaches
    ``min_support`` (only the minimum matters for the frequency test);
  - ``reuse_embeddings`` — every found embedding validates one data
    vertex in *every* domain, so successful searches are shared.

* T-FSM [65] decomposes each pattern's support evaluation into
  independent subgraph-matching **tasks** (one per candidate vertex)
  executed by a parallel backtracking pool.  :class:`SingleGraphFSM`
  reports per-task costs so the simulated-parallel wrapper
  (:func:`mni_support_parallel`) can account makespan over workers the
  way T-FSM's massively parallel executor does.

Pattern growth reuses the DFS-code canonicality machinery of
:mod:`repro.fsm.gspan` (grow by rightmost-path extension over a
*pattern-level* search, checking frequency via MNI in the single data
graph).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph.csr import Graph
from ..matching.backtrack import MatchStats, match
from ..matching.pattern import PatternGraph
from .gspan import DFSCode, _edge_key, is_min

__all__ = [
    "MNIResult",
    "mni_support",
    "mni_support_parallel",
    "SingleGraphFSM",
    "SingleGraphPattern",
]


@dataclass
class MNIResult:
    """Support evaluation outcome for one pattern."""

    support: int
    domains: List[Set[int]]
    existence_checks: int = 0
    search_ops: int = 0
    reused: int = 0

    @property
    def frequent_at(self) -> int:
        return self.support


def _candidate_domains(
    graph: Graph, pattern: PatternGraph, prune_nlf: bool
) -> List[List[int]]:
    """Initial candidate domain per pattern vertex (label + NLF filter)."""
    domains: List[List[int]] = []
    # Precompute data-side neighbor label multisets once if needed.
    if prune_nlf:
        label_of = (
            (lambda v: int(graph.vertex_labels[v]))
            if graph.vertex_labels is not None
            else (lambda v: 0)
        )
    for pv in range(pattern.n):
        want = pattern.label(pv)
        want_degree = pattern.degree(pv)
        # Pattern vertex's neighbor label requirements.
        if prune_nlf:
            need: Dict[int, int] = {}
            for q in pattern.adj[pv]:
                lbl = pattern.label(q)
                need[lbl] = need.get(lbl, 0) + 1
        domain: List[int] = []
        for v in range(graph.num_vertices):
            if graph.vertex_labels is not None and graph.vertex_label(v) != want:
                continue
            if prune_nlf:
                if graph.degree(v) < want_degree:
                    continue
                have: Dict[int, int] = {}
                for w in graph.neighbors(v):
                    lbl = label_of(int(w))
                    have[lbl] = have.get(lbl, 0) + 1
                if any(have.get(lbl, 0) < cnt for lbl, cnt in need.items()):
                    continue
            domain.append(v)
        domains.append(domain)
    return domains


def mni_support(
    graph: Graph,
    pattern: PatternGraph,
    min_support: Optional[int] = None,
    prune_nlf: bool = True,
    early_stop: bool = True,
    reuse_embeddings: bool = True,
) -> MNIResult:
    """MNI support of ``pattern`` in ``graph`` (GraMi-style evaluation).

    When ``min_support`` is given with ``early_stop``, evaluation stops
    as soon as the frequency decision is known: each domain stops
    growing at ``min_support`` valid vertices, and the whole evaluation
    aborts when some domain is exhausted below it.
    """
    candidates = _candidate_domains(graph, pattern, prune_nlf)
    valid: List[Set[int]] = [set() for _ in range(pattern.n)]
    result = MNIResult(support=0, domains=valid)
    target = min_support if (min_support is not None and early_stop) else None

    for pv in range(pattern.n):
        for v in candidates[pv]:
            if target is not None and len(valid[pv]) >= target:
                break
            if v in valid[pv]:
                result.reused += 1
                continue
            stats = MatchStats()
            found: List[Tuple[int, ...]] = []

            def first_embedding(emb: Tuple[int, ...]) -> None:
                found.append(emb)
                raise _FoundOne

            order = _order_starting_at(pattern, pv)
            try:
                match(
                    graph,
                    pattern,
                    order=order,
                    restrictions=[],  # existence, not distinct counting
                    on_match=first_embedding,
                    stats=stats,
                    anchor=(pv, v),
                )
            except _FoundOne:
                pass
            result.existence_checks += 1
            result.search_ops += stats.candidates_scanned
            if found:
                emb = found[0]
                if reuse_embeddings:
                    for q in range(pattern.n):
                        valid[q].add(emb[q])
                else:
                    valid[pv].add(emb[pv])
        if target is not None and len(valid[pv]) < target:
            # This domain can never reach min_support: pattern infrequent.
            result.support = len(valid[pv])
            return result
    result.support = min(len(d) for d in valid) if valid else 0
    return result


class _FoundOne(Exception):
    """Signal: one embedding suffices for an existence check."""


def _order_starting_at(pattern: PatternGraph, start: int) -> List[int]:
    """A connected matching order beginning at ``start``."""
    order = [start]
    seen = {start}
    while len(order) < pattern.n:
        for v in range(pattern.n):
            if v in seen:
                continue
            if any(q in seen for q in pattern.adj[v]):
                order.append(v)
                seen.add(v)
                break
    return order


def mni_support_parallel(
    graph: Graph,
    pattern: PatternGraph,
    num_workers: int = 4,
    min_support: Optional[int] = None,
) -> Tuple[MNIResult, int]:
    """T-FSM-style evaluation: one matching task per (vertex, candidate).

    Runs the same existence checks as :func:`mni_support` but accounts
    each check as an independent task scheduled over ``num_workers``
    simulated workers; returns ``(result, makespan)`` where makespan is
    in search-ops units.  Embedding reuse is disabled here because tasks
    are independent — the T-FSM trade: more total work, near-perfect
    scaling.
    """
    candidates = _candidate_domains(graph, pattern, prune_nlf=True)
    valid: List[Set[int]] = [set() for _ in range(pattern.n)]
    result = MNIResult(support=0, domains=valid)
    tasks: List[Tuple[int, int]] = [
        (pv, v) for pv in range(pattern.n) for v in candidates[pv]
    ]
    clocks = [0] * num_workers
    heap = [(0, w) for w in range(num_workers)]
    heapq.heapify(heap)
    idx = 0
    while idx < len(tasks):
        clock, w = heapq.heappop(heap)
        pv, v = tasks[idx]
        idx += 1
        stats = MatchStats()
        found: List[Tuple[int, ...]] = []

        def first_embedding(emb: Tuple[int, ...]) -> None:
            found.append(emb)
            raise _FoundOne

        try:
            match(
                graph,
                pattern,
                order=_order_starting_at(pattern, pv),
                restrictions=[],
                on_match=first_embedding,
                stats=stats,
                anchor=(pv, v),
            )
        except _FoundOne:
            pass
        result.existence_checks += 1
        result.search_ops += stats.candidates_scanned
        if found:
            valid[pv].add(v)
        clocks[w] = clock + max(stats.candidates_scanned, 1)
        heapq.heappush(heap, (clocks[w], w))
    result.support = min(len(d) for d in valid) if valid else 0
    return result, max(clocks)


@dataclass
class SingleGraphPattern:
    """A frequent pattern mined from a single graph."""

    code: DFSCode
    support: int

    def to_graph(self) -> Graph:
        return self.code.to_graph()

    def to_pattern(self) -> PatternGraph:
        return PatternGraph(self.code.to_graph())


class SingleGraphFSM:
    """Pattern-growth FSM over one big labeled graph with MNI support."""

    def __init__(
        self,
        min_support: int,
        max_edges: Optional[int] = None,
        prune_nlf: bool = True,
        early_stop: bool = True,
        reuse_embeddings: bool = True,
    ) -> None:
        self.min_support = min_support
        self.max_edges = max_edges
        self.prune_nlf = prune_nlf
        self.early_stop = early_stop
        self.reuse_embeddings = reuse_embeddings
        self.total_existence_checks = 0
        self.total_search_ops = 0
        self.patterns_evaluated = 0

    def run(self, graph: Graph) -> List[SingleGraphPattern]:
        """Mine all patterns with MNI support >= ``min_support``."""
        results: List[SingleGraphPattern] = []
        seeds = self._frequent_edges(graph)
        for code in seeds:
            self._grow(code, graph, results)
        return results

    def _frequent_edges(self, graph: Graph) -> List[DFSCode]:
        """Canonical 1-edge codes whose MNI support passes the threshold."""
        seen: Set[tuple] = set()
        out: List[DFSCode] = []
        for u, v in graph.edges():
            lu, lv = graph.vertex_label(u), graph.vertex_label(v)
            el = graph.edge_label(u, v) if graph.edge_labels is not None else 0
            key = (min(lu, lv), el, max(lu, lv))
            if key in seen:
                continue
            seen.add(key)
            out.append(DFSCode(((0, 1, key[0], key[1], key[2]),)))
        return sorted(out)

    def _evaluate(self, code: DFSCode, graph: Graph) -> int:
        pattern = PatternGraph(code.to_graph())
        res = mni_support(
            graph,
            pattern,
            min_support=self.min_support,
            prune_nlf=self.prune_nlf,
            early_stop=self.early_stop,
            reuse_embeddings=self.reuse_embeddings,
        )
        self.patterns_evaluated += 1
        self.total_existence_checks += res.existence_checks
        self.total_search_ops += res.search_ops
        return res.support

    def _grow(
        self, code: DFSCode, graph: Graph, results: List[SingleGraphPattern]
    ) -> None:
        support = self._evaluate(code, graph)
        if support < self.min_support:
            return
        results.append(SingleGraphPattern(code=code, support=support))
        if self.max_edges is not None and len(code) >= self.max_edges:
            return
        for child in self._children(code, graph):
            self._grow(child, graph, results)

    def _children(self, code: DFSCode, graph: Graph) -> List[DFSCode]:
        """Canonical rightmost-path extensions present in the data graph.

        Candidate labels come from the data graph's label/edge inventory;
        non-minimal codes are dropped (each pattern visited once).
        """
        vertex_labels = (
            sorted(set(int(l) for l in graph.vertex_labels))
            if graph.vertex_labels is not None
            else [0]
        )
        edge_labels = (
            sorted(set(int(l) for l in graph.edge_labels))
            if graph.edge_labels is not None
            else [0]
        )
        pattern_graph = code.to_graph()
        labels = [pattern_graph.vertex_label(v) for v in range(code.num_vertices())]
        rmpath = code.rightmost_path()
        rightmost = rmpath[0]
        n = code.num_vertices()
        children: List[DFSCode] = []
        candidates: Set[tuple] = set()
        # Backward: rightmost -> earlier rmpath vertex.
        existing = {(min(t[0], t[1]), max(t[0], t[1])) for t in code}
        for idx in rmpath[1:]:
            if (min(rightmost, idx), max(rightmost, idx)) in existing:
                continue
            for el in edge_labels:
                candidates.add((rightmost, idx, labels[rightmost], el, labels[idx]))
        # Forward: from any rmpath vertex to a new vertex with any label.
        for idx in rmpath:
            for el in edge_labels:
                for vl in vertex_labels:
                    candidates.add((idx, n, labels[idx], el, vl))
        for t in sorted(candidates, key=_edge_key):
            child = DFSCode(code + (t,))
            if is_min(child):
                children.append(child)
        return children
