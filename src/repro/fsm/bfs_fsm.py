"""Arabesque-style FSM: frequent subgraph mining by BFS extension.

Table 1 credits the BFS-extension systems (Arabesque, RStream,
Pangolin) with FSM support: they grow *all* embeddings level by level,
group each level's embeddings by canonical pattern, prune infrequent
patterns, and expand only the survivors' embeddings.  That is exactly
what this module does over a transaction database, reusing the DFS-code
canonicalization of :mod:`repro.fsm.gspan` for pattern identity:

* level k holds every embedding of every frequent k-edge pattern,
  materialized (the memory behaviour bench C2 measures — contrast the
  projection-passing gSpan, which holds one pattern's embeddings at a
  time);
* support = number of distinct transactions with >= 1 embedding;
* results are *identical* to gSpan's (tests assert pattern sets and
  supports match), making this a genuine cross-engine oracle pair.

:class:`BfsFsmStats` reports per-level materialization so the
Arabesque-vs-G-thinker trade is visible on the FSM workload too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.transactions import TransactionDatabase
from .gspan import DFSCode, FrequentPattern, _Embedding, _extensions, _norm, is_min

__all__ = ["BfsFsmStats", "bfs_mine_frequent_subgraphs"]


@dataclass
class BfsFsmStats:
    """Materialization trace of one BFS FSM run."""

    embeddings_per_level: List[int] = field(default_factory=list)
    patterns_per_level: List[int] = field(default_factory=list)

    @property
    def peak_embeddings(self) -> int:
        return max(self.embeddings_per_level, default=0)


def bfs_mine_frequent_subgraphs(
    db: TransactionDatabase,
    min_support: int,
    max_edges: Optional[int] = None,
) -> Tuple[List[FrequentPattern], BfsFsmStats]:
    """Level-synchronous FSM (the Arabesque computing model).

    Returns ``(patterns, stats)``; the pattern list matches
    :func:`repro.fsm.gspan.mine_frequent_subgraphs` exactly.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    graphs = {t.graph_id: t.graph for t in db}
    stats = BfsFsmStats()
    results: List[FrequentPattern] = []

    # Level 1: all single-edge embeddings grouped by canonical code.
    level: Dict[DFSCode, List[_Embedding]] = {}
    for gid, graph in graphs.items():
        for u, v in graph.edges():
            elabel = (
                graph.edge_label(u, v) if graph.edge_labels is not None else 0
            )
            for a, b in ((u, v), (v, u)):
                code = DFSCode(
                    ((0, 1, graph.vertex_label(a), elabel, graph.vertex_label(b)),)
                )
                if not is_min(code):
                    continue
                level.setdefault(code, []).append(
                    _Embedding(gid=gid, vmap=(a, b), edges=frozenset({_norm(a, b)}))
                )

    size = 1
    while level:
        # Frequency pruning at this level.
        frequent: Dict[DFSCode, List[_Embedding]] = {}
        for code, embeddings in level.items():
            gids = frozenset(e.gid for e in embeddings)
            if len(gids) >= min_support:
                frequent[code] = embeddings
                results.append(
                    FrequentPattern(code=code, support=len(gids), graph_ids=gids)
                )
        stats.embeddings_per_level.append(
            sum(len(e) for e in level.values())
        )
        stats.patterns_per_level.append(len(frequent))
        if not frequent or (max_edges is not None and size >= max_edges):
            break
        # Expand every frequent pattern's embeddings by one edge —
        # level-synchronously, which is the point.
        next_level: Dict[DFSCode, List[_Embedding]] = {}
        for code, embeddings in frequent.items():
            for t, children in _extensions(code, embeddings, graphs).items():
                child = DFSCode(code + (t,))
                if not is_min(child):
                    continue
                next_level.setdefault(child, []).extend(children)
        level = next_level
        size += 1
    results.sort(key=lambda p: tuple(p.code))
    return results, stats
