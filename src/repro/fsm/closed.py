"""Closed frequent pattern mining.

PrefixFPM's journal version [57] is explicitly "a parallel framework
for general-purpose mining of frequent **and closed** patterns": a
frequent pattern is *closed* when no super-pattern has the same
support, and reporting only closed patterns compresses the output
losslessly (every frequent pattern's support is recoverable from its
closed super-patterns).

* :func:`closed_graph_patterns` — filter gSpan output down to closed
  patterns (super-pattern test by subgraph isomorphism between the
  mined pattern graphs, restricted to equal-support candidates);
* :func:`closed_sequences` — the PrefixSpan analogue (CloSpan-style
  post-filter on subsequence containment);
* both verified against the definition by brute force in the tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..matching.backtrack import match
from ..matching.pattern import PatternGraph
from .gspan import FrequentPattern

__all__ = ["is_subpattern", "closed_graph_patterns", "closed_sequences"]


def is_subpattern(small: PatternGraph, big: PatternGraph) -> bool:
    """Is ``small`` (label-preserving) subgraph-isomorphic to ``big``?"""
    if small.n > big.n or small.num_edges > big.num_edges:
        return False
    found: List[int] = []

    class _Stop(Exception):
        pass

    def first(_e) -> None:
        found.append(1)
        raise _Stop

    try:
        match(big.graph, small, restrictions=[], on_match=first)
    except _Stop:
        pass
    return bool(found)


def closed_graph_patterns(
    patterns: Sequence[FrequentPattern],
) -> List[FrequentPattern]:
    """Keep only closed patterns from a gSpan result set.

    A pattern is closed iff no other mined pattern with the *same
    support* properly contains it.  Because support is anti-monotone,
    only equal-support pairs can witness non-closedness, and any
    super-pattern with equal support is itself frequent — so filtering
    within the mined set is exact (given the same ``max_edges`` bound
    used during mining; patterns at the bound are treated as closed
    relative to the mined universe).
    """
    graphs = [PatternGraph(p.to_graph()) for p in patterns]
    closed: List[FrequentPattern] = []
    for i, p in enumerate(patterns):
        dominated = False
        for j, q in enumerate(patterns):
            if i == j or q.support != p.support:
                continue
            if q.num_edges <= p.num_edges:
                continue
            if is_subpattern(graphs[i], graphs[j]):
                dominated = True
                break
        if not dominated:
            closed.append(p)
    return closed


def _is_subsequence(small: Tuple, big: Tuple) -> bool:
    iterator = iter(big)
    return all(any(x == item for item in iterator) for x in small)


def closed_sequences(
    mined: Sequence[Tuple[Tuple, int]],
) -> List[Tuple[Tuple, int]]:
    """CloSpan-style filter: drop subsequences with an equal-support
    proper super-sequence."""
    closed: List[Tuple[Tuple, int]] = []
    for pattern, support in mined:
        dominated = any(
            other != pattern
            and other_support == support
            and len(other) > len(pattern)
            and _is_subsequence(pattern, other)
            for other, other_support in mined
        )
        if not dominated:
            closed.append((pattern, support))
    return closed
