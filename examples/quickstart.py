"""Quickstart: one tour through every subsystem of the library.

Run with::

    python examples/quickstart.py

Covers: building a graph, vertex analytics on the TLAV engine, subgraph
search on the TLAG task engine, compiled pattern matching, FSM, and a
small GNN — the full pipeline of the tutorial's Figure 1 in miniature.
"""

import numpy as np

from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph
from repro.graph.generators import barabasi_albert, planted_partition
from repro.matching.codegen import compile_matcher, prepare_adjacency
from repro.matching.pattern import clique_pattern, triangle_pattern
from repro.matching.plan import GraphStats, Planner
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import MaximalCliqueProgram
from repro.tlav import pagerank, wcc


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a graph (any edge iterable works; generators ship too).
    # ------------------------------------------------------------------
    graph = barabasi_albert(2000, 4, seed=42)
    print(f"graph: {graph}")

    # ------------------------------------------------------------------
    # 2. Vertex analytics on the think-like-a-vertex engine.
    # ------------------------------------------------------------------
    scores = pagerank(graph, iterations=15)
    components = wcc(graph)
    top = int(np.argmax(scores))
    print(f"pagerank: top vertex {top} (score {scores[top]:.5f}), "
          f"{len(set(components.tolist()))} component(s)")

    # ------------------------------------------------------------------
    # 3. Subgraph search on the think-like-a-task engine:
    #    maximal cliques with task splitting + work stealing.
    # ------------------------------------------------------------------
    engine = TaskEngine(
        graph, MaximalCliqueProgram(min_size=4), num_workers=8,
        task_budget=200,
    )
    cliques = engine.run()
    print(f"maximal cliques (>=4): {len(cliques)}; "
          f"workers balanced to {engine.stats.balance:.2f}x ideal, "
          f"{engine.stats.steals} steals")

    # ------------------------------------------------------------------
    # 4. Compiled pattern counting (the AutoMine approach).
    # ------------------------------------------------------------------
    planner = Planner(GraphStats.of(graph))
    plan = planner.plan(triangle_pattern())
    counter = compile_matcher(triangle_pattern(), order=plan.order)
    adj, adjset = prepare_adjacency(graph)
    print(f"triangles (compiled matcher): {counter(adj, adjset, graph.num_vertices)}")
    k4 = compile_matcher(clique_pattern(4))
    print(f"4-cliques (compiled matcher): {k4(adj, adjset, graph.num_vertices)}")

    # ------------------------------------------------------------------
    # 5. A GNN on a graph with planted communities.
    # ------------------------------------------------------------------
    g2, labels = planted_partition(3, 40, p_in=0.12, p_out=0.008, seed=7)
    rng = np.random.default_rng(0)
    features = np.eye(3)[labels] + rng.normal(0, 1.0, size=(g2.num_vertices, 3))
    train_mask = np.zeros(g2.num_vertices, dtype=bool)
    train_mask[rng.permutation(g2.num_vertices)[:60]] = True
    model = NodeClassifier(3, 16, 3, layer="gcn", seed=0)
    report = train_full_graph(
        model, g2, features, labels, train_mask, ~train_mask,
        epochs=30, lr=0.05,
    )
    print(f"GCN on planted communities: val accuracy "
          f"{report.final_val_accuracy:.3f} "
          f"(loss {report.losses[0]:.3f} -> {report.losses[-1]:.3f})")


if __name__ == "__main__":
    main()
