"""Distributed GNN training with the Table-2 techniques, step by step.

Starts from a naive hash-partitioned synchronous trainer and layers on
the techniques the tutorial surveys, printing the traffic/quality trade
at each step:

    baseline -> METIS-like partitioning -> int4 halo quantization with
    error feedback -> bounded staleness -> delayed halo refresh.

Run with::

    python examples/distributed_gnn.py
"""

import numpy as np

from repro.gnn.distributed import DistributedTrainer
from repro.gnn.models import NodeClassifier
from repro.gnn.staleness import train_delayed_halo, train_stale_gradients
from repro.graph.generators import planted_partition
from repro.graph.partition import (
    edge_cut_fraction,
    hash_partition,
    metis_like_partition,
)


def main() -> None:
    graph, labels = planted_partition(4, 35, p_in=0.14, p_out=0.008, seed=17)
    n = graph.num_vertices
    rng = np.random.default_rng(2)
    features = np.eye(4)[labels] + rng.normal(0, 1.2, size=(n, 4))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    val_mask = ~train_mask
    print(f"task: {graph}, 4 workers, 2-layer GCN\n")

    def row(name, bytes_remote, accuracy):
        print(f"{name:<42} remote {bytes_remote:>12,} B   val acc {accuracy:.3f}")

    # Baseline: hash partition, exact halos, synchronous.
    p_hash = hash_partition(graph, 4)
    trainer = DistributedTrainer(
        NodeClassifier(4, 16, 4, seed=0), graph, p_hash, features, labels,
        lr=0.05,
    )
    rep = trainer.train(train_mask, val_mask, epochs=25)
    row(f"hash partition (cut {edge_cut_fraction(graph, p_hash):.2f})",
        trainer.remote_bytes, rep.final_val_accuracy)

    # Better placement (DistDGL / METIS).
    p_metis = metis_like_partition(graph, 4, seed=0)
    trainer = DistributedTrainer(
        NodeClassifier(4, 16, 4, seed=0), graph, p_metis, features, labels,
        lr=0.05,
    )
    rep = trainer.train(train_mask, val_mask, epochs=25)
    row(f"+ metis-like partition (cut {edge_cut_fraction(graph, p_metis):.2f})",
        trainer.remote_bytes, rep.final_val_accuracy)

    # Compressed halos (EC-Graph-style int4 with error feedback).
    trainer = DistributedTrainer(
        NodeClassifier(4, 16, 4, seed=0), graph, p_metis, features, labels,
        lr=0.05, halo_bits=4, error_feedback=True,
    )
    rep = trainer.train(train_mask, val_mask, epochs=25)
    row("+ int4 halo quantization + error feedback",
        trainer.remote_bytes, rep.final_val_accuracy)

    # Bounded staleness (Dorylus/P3-style async application).
    rep = train_stale_gradients(
        NodeClassifier(4, 16, 4, seed=0), graph, features, labels,
        train_mask, val_mask, staleness=2, epochs=40, lr=0.05,
    )
    print(f"{'+ bounded staleness s=2 (pipelined)':<42} "
          f"{'(same traffic, higher utilization)':>25}   "
          f"val acc {rep.final_val_accuracy:.3f}")

    # Delayed halo refresh (DistGNN cd-r).
    rep, exchanges, saved = train_delayed_halo(
        NodeClassifier(4, 16, 4, seed=0), graph, p_metis, features, labels,
        train_mask, val_mask, refresh_every=4, epochs=40, lr=0.05,
    )
    print(f"{'+ delayed halo refresh r=4 (DistGNN)':<42} "
          f"{f'{exchanges} syncs, {saved} saved':>25}   "
          f"val acc {rep.final_val_accuracy:.3f}")


if __name__ == "__main__":
    main()
