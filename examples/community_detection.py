"""Community detection: the tutorial's vertex-analytics showcases.

Compares four ways to recover planted communities — the "Vertex
Analytics (+ ML)" paths of Figure 1:

1. label propagation (pure TLAV vertex analytics);
2. DeepWalk embeddings + logistic regression;
3. classic topology features + logistic regression
   (Stolman et al. [35]: structural features are competitive);
4. a 2-layer GCN on noisy features.

Run with::

    python examples/community_detection.py
"""

import numpy as np

from repro.core.features import (
    deepwalk_embeddings,
    logistic_regression,
    topology_features,
)
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph
from repro.graph.generators import planted_partition
from repro.tlav import label_propagation


def cluster_accuracy(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Best-case label-matching accuracy (greedy label alignment)."""
    predicted = np.asarray(predicted)
    accuracy = 0
    for cluster in set(predicted.tolist()):
        members = predicted == cluster
        if members.any():
            best = np.bincount(truth[members]).argmax()
            accuracy += int((truth[members] == best).sum())
    return accuracy / len(truth)


def main() -> None:
    graph, truth = planted_partition(4, 40, p_in=0.15, p_out=0.006, seed=21)
    n = graph.num_vertices
    rng = np.random.default_rng(1)
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 3]] = True
    print(f"graph: {graph}; 4 planted communities of 40\n")

    # 1. Pure analytics: label propagation needs no supervision.
    lp = label_propagation(graph, iterations=12)
    print(f"label propagation      accuracy {cluster_accuracy(lp, truth):.3f} "
          f"({len(set(lp.tolist()))} communities found)")

    # 2. DeepWalk + shallow classifier.
    emb = deepwalk_embeddings(graph, dim=32, walk_length=10,
                              walks_per_vertex=6, epochs=2, seed=0)
    model = logistic_regression(emb[train_mask], truth[train_mask], epochs=300)
    acc = float((model.predict(emb[~train_mask]) == truth[~train_mask]).mean())
    print(f"DeepWalk + logistic    accuracy {acc:.3f}")

    # 3. Classic structural features + shallow classifier.
    topo = topology_features(graph)
    model = logistic_regression(topo[train_mask], truth[train_mask], epochs=300)
    acc = float((model.predict(topo[~train_mask]) == truth[~train_mask]).mean())
    print(f"topology features      accuracy {acc:.3f} "
          "(structure alone cannot separate symmetric communities)")

    # 4. GCN on noisy node features.
    features = np.eye(4)[truth] + rng.normal(0, 1.5, size=(n, 4))
    gcn = NodeClassifier(4, 16, 4, layer="gcn", seed=0)
    report = train_full_graph(
        gcn, graph, features, truth, train_mask, ~train_mask,
        epochs=40, lr=0.05,
    )
    print(f"GCN (noisy features)   accuracy {report.final_val_accuracy:.3f}")


if __name__ == "__main__":
    main()
