"""Bioinformatics-flavoured FSM: mine molecules, classify by structure.

The tutorial's "Structure Analytics + ML" path (Figure 1), on a
synthetic molecule database: positive-class molecules embed a labeled
ring motif (a functional group), negatives do not.  We

1. mine frequent subgraph patterns with gSpan (via the PrefixFPM
   task-parallel framework);
2. turn pattern containment into feature vectors;
3. train a shallow classifier and compare against a degree-histogram
   baseline (the gBoost [31] story).

Run with::

    python examples/molecule_mining.py
"""

import numpy as np

from repro.core.features import logistic_regression
from repro.core.structure_features import (
    degree_histogram_features,
    pattern_feature_matrix,
)
from repro.fsm.prefixfpm import GraphPatterns, PrefixMiner
from repro.graph.csr import Graph
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase


def main() -> None:
    # A triangular "functional group" with atom label 1.
    functional_group = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1]
    )
    positives = random_labeled_transactions(
        30, 10, 0.12, 3, seed=1, planted=functional_group, plant_fraction=1.0
    )
    negatives = random_labeled_transactions(
        30, 10, 0.12, 3, seed=2, id_offset=30
    )
    database = TransactionDatabase(positives + negatives)
    labels = np.array([1] * 30 + [0] * 30)
    print(f"molecule database: {len(database)} graphs, "
          f"{len(positives)} with the planted functional group\n")

    # ------------------------------------------------------------------
    # Mine frequent patterns with the task-parallel PrefixFPM framework.
    # ------------------------------------------------------------------
    miner = PrefixMiner(
        GraphPatterns(database, max_edges=3), min_support=15, num_workers=4
    )
    mined = miner.run()
    print(f"PrefixFPM mined {len(mined)} frequent patterns "
          f"(minsup=15, <=3 edges) across {miner.stats.tasks} tasks, "
          f"balance {miner.stats.balance:.2f}")
    ring_patterns = [
        code for code, _ in mined
        if len(code) == 3 and code.num_vertices() == 3
    ]
    print(f"  of which {len(ring_patterns)} are 3-rings "
          "(the planted group among them)\n")

    # ------------------------------------------------------------------
    # Featurize and classify.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(3)
    train = np.zeros(len(database), dtype=bool)
    train[rng.permutation(len(database))[:40]] = True
    test = ~train

    x_patterns, patterns = pattern_feature_matrix(
        database, min_support=15, max_edges=3, max_patterns=32
    )
    model = logistic_regression(x_patterns[train], labels[train], epochs=300)
    acc_patterns = float(
        (model.predict(x_patterns[test]) == labels[test]).mean()
    )

    x_degree = degree_histogram_features(database)
    baseline = logistic_regression(x_degree[train], labels[train], epochs=300)
    acc_degree = float(
        (baseline.predict(x_degree[test]) == labels[test]).mean()
    )

    print(f"pattern features ({x_patterns.shape[1]} dims): "
          f"test accuracy {acc_patterns:.3f}")
    print(f"degree baseline  ({x_degree.shape[1]} dims): "
          f"test accuracy {acc_degree:.3f}")
    print("\nstructural features win -> the motivation for scalable "
          "subgraph-search systems (Section 2 of the tutorial)")


if __name__ == "__main__":
    main()
