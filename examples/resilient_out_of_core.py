"""Production concerns for TLAV analytics: memory limits, crashes, queries.

The BigGraph@CUHK lineage the tutorial's presenters built (Section 7)
addressed the unglamorous parts of running vertex-centric analytics in
production.  This example exercises three of them on one graph:

1. **GraphD** — the graph does not fit in memory: PageRank runs over
   on-disk CSR shards paged through a zero-budget cache (at most one
   shard resident at any time);
2. **LWCP** — a worker crashes mid-run: the checkpointed engine
   recovers and still produces the exact answer;
3. **Quegel** — analysts fire point-to-point distance queries at the
   same deployment, batched so they share superstep overhead.

Run with::

    python examples/resilient_out_of_core.py
"""

import os
import tempfile

import numpy as np

from repro.graph.generators import barabasi_albert
from repro.graph.store import build_store, open_store
from repro.tlav import (
    CheckpointedEngine,
    PointQuery,
    QuegelEngine,
    pagerank,
)
from repro.tlav.algorithms import WCCProgram


def main() -> None:
    graph = barabasi_albert(1500, 4, seed=29)
    print(f"graph: {graph}\n")

    # ------------------------------------------------------------------
    # 1. Out-of-core PageRank (GraphD): CSR shards on disk, paged
    #    through a zero-budget cache — at most one shard resident.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as workdir:
        store_path = os.path.join(workdir, "store")
        build_store(graph, store_path, partition="hash", num_parts=8)
        on_disk = sum(
            os.path.getsize(os.path.join(root, name))
            for root, _, names in os.walk(store_path)
            for name in names
        )
        with open_store(store_path, cache_budget=0) as stored:
            values = pagerank(stored, iterations=10)
            stats = stored.cache.stats
            resident = stored.cache.resident_bytes
        reference = pagerank(graph, iterations=10)
        print("GraphD out-of-core PageRank")
        print(f"  store {on_disk / 1e6:.2f} MB on disk in 8 shards, paged "
              f"{stats.bytes_paged / 1e6:.2f} MB through the cache")
        print(f"  zero budget: {stats.evictions} evictions, "
              f"{resident / 1e3:.1f} KB peak resident")
        print(f"  exact match with in-memory engine: "
              f"{bool(np.allclose(values, reference))}\n")

    # ------------------------------------------------------------------
    # 2. Crash + recovery (LWCP).
    # ------------------------------------------------------------------
    engine = CheckpointedEngine(
        graph, WCCProgram(), checkpoint_interval=2, mode="light"
    )
    engine.inject_failure(3)
    values = engine.run()
    from repro.tlav import wcc

    print("LWCP crash recovery (failure injected at superstep 3)")
    print(f"  checkpoints: {engine.stats.checkpoints_taken} light snapshots, "
          f"{engine.stats.checkpoint_bytes / 1e3:.1f} KB total")
    print(f"  supersteps replayed after the crash: "
          f"{engine.stats.supersteps_replayed}")
    print(f"  result identical to failure-free run: "
          f"{values == wcc(graph).tolist()}\n")

    # ------------------------------------------------------------------
    # 3. Batched point queries (Quegel).
    # ------------------------------------------------------------------
    server = QuegelEngine(graph, superstep_overhead=1.0)
    rng = np.random.default_rng(5)
    pairs = [
        (int(rng.integers(graph.num_vertices)),
         int(rng.integers(graph.num_vertices)))
        for _ in range(12)
    ]
    for s, t in pairs:
        server.submit(PointQuery(s, t))
    outcomes, accounting = server.run()
    print("Quegel batched distance queries")
    print(f"  {len(pairs)} queries answered in "
          f"{accounting['global_supersteps']:.0f} shared supersteps")
    print(f"  overhead: {accounting['shared_overhead']:.0f} shared vs "
          f"{accounting['sequential_overhead']:.0f} one-at-a-time "
          f"({accounting['overhead_saving']:.0f} saved)")
    sample = outcomes[0]
    print(f"  e.g. dist({pairs[0][0]}, {pairs[0][1]}) = {sample.distance}, "
          f"touching {sample.vertices_touched} vertices")


if __name__ == "__main__":
    main()
