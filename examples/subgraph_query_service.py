"""An interactive subgraph query service (the G-thinkerQ scenario).

Simulates an analyst session against one loaded social graph: a stream
of subgraph queries of very different sizes arrives, and the shared
task-based server interleaves them so small queries return immediately
while a heavy enumeration keeps running.

Run with::

    python examples/subgraph_query_service.py
"""

from repro.graph.generators import barabasi_albert
from repro.matching.pattern import (
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    path_pattern,
    tailed_triangle_pattern,
    triangle_pattern,
)
from repro.tlag.query import Query, QueryServer


def main() -> None:
    graph = barabasi_albert(400, 4, seed=33)
    print(f"loaded graph: {graph}\n")

    # A long analytical job arrives first; quick lookups trickle in
    # behind it — the sequencing where one-job-at-a-time hurts most.
    session = [
        ("heavy: tailed triangles", tailed_triangle_pattern()),
        ("heavy: 4-cycles", cycle_pattern(4)),
        ("heavy: all diamonds", diamond_pattern()),
        ("quick: edges", path_pattern(2)),
        ("quick: triangles", triangle_pattern()),
        ("quick: 4-cliques", clique_pattern(4)),
    ]

    shared = QueryServer(graph, num_workers=8)
    sequential = QueryServer(graph, num_workers=8)
    for _, pattern in session:
        shared.submit(Query(pattern))
        sequential.submit(Query(pattern))

    shared_results = shared.serve()
    sequential_results = sequential.run_sequentially()

    print(f"{'query':<24} {'results':>9} {'shared t':>10} {'sequential t':>13}")
    for (name, _), a, b in zip(session, shared_results, sequential_results):
        print(f"{name:<24} {a.embeddings:>9} {a.completion_time:>10} "
              f"{b.completion_time:>13}")
    mean_shared = sum(r.completion_time for r in shared_results) / len(session)
    mean_seq = sum(r.completion_time for r in sequential_results) / len(session)
    print(f"\nmean response time: shared {mean_shared:,.0f} ops vs "
          f"sequential {mean_seq:,.0f} ops "
          f"({mean_seq / mean_shared:.2f}x better interactively)")


if __name__ == "__main__":
    main()
