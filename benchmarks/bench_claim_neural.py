"""C16 — neural subgraph methods and Subgraph-GNN expressiveness.

Paper claims (Section 1): GNNs approximate subgraph search — neural
subgraph matching [61] and neural subgraph counting [40] — "where
considering subgraph structures were found essential"; and Subgraph
GNNs [5, 12] "which model graphs as collections of subgraphs are found
to be more expressive than regular GNNs".  EXACT [23] additionally
compresses training activations to extreme bit widths.

Reproduced shapes: the order-embedding matcher beats chance on exact
ground truth (but stays approximate); the count regressor correlates
strongly with exact counts; the node-deleted Subgraph GNN separates the
C6-vs-2xC3 pair that 1-WL (and the plain GCN, bit-identically) cannot;
2-bit activation storage saves >60% activation memory at bounded
accuracy cost.
"""

import numpy as np
import pytest

from _harness import report
from repro.graph.csr import Graph
from repro.graph.generators import erdos_renyi, planted_partition
from repro.gnn.activation_compression import train_compressed
from repro.gnn.models import NodeClassifier
from repro.gnn.neural_matching import NeuralMatcher, make_training_pairs
from repro.gnn.subgraph_gnn import (
    PlainGraphGNN,
    SubgraphGNN,
    evaluate,
    train_graph_classifier,
    wl_indistinguishable,
)
from repro.matching.backtrack import count_matches
from repro.matching.pattern import triangle_pattern


def _run():
    rows = []

    # Neural subgraph matching.
    pairs = make_training_pairs(24, target_size=12, pattern_size=4, seed=3)
    matcher = NeuralMatcher(dim=12, hidden=16, seed=0)
    matcher.fit(pairs, epochs=15, lr=0.02)
    fresh = make_training_pairs(16, target_size=12, pattern_size=4, seed=77)

    def acc(dataset):
        return sum(
            1
            for p, t, label in dataset
            if matcher.predict_contains(p, t) == bool(label)
        ) / len(dataset)

    rows.append(
        ["neural matching [61]", "containment accuracy",
         round(acc(pairs), 3), round(acc(fresh), 3)]
    )

    # Neural counting.
    graphs = [
        erdos_renyi(14, p, seed=s) for s in range(12) for p in (0.1, 0.3, 0.5)
    ]
    matcher.fit_count(graphs, triangle_pattern())
    truth = np.array(
        [count_matches(g, triangle_pattern()) for g in graphs], float
    )
    approx = np.array([matcher.count_estimate(g) for g in graphs])
    corr = float(np.corrcoef(truth, approx)[0, 1])
    rows.append(
        ["neural counting [40]", "corr(exact, estimate)", round(corr, 3), "-"]
    )

    # Subgraph GNN expressiveness.
    c6 = Graph.from_edges([(i, (i + 1) % 6) for i in range(6)])
    two_tri = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )
    assert wl_indistinguishable(c6, two_tri)
    plain = PlainGraphGNN(seed=0)
    train_graph_classifier(plain, [c6, two_tri], [0, 1], epochs=60, lr=0.05)
    sub = SubgraphGNN(seed=0)
    train_graph_classifier(sub, [c6, two_tri], [0, 1], epochs=150, lr=0.05)
    rows.append(
        ["Subgraph GNN [5,12]", "C6 vs 2xC3 accuracy",
         evaluate(plain, [c6, two_tri], [0, 1]),
         evaluate(sub, [c6, two_tri], [0, 1])]
    )

    # EXACT activation compression.
    g, labels = planted_partition(3, 20, 0.2, 0.01, seed=4)
    n = g.num_vertices
    rng = np.random.default_rng(0)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[:30]] = True
    exact = train_compressed(
        NodeClassifier(3, 8, 3, seed=0), g, features, labels,
        train_mask, ~train_mask, bits=None, epochs=20, lr=0.05,
    )
    low_bit = train_compressed(
        NodeClassifier(3, 8, 3, seed=0), g, features, labels,
        train_mask, ~train_mask, bits=2, epochs=20, lr=0.05,
    )
    rows.append(
        ["EXACT int2 activations [23]",
         f"memory ratio {low_bit.memory_ratio:.2f}",
         round(exact.report.final_val_accuracy, 3),
         round(low_bit.report.final_val_accuracy, 3)]
    )
    return rows


def test_claim_c16_neural(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C16",
        "Neural subgraph methods, Subgraph GNNs, activation compression",
        ["method", "metric", "baseline/train", "neural/test"],
        rows,
    )
    matching = rows[0]
    assert matching[2] > 0.7 and matching[3] > 0.6  # beats chance
    counting = rows[1]
    assert counting[2] > 0.8
    expressiveness = rows[2]
    assert expressiveness[2] == 0.5   # plain GCN pinned at chance
    assert expressiveness[3] == 1.0   # subgraph GNN separates
    compression = rows[3]
    assert compression[3] >= compression[2] - 0.3
