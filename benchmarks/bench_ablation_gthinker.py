"""X2 — the G-thinker data plane: remote adjacency pulls and the vertex cache.

Paper context (Section 2): G-thinker [53, 54] is "a distributed
framework for mining subgraphs in a big graph"; its engine pulls the
remote adjacency lists a growing subgraph needs and caches them, which
is what makes task-based subgraph mining feasible across machines.

Reproduced shape: on a power-law graph (hub adjacency reused by many
tasks), the LRU vertex cache absorbs most remote reads — pull bytes
drop by an order of magnitude versus the cache-less engine at identical
results — and a locality-aware partition reduces remote reads further.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.graph.partition import hash_partition, metis_like_partition
from repro.matching.cliques import maximal_cliques
from repro.tlag.distributed import DistributedTaskEngine
from repro.tlag.programs import MaximalCliqueProgram


def _run():
    g = barabasi_albert(350, 4, seed=13)
    reference = sorted(maximal_cliques(g))
    rows = []
    for part_name, partition in [
        ("hash", hash_partition(g, 4)),
        ("metis-like", metis_like_partition(g, 4, seed=0)),
    ]:
        for capacity in (0, 64, 1024):
            engine = DistributedTaskEngine(
                g, MaximalCliqueProgram(), partition,
                cache_capacity=capacity, task_budget=60,
            )
            results = sorted(engine.run())
            assert results == reference
            stats = engine.aggregate_cache_stats()
            rows.append(
                [
                    f"{part_name} / cache={capacity}",
                    stats.remote_pulls,
                    round(stats.hit_rate, 3),
                    stats.bytes_pulled,
                ]
            )
    return rows


def test_ablation_x2_gthinker(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "X2",
        "G-thinker data plane: maximal cliques over 4 workers",
        ["partition / cache", "remote pulls", "hit rate", "bytes pulled"],
        rows,
    )
    by_key = {row[0]: row for row in rows}
    # Caching slashes pulls at every partition quality.
    assert by_key["hash / cache=1024"][3] < by_key["hash / cache=0"][3] / 3
    # Bigger cache, higher hit rate.
    assert (
        by_key["hash / cache=1024"][2] >= by_key["hash / cache=64"][2]
    )
