"""C9 — asynchrony: bounded staleness, Sancus gating, delayed halos,
and operator pipelining.

Paper claims (Section 3): bounded staleness "allows pipelining to be
fully exploited while ensuring convergence" (Dorylus, P3); Sancus
adapts staleness by skipping broadcasts when embeddings barely change;
DistGNN's delayed updates avoid communication; ByteGNN/BGL pipelines
keep every resource busy.

Reproduced shape: utilization rises with the staleness bound while the
trained model still converges; the Sancus gate skips most broadcasts on
a converging signal; delayed halos cut exchanges proportionally with
mild accuracy cost; pipelining cuts makespan vs sequential stages.
"""

import numpy as np
import pytest

from _harness import report
from repro.gnn.models import NodeClassifier
from repro.gnn.pipeline import (
    measured_stage_times,
    pipelined_schedule,
    sequential_schedule,
    two_level_schedule,
)
from repro.gnn.staleness import (
    SancusGate,
    simulate_staleness,
    train_delayed_halo,
    train_stale_gradients,
)
from repro.graph.generators import planted_partition
from repro.graph.partition import hash_partition


def _run():
    g, labels = planted_partition(3, 30, p_in=0.18, p_out=0.01, seed=9)
    n = g.num_vertices
    rng = np.random.default_rng(4)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    val_mask = ~train_mask

    rows = []
    for s in (0, 1, 2, 4):
        trace = simulate_staleness(8, 60, staleness=s, seed=1)
        rep = train_stale_gradients(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, staleness=s, epochs=40, lr=0.05,
        )
        rows.append(
            [f"SSP s={s}", round(trace.utilization, 3),
             round(trace.makespan, 1), round(rep.final_loss, 3),
             round(rep.final_val_accuracy, 3)]
        )

    # Sancus gate on the converging embedding stream of full-graph SGD
    # (gradients shrink as the loss converges, so later broadcasts are
    # increasingly redundant — exactly what Sancus exploits).
    from repro.gnn.layers import GraphTensors
    from repro.gnn.models import SGD
    from repro.gnn.tensor import Tensor, no_grad

    gate = SancusGate(threshold=0.05)
    model = NodeClassifier(3, 8, 3, seed=0)
    gt = GraphTensors(g)
    optimizer = SGD(model.parameters(), lr=0.3)
    x = Tensor(features)
    train_idx = np.nonzero(train_mask)[0]
    for _ in range(60):
        optimizer.zero_grad()
        loss = model(gt, x).gather_rows(train_idx).cross_entropy(
            labels[train_idx]
        )
        loss.backward()
        optimizer.step()
        with no_grad():
            embeddings = model(gt, Tensor(features)).data
        gate.should_broadcast(embeddings)
    rows.append(
        ["Sancus gate (60 SGD steps)", "-", "-",
         f"{gate.broadcasts} sent", f"{gate.skips} skipped"]
    )

    # Sancus end-to-end: training on gated historical halo embeddings.
    from repro.gnn.historical import train_historical

    for threshold in (0.0, 0.2):
        hist = train_historical(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 4),
            features, labels, train_mask, val_mask,
            drift_threshold=threshold, epochs=30, lr=0.05,
        )
        rows.append(
            [f"Sancus historical thr={threshold}",
             f"{hist.broadcasts} bcast / {hist.skips} skip",
             f"{hist.halo_bytes} halo B",
             round(hist.report.final_loss, 3),
             round(hist.report.final_val_accuracy, 3)]
        )

    for refresh in (1, 4):
        rep, exchanges, saved = train_delayed_halo(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 4),
            features, labels, train_mask, val_mask,
            refresh_every=refresh, epochs=24, lr=0.05,
        )
        rows.append(
            [f"DistGNN delay r={refresh}", f"{exchanges} halo syncs",
             f"{saved} saved", round(rep.final_loss, 3),
             round(rep.final_val_accuracy, 3)]
        )

    batches = measured_stage_times(40, seed=2)
    rows.append(
        ["sequential stages", "-", round(sequential_schedule(batches).makespan, 1),
         "-", "-"]
    )
    rows.append(
        ["pipelined (BGL)", "-", round(pipelined_schedule(batches).makespan, 1),
         "-", "-"]
    )
    rows.append(
        ["two-level (ByteGNN)", "-",
         round(two_level_schedule(batches, samplers=2).makespan, 1), "-", "-"]
    )
    return rows


def test_claim_c9_staleness(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C9",
        "Asynchrony and pipelining",
        ["configuration", "utilization/syncs", "makespan", "loss/sent",
         "val acc/skipped"],
        rows,
    )
    ssp = rows[:4]
    assert ssp[0][1] < ssp[-1][1]                  # utilization rises
    assert all(row[4] > 0.5 for row in ssp)        # still converges
    sancus = rows[4]
    assert int(sancus[4].split()[0]) > int(sancus[3].split()[0])  # skips > sends
    hist_sync, hist_gated = rows[5], rows[6]
    assert int(hist_gated[2].split()[0]) < int(hist_sync[2].split()[0])
    assert hist_gated[4] >= hist_sync[4] - 0.15    # accuracy held
    pipe_rows = rows[-3:]
    assert pipe_rows[1][2] < pipe_rows[0][2]       # pipeline wins
