"""C3 — matching order and compilation decide enumeration cost.

Paper claim (Section 2): AutoMine/GraphPi/GraphZero win by choosing the
vertex matching order (different orders lead to very different costs)
and by compiling pattern-specific enumeration code; symmetry-breaking
restrictions remove automorphic duplicates.

Reproduced shape, per pattern: (a) the planner's order does several
times less search work than the worst connected order; (b) the compiled
matcher beats the interpreted kernel on the same order; (c) disabling
restrictions multiplies the result count by exactly |Aut(P)|.
"""

import time

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import MatchStats, match
from repro.matching.codegen import compile_matcher, prepare_adjacency
from repro.matching.pattern import (
    automorphisms,
    diamond_pattern,
    house_pattern,
    tailed_triangle_pattern,
)
from repro.matching.plan import GraphStats, Planner


def _work(graph, pattern, order):
    stats = MatchStats()
    match(graph, pattern, order=order, stats=stats)
    return stats.candidates_scanned, stats.embeddings


def _run():
    g = barabasi_albert(300, 4, seed=6)
    planner = Planner(GraphStats.of(g))
    adj, adjset = prepare_adjacency(g)
    rows = []
    for pattern, name in [
        (tailed_triangle_pattern(), "tailed-tri"),
        (diamond_pattern(), "diamond"),
        (house_pattern(), "house"),
    ]:
        best = planner.plan(pattern)
        worst = planner.worst_plan(pattern)
        best_work, count = _work(g, pattern, best.order)
        worst_work, count_w = _work(g, pattern, worst.order)
        assert count == count_w

        t0 = time.perf_counter()
        func = compile_matcher(pattern, order=best.order)
        compiled_count = func(adj, adjset, g.num_vertices)
        compiled_s = time.perf_counter() - t0
        assert compiled_count == count

        t0 = time.perf_counter()
        _work(g, pattern, best.order)
        interp_s = time.perf_counter() - t0

        no_restr = match(g, pattern, order=best.order, restrictions=[])
        rows.append(
            [
                name,
                count,
                best_work,
                worst_work,
                round(worst_work / max(best_work, 1), 1),
                round(interp_s / max(compiled_s, 1e-9), 1),
                no_restr // max(count, 1),
                len(automorphisms(pattern)),
            ]
        )
    return rows


def test_claim_c3_matching_order(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C3",
        "Matching order, compilation, and symmetry breaking",
        ["pattern", "instances", "best-order work", "worst-order work",
         "worst/best", "compile speedup", "dup factor", "|Aut|"],
        rows,
    )
    for row in rows:
        assert row[4] > 1.5      # order matters
        assert row[5] > 2.0      # compilation wins
        assert row[6] == row[7]  # duplicates = |Aut| exactly
