"""C5 — GPU subgraph matching regimes: BFS, DFS warps, AIMD, hybrid.

Paper claims (Section 2): (a) GSI/cuTS-style whole-frontier BFS
overflows device memory as intermediates explode; (b) G2-AIMD's
adaptive chunking + host buffering bounds device residency; (c)
STMatch/T-DFS warp DFS needs only stacks but pays warp divergence;
(d) EGSM's hybrid uses BFS while memory permits and falls back to DFS.

Reproduced shape with the warp/device simulators, all at identical
result counts.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.pattern import diamond_pattern, triangle_pattern
from repro.tlag.aimd import DeviceOverflow, aimd_enumerate
from repro.tlag.hybrid import hybrid_match
from repro.tlag.warp import warp_match


def _run():
    g = barabasi_albert(200, 4, seed=8)
    pattern = diamond_pattern()
    expected = count_matches(g, pattern)
    device_capacity = 2000
    rows = []

    # (a) whole-frontier BFS (connected 4-subgraph growth as the
    # intermediate space) vs (b) AIMD chunking under the same budget.
    try:
        aimd_enumerate(g, 4, device_capacity=device_capacity, adaptive=False)
        bfs_outcome = "fits"
    except DeviceOverflow as exc:
        bfs_outcome = "OVERFLOW"
    _, aimd_stats = aimd_enumerate(g, 4, device_capacity=device_capacity)
    rows.append(["BFS whole-frontier", bfs_outcome, "-", "-", "-"])
    rows.append(
        [
            "G2-AIMD chunked",
            f"peak {aimd_stats.peak_device_embeddings} <= {device_capacity}",
            aimd_stats.launches,
            aimd_stats.decreases,
            "-",
        ]
    )

    # (c) warp DFS: bounded stacks, divergence counter.
    warp = warp_match(g, pattern, num_warps=8, warp_width=32)
    assert warp.embeddings == expected
    rows.append(
        [
            "warp DFS (STMatch)",
            f"stack depth {warp.max_stack_depth}",
            warp.cycles,
            warp.steals,
            f"divergence {warp.divergence:.2f}",
        ]
    )

    # (d) EGSM hybrid under three budgets.
    for budget in (50, 2000, 10**9):
        count, stats = hybrid_match(g, pattern, memory_budget=budget)
        assert count == expected
        mode = (
            "pure BFS"
            if stats.switch_level is None
            else f"switch@L{stats.switch_level}"
        )
        rows.append(
            [
                f"EGSM hybrid (budget {budget})",
                mode,
                stats.bfs_levels,
                stats.dfs_completions,
                f"peak {stats.peak_resident}",
            ]
        )
    return rows


def test_claim_c5_gpu_regimes(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C5",
        "GPU execution regimes (simulated device)",
        ["system regime", "memory outcome", "launches/cycles/levels",
         "decreases/steals/dfs", "extra"],
        rows,
    )
    assert rows[0][1] == "OVERFLOW"          # plain BFS dies
    assert "<=" in rows[1][1]                # AIMD bounded
    switches = [r for r in rows if "hybrid" in r[0]]
    assert any("switch" in r[1] for r in switches)
    assert any("pure BFS" in r[1] for r in switches)
