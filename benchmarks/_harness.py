"""Shared helpers for the benchmark suite.

Every bench regenerates one artifact of the paper (a table, the figure,
or a quantified prose claim — see the experiment index in DESIGN.md).
Results are printed and also written to ``benchmarks/results/<id>.txt``
(human-readable) *and* ``benchmarks/results/<id>.json`` (headers +
rows + optional metrics/span snapshot, machine-readable) so
``pytest benchmarks/ --benchmark-only`` leaves a record trajectory
tooling can diff mechanically; EXPERIMENTS.md summarizes paper-shape
vs measured-shape.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, List, Optional, Sequence

from repro.obs import json_safe

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a title banner."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def report(
    experiment_id: str,
    title: str,
    headers,
    rows,
    obs: Optional[Any] = None,
    spans: Optional[Any] = None,
) -> str:
    """Print the table and persist it under benchmarks/results/.

    Writes ``<id>.txt`` (the fixed-width table) and a sibling
    ``<id>.json``; pass ``obs`` (anything with ``as_dict()``, e.g. a
    :class:`repro.obs.MetricsRegistry`) and/or ``spans`` (a tracer, a
    result, or a list of spans) to embed an observability snapshot.
    """
    rows = list(rows)
    text = format_table(f"[{experiment_id}] {title}", headers, rows)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.txt"), "w") as handle:
        handle.write(text + "\n")
    payload = {
        "id": experiment_id,
        "title": title,
        "headers": list(headers),
        "rows": json_safe(rows),
    }
    if obs is not None:
        payload["obs"] = json_safe(obs.as_dict() if hasattr(obs, "as_dict") else obs)
    if spans is not None:
        if hasattr(spans, "spans"):  # Tracer-less PipelineResult
            spans = spans.spans
        if hasattr(spans, "roots"):  # a Tracer
            spans = spans.roots
        payload["spans"] = [
            s.as_dict() if hasattr(s, "as_dict") else json_safe(s) for s in spans
        ]
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return text
