"""Shared helpers for the benchmark suite.

Every bench regenerates one artifact of the paper (a table, the figure,
or a quantified prose claim — see the experiment index in DESIGN.md).
Results are printed and also written to ``benchmarks/results/<id>.txt``
so ``pytest benchmarks/ --benchmark-only`` leaves a reviewable record;
EXPERIMENTS.md summarizes paper-shape vs measured-shape.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a title banner."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def report(experiment_id: str, title: str, headers, rows) -> str:
    """Print the table and persist it under benchmarks/results/."""
    text = format_table(f"[{experiment_id}] {title}", headers, rows)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{experiment_id}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text
