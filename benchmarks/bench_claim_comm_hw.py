"""C12 — hardware-aware techniques: DGCL planning, Dorylus economics,
HongTu offload.

Paper claims (Section 3): DGCL generates communication plans from link
speeds (NVLink vs network); Dorylus shows CPU servers + serverless
lambdas beat GPUs on cost-effectiveness; HongTu trains full graphs on
memory-limited GPUs by keeping vertex data in CPU memory.

Reproduced shapes: hierarchical allreduce beats the flat ring on the
NVLink topology and not on flat Ethernet; cpu+lambda maximizes
value-per-dollar on graph-heavy workloads while GPU wins raw speed;
the offload planner fits any budget at the price of more transfers.
"""

import pytest

from _harness import report
from repro.cluster.links import ethernet_topology, nvlink_topology
from repro.gnn.comm_plan import (
    flat_ring_allreduce_time,
    hierarchical_allreduce_time,
)
from repro.gnn.offload import naive_footprint, plan_offload
from repro.gnn.serverless import Workload, estimate_costs
from repro.graph.generators import barabasi_albert


def _run():
    rows = []
    payload = 256 * 1024 * 1024
    nv = nvlink_topology(4, 4)
    eth = ethernet_topology(16)
    for name, topo in (("NVLink 4x4", nv), ("Ethernet 16", eth)):
        flat = flat_ring_allreduce_time(topo, payload)
        hier = hierarchical_allreduce_time(topo, payload, gpus_per_host=4)
        rows.append(
            ["DGCL plan / " + name, round(flat, 4), round(hier, 4),
             "hierarchical" if hier < flat else "flat"]
        )

    workload = Workload(graph_ops=5e9, tensor_flops=2e12, epochs=100)
    costs = estimate_costs(workload)
    for name, cost in costs.items():
        rows.append(
            [f"Dorylus $ / {name}", round(cost.time_seconds, 1),
             round(cost.dollars, 4), round(cost.value_per_dollar, 5)]
        )

    g = barabasi_albert(2000, 8, seed=1)
    dims = [128, 64, 16]
    naive = naive_footprint(g, dims)
    for divisor in (1, 8, 64):
        plan = plan_offload(g, dims, device_budget_bytes=max(naive // divisor, 1))
        rows.append(
            [f"HongTu offload / budget=naive/{divisor}", plan.num_chunks,
             plan.device_bytes_per_chunk, plan.transfer_bytes_per_epoch]
        )
    return rows


def test_claim_c12_comm_hw(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C12",
        "Hardware-aware: DGCL planning, Dorylus cost, HongTu offload",
        ["experiment", "flat s / time s / chunks",
         "hier s / $ / device bytes", "winner / value per $ / transfers"],
        rows,
    )
    assert rows[0][3] == "hierarchical"   # NVLink: plan wins
    assert rows[1][3] == "flat"           # Ethernet: nothing to exploit
    dorylus = {r[0].split("/")[-1].strip(): r for r in rows[2:5]}
    assert (
        dorylus["cpu+lambda"][3] > dorylus["gpu"][3]
    )  # value per dollar
    assert dorylus["gpu"][1] < dorylus["cpu"][1]  # GPU fastest
    offload = rows[5:]
    chunks = [r[1] for r in offload]
    assert chunks == sorted(chunks)  # tighter budget, more chunks
