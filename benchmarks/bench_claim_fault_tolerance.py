"""C18 — fault tolerance is a cost trade, not a correctness trade.

LWCP's evaluation axes [48], reproduced end-to-end on the unified
resilience layer:

* **checkpoint interval sweep**: frequent checkpoints pay bytes up
  front and replay little on a crash; sparse checkpoints are cheap
  until the crash, then replay many supersteps.  Recovery is exact at
  every point of the sweep.
* **light vs full**: LWCP's state-only checkpoints bill strictly fewer
  bytes than state+inbox at every interval, with identical recovered
  values.
* **lossy-network retransmit overhead**: the ack/retransmit protocol
  turns message drops into traffic overhead — delivered contents stay
  identical to the lossless run, only the byte bill grows with the
  drop rate.

Writes the structured sweep to ``benchmarks/results/fault_tolerance.json``
(and the usual C18 table artifacts).
"""

import json
import os

from _harness import RESULTS_DIR, report
from repro.cluster.comm import Network
from repro.graph.generators import barabasi_albert
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy, SnapshotStore
from repro.tlav import CheckpointedEngine, wcc
from repro.tlav.algorithms import WCCProgram

FAULT_SEED = 7
FAIL_AT_SUPERSTEP = 5


def _checkpoint_sweep(graph, reference):
    """interval x mode grid: checkpoint bytes paid vs supersteps replayed."""
    sweep = []
    for interval in (1, 2, 4, 8):
        for mode in ("light", "full"):
            obs = MetricsRegistry()
            store = SnapshotStore(obs=obs)
            injector = (
                FaultPlan(seed=FAULT_SEED)
                .fail_superstep(FAIL_AT_SUPERSTEP)
                .build(obs)
            )
            engine = CheckpointedEngine(
                graph, WCCProgram(), checkpoint_interval=interval,
                mode=mode, injector=injector, snapshots=store, obs=obs,
            )
            values = engine.run()
            assert values == reference  # recovery is exact everywhere
            sweep.append({
                "interval": interval,
                "mode": mode,
                "checkpoints": engine.stats.checkpoints_taken,
                "checkpoint_bytes": engine.stats.checkpoint_bytes,
                "supersteps_replayed": engine.stats.supersteps_replayed,
                "restores": store.restores("tlav"),
            })
    return sweep


def _retransmit_overhead():
    """Drop-rate sweep: retransmitted bytes as overhead over the bill."""
    results = []
    reference = None
    for drop in (0.0, 0.1, 0.3):
        plan = FaultPlan(seed=FAULT_SEED).lossy_network(drop=drop)
        net = Network(
            4,
            injector=plan.build() if drop else None,
            retry=RetryPolicy(max_attempts=6, seed=FAULT_SEED),
        )
        received = []
        for i in range(200):
            net.send(i % 4, (3 * i + 1) % 4, payload=float(i), tag="bench")
        while net.has_pending():
            net.deliver()
            for w in range(4):
                received.extend((m.seq, m.payload) for m in net.receive(w))
        received.sort()
        if reference is None:
            reference = received
        assert received == reference  # contents identical, bill differs
        base = net.stats.total_bytes
        extra = net.stats.retransmitted_bytes
        results.append({
            "drop_rate": drop,
            "payload_bytes": base,
            "retransmitted_bytes": extra,
            "retransmits": net.stats.retransmits,
            "retry_exhausted": net.stats.retry_exhausted,
            "overhead": extra / base if base else 0.0,
        })
    return results


def _run():
    graph = barabasi_albert(250, 4, seed=11)
    reference = wcc(graph).tolist()
    sweep = _checkpoint_sweep(graph, reference)
    network = _retransmit_overhead()

    rows = [
        [f"interval={s['interval']}", s["mode"], s["checkpoints"],
         s["checkpoint_bytes"], s["supersteps_replayed"], "exact"]
        for s in sweep
    ]
    rows += [
        [f"drop={n['drop_rate']:.0%}", "retransmit", n["retransmits"],
         n["retransmitted_bytes"], f"+{n['overhead']:.1%}", "exact"]
        for n in network
    ]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "fault_tolerance.json"), "w") as fh:
        json.dump(
            {
                "fault_seed": FAULT_SEED,
                "fail_at_superstep": FAIL_AT_SUPERSTEP,
                "checkpoint_sweep": sweep,
                "network_overhead": network,
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return sweep, network, rows


def test_claim_c18_fault_tolerance(benchmark):
    sweep, network, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C18",
        "Fault tolerance: checkpoint interval x mode, retransmit overhead",
        ["config", "mode", "events", "bytes", "recovery cost", "result"],
        rows,
    )
    by_key = {(s["interval"], s["mode"]): s for s in sweep}
    for interval in (1, 2, 4, 8):
        light, full = by_key[(interval, "light")], by_key[(interval, "full")]
        # LWCP: light bills strictly fewer bytes, recovers identically.
        assert 0 < light["checkpoint_bytes"] < full["checkpoint_bytes"]
        assert light["restores"] == full["restores"] == 1
        # Replay distance is bounded by the interval.
        assert light["supersteps_replayed"] < interval + 1
    # The interval trade-off: sparse checkpoints replay more...
    assert (
        by_key[(8, "light")]["supersteps_replayed"]
        >= by_key[(1, "light")]["supersteps_replayed"]
    )
    # ...frequent checkpoints pay more bytes.
    assert (
        by_key[(1, "light")]["checkpoint_bytes"]
        > by_key[(8, "light")]["checkpoint_bytes"]
    )
    # Retransmit overhead grows with the drop rate, from a zero baseline.
    overheads = [n["overhead"] for n in network]
    assert overheads[0] == 0.0
    assert overheads == sorted(overheads)
    assert overheads[-1] > 0.0
