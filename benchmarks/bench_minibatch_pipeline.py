"""X9 — GraphBolt-style mini-batch pipeline: accuracy-vs-epoch-time
frontier, prefetch overlap, and feature-cache hit rates.

Paper claim (Section 3, Table 2): the industrial GNN systems (Euler,
AliGraph, DistDGL, ByteGNN, BGL) scale training by (1) bounding
per-step work with fanout-sampled mini-batches — trading a little
accuracy for |V|-independent steps (the Bajaj et al. full-graph vs
mini-batch comparison), (2) organizing sampling / gather / compute as a
pipeline so data preparation overlaps model compute, and (3) caching
hot vertex features in front of the gather stage.

Reproduced shape, three parts:

* **Part A (frontier)** — full-graph training vs the staged loader at
  three fanouts on one planted-partition task: epoch wall time, final
  validation accuracy, and gathered feature rows per step.  Sampling
  bounds per-step gather volume below the full-graph row count while
  accuracy approaches the full-graph run as fanout grows.
* **Part B (overlap)** — the same loader run synchronously and with a
  bounded prefetch queue.  Each batch's measured sample/gather/compute
  stage times feed ``pipeline.sequential_schedule`` vs
  ``pipelined_schedule``: the pipelined makespan (and hence modeled
  throughput) dominates the sequential one by construction, and the
  per-stage utilization report shows where the bottleneck sits.  Both
  wall clocks are reported alongside the deterministic model (the GIL
  caps realized thread overlap for pure-Python stages).
* **Part C (cache sweep)** — LRU vs static-degree feature caches across
  capacities on the loader's own access stream; both are stack
  algorithms here, so hit rate grows monotonically with capacity.

Artifact: ``results/minibatch_pipeline.json``.
"""

import time

import numpy as np

from _harness import report
from repro.gnn.caching import LRUCache, StaticDegreeCache
from repro.gnn.dataloader import MiniBatchLoader
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph, train_sampled
from repro.graph.generators import planted_partition

SEED = 0

#: Task geometry: 3 communities, n vertices, noisy one-hot features.
N_COMMUNITIES = 3
COMMUNITY_SIZE = 100
EPOCHS = 4
BATCH_SIZE = 32

#: Part A fanouts (ISSUE floor: >= 3 fanouts vs full-graph).
FANOUTS = ((2, 2), (5, 5), (10, 10))

#: Part B loader geometry.
PREFETCH_DEPTH = 4

#: Part C capacities.
CACHE_CAPACITIES = (16, 64, 128)


def _make_task():
    graph, labels = planted_partition(
        N_COMMUNITIES, COMMUNITY_SIZE, p_in=0.15, p_out=0.01, seed=SEED + 1
    )
    n = graph.num_vertices
    rng = np.random.default_rng(SEED)
    features = np.eye(N_COMMUNITIES)[labels] + rng.normal(
        0, 1.5, size=(n, N_COMMUNITIES)
    )
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    return graph, labels, features, train_mask, ~train_mask


def _model():
    return NodeClassifier(
        N_COMMUNITIES, 16, N_COMMUNITIES, layer="sage", seed=SEED
    )


# ----------------------------------------------------------------------
# Part A — accuracy-vs-epoch-time frontier
# ----------------------------------------------------------------------


def _run_frontier(task):
    graph, labels, features, train_mask, val_mask = task
    rows = []

    t0 = time.perf_counter()
    full = train_full_graph(
        _model(), graph, features, labels, train_mask, val_mask,
        epochs=EPOCHS, lr=0.02,
    )
    full_s = time.perf_counter() - t0
    rows.append({
        "mode": "full-graph",
        "epoch_s": full_s / EPOCHS,
        "final_val_acc": full.final_val_accuracy,
        "final_loss": full.final_loss,
        "gathered_per_step": full.gathered_features // max(full.steps, 1),
    })

    for fanouts in FANOUTS:
        t0 = time.perf_counter()
        rep = train_sampled(
            _model(), graph, features, labels, train_mask, val_mask,
            epochs=EPOCHS, batch_size=BATCH_SIZE, fanouts=fanouts,
            lr=0.02, seed=SEED,
        )
        wall = time.perf_counter() - t0
        rows.append({
            "mode": f"fanout={fanouts[0]}x{fanouts[1]}",
            "epoch_s": wall / EPOCHS,
            "final_val_acc": rep.final_val_accuracy,
            "final_loss": rep.final_loss,
            "gathered_per_step": rep.gathered_features // max(rep.steps, 1),
        })
    return rows


# ----------------------------------------------------------------------
# Part B — sequential vs prefetch loader throughput
# ----------------------------------------------------------------------


def _run_loader_mode(task, prefetch):
    graph, labels, features, train_mask, val_mask = task
    loader = MiniBatchLoader(
        graph,
        items=np.nonzero(train_mask)[0],
        batch_size=BATCH_SIZE,
        fanouts=(5, 5),
        features=features,
        seed=SEED,
        prefetch=prefetch,
    )
    t0 = time.perf_counter()
    train_sampled(
        _model(), graph, features, labels, train_mask, val_mask,
        epochs=EPOCHS, batch_size=BATCH_SIZE, fanouts=(5, 5),
        lr=0.02, seed=SEED, loader=loader,
    )
    wall = time.perf_counter() - t0
    sched = loader.schedule_report()
    batches = sched["batches"]
    seq_makespan = sched["sequential"]["makespan"]
    pipe_makespan = sched["pipelined"]["makespan"]
    return {
        "mode": "prefetch" if prefetch else "sequential",
        "batches": batches,
        "wall_s": wall,
        "measured_batches_per_s": batches / wall,
        "seq_makespan_s": seq_makespan,
        "pipe_makespan_s": pipe_makespan,
        "modeled_seq_tput": batches / seq_makespan,
        "modeled_pipe_tput": batches / pipe_makespan,
        "overlap_speedup": sched["overlap_speedup"],
        "utilization": sched["utilization"],
    }


# ----------------------------------------------------------------------
# Part C — feature-cache hit-rate sweep
# ----------------------------------------------------------------------


def _run_cache_sweep(task):
    graph, labels, features, train_mask, val_mask = task
    rows = []
    for kind in ("lru", "static"):
        for capacity in CACHE_CAPACITIES:
            cache = (
                LRUCache(capacity) if kind == "lru"
                else StaticDegreeCache(graph, capacity)
            )
            loader = MiniBatchLoader(
                graph,
                items=np.nonzero(train_mask)[0],
                batch_size=BATCH_SIZE,
                fanouts=(5, 5),
                features=features,
                seed=SEED,
                cache=cache,
            )
            for _ in range(2):
                for _mb in loader.epoch():
                    pass
            rows.append({
                "mode": f"{kind}@{capacity}",
                "kind": kind,
                "capacity": capacity,
                "accesses": cache.stats.accesses,
                "hit_rate": loader.fetcher.hit_rate,
            })
    return rows


def _run():
    task = _make_task()
    frontier = _run_frontier(task)
    sequential = _run_loader_mode(task, prefetch=0)
    prefetched = _run_loader_mode(task, prefetch=PREFETCH_DEPTH)
    cache_rows = _run_cache_sweep(task)
    return frontier, sequential, prefetched, cache_rows


def test_claim_x9_minibatch(benchmark):
    frontier, sequential, prefetched, cache_rows = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    n = N_COMMUNITIES * COMMUNITY_SIZE
    rows = [
        ["frontier", r["mode"], round(r["epoch_s"], 4),
         round(r["final_val_acc"], 3), round(r["final_loss"], 4),
         r["gathered_per_step"], ""]
        for r in frontier
    ]
    for r in (sequential, prefetched):
        util = r["utilization"]
        rows.append([
            "loader", r["mode"], round(r["wall_s"], 4),
            round(r["measured_batches_per_s"], 1),
            round(r["modeled_pipe_tput"], 1),
            round(r["overlap_speedup"], 2),
            "s={sample:.2f} g={gather:.2f} c={compute:.2f}".format(**util),
        ])
    rows += [
        ["cache", r["mode"], "", round(r["hit_rate"], 4),
         "", r["accesses"], ""]
        for r in cache_rows
    ]
    report(
        "minibatch_pipeline",
        f"Mini-batch pipeline (n={n}, {EPOCHS} epochs, batch {BATCH_SIZE}): "
        "accuracy-vs-epoch-time frontier, prefetch overlap, cache sweep",
        ["part", "mode", "epoch_or_wall_s", "acc_or_tput",
         "loss_or_model_tput", "gathered_or_speedup", "utilization"],
        rows,
    )

    # Headline A: sampling bounds per-step gather volume below the
    # full-graph row count, and accuracy approaches full-graph as the
    # fanout grows.
    full = frontier[0]
    assert full["gathered_per_step"] == n
    for r in frontier[1:]:
        assert r["gathered_per_step"] < n, r
    best_sampled = max(r["final_val_acc"] for r in frontier[1:])
    assert best_sampled >= full["final_val_acc"] - 0.15, (
        best_sampled, full["final_val_acc"]
    )

    # Headline B: on the same measured stage times, the pipelined
    # schedule's makespan (and modeled throughput) dominates the
    # sequential one — the overlap a prefetching loader admits.
    for r in (sequential, prefetched):
        assert r["pipe_makespan_s"] <= r["seq_makespan_s"] + 1e-12, r
        assert r["modeled_pipe_tput"] >= r["modeled_seq_tput"] - 1e-9, r
        assert r["overlap_speedup"] >= 1.0, r
        assert 0.0 < max(r["utilization"].values()) <= 1.0 + 1e-9, r
    # Prefetch must not change the work done — same batch count.
    assert sequential["batches"] == prefetched["batches"]

    # Headline C: both caches are stack algorithms on this stream —
    # hit rate is monotone in capacity, and a larger cache never loses.
    for kind in ("lru", "static"):
        rates = [r["hit_rate"] for r in cache_rows if r["kind"] == kind]
        assert all(b >= a - 1e-12 for a, b in zip(rates, rates[1:])), (
            kind, rates
        )
        assert rates[-1] > rates[0], (kind, rates)
