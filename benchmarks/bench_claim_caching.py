"""C13 — feature caching of hot vertices cuts remote fetch traffic.

Paper claim (Section 3): AliGraph caches "important" vertices and BGL
adds dynamic caching because sampled GNN training's vertex accesses are
heavily skewed.

Reproduced shape: hit rate grows with capacity; on power-law access
traces the static degree cache beats LRU at equal capacity; bytes
saved scale with hits.
"""

import pytest

from _harness import report
from repro.gnn.caching import (
    LRUCache,
    StaticDegreeCache,
    access_trace_from_sampling,
    replay,
)
from repro.graph.generators import barabasi_albert


def _run():
    g = barabasi_albert(800, 5, seed=6)
    trace = access_trace_from_sampling(
        g, list(range(0, 800, 4)), fanouts=(5, 5), batch_size=25,
        epochs=2, seed=0,
    )
    rows = []
    for capacity in (0, 20, 80, 320):
        degree = replay(trace, StaticDegreeCache(g, capacity), feature_dim=64)
        lru = replay(trace, LRUCache(capacity), feature_dim=64)
        rows.append(
            [
                capacity,
                round(degree.hit_rate, 3),
                round(lru.hit_rate, 3),
                degree.bytes_saved,
                degree.bytes_fetched,
            ]
        )
    return rows, len(trace)


def test_claim_c13_caching(benchmark):
    rows, accesses = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C13",
        f"Feature caches over a sampled-training trace ({accesses} accesses)",
        ["capacity", "degree-cache hit rate", "LRU hit rate",
         "bytes saved", "bytes fetched"],
        rows,
    )
    degree_rates = [row[1] for row in rows]
    assert degree_rates == sorted(degree_rates)   # monotone in capacity
    assert degree_rates[-1] > 0.3                 # skew pays off
    for row in rows[1:]:
        assert row[1] >= row[2]                   # AliGraph bet holds
