"""C6 — single-graph FSM: GraMi prunings and T-FSM task parallelism.

Paper claims (Section 2): T-FSM is the most efficient single-graph FSM
system because it decomposes pattern support evaluation into independent
subgraph-matching tasks for parallel backtracking, and it supports all
of GraMi's pruning techniques.

Reproduced shape: (a) each GraMi pruning (NLF filter, early stop,
embedding reuse) cuts existence-check work, all agreeing on supports;
(b) T-FSM-style task-parallel evaluation scales the makespan down with
workers; (c) a support-threshold sweep shows the anti-monotone pattern
count growth the miners rely on.
"""

import pytest

from _harness import report
from repro.fsm.single_graph import SingleGraphFSM, mni_support, mni_support_parallel
from repro.graph.csr import Graph
from repro.graph.generators import planted_motif_graph
from repro.matching.pattern import PatternGraph


def _run():
    motif = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0)], vertex_labels=[5, 5, 5]
    )
    g = planted_motif_graph(
        n=200, p=0.015, motif=motif, copies=12, num_vertex_labels=4, seed=3
    )
    pattern = PatternGraph(motif)
    rows = []
    configs = [
        ("no prunings", dict(prune_nlf=False, early_stop=False, reuse_embeddings=False)),
        ("+NLF filter", dict(prune_nlf=True, early_stop=False, reuse_embeddings=False)),
        ("+early stop", dict(prune_nlf=True, early_stop=True, reuse_embeddings=False)),
        ("+embedding reuse (all)", dict(prune_nlf=True, early_stop=True, reuse_embeddings=True)),
    ]
    supports = set()
    for name, kwargs in configs:
        result = mni_support(g, pattern, min_support=8, **kwargs)
        supports.add(result.support >= 8)
        rows.append(["GraMi " + name, result.existence_checks, result.search_ops, "-"])
    assert supports == {True}

    for workers in (1, 4, 16):
        result, makespan = mni_support_parallel(g, pattern, num_workers=workers)
        rows.append(
            [f"T-FSM tasks, {workers} workers", result.existence_checks,
             result.search_ops, makespan]
        )

    miner = SingleGraphFSM(min_support=10, max_edges=3)
    patterns = miner.run(g)
    rows.append(
        ["full mine (minsup=10, <=3 edges)", miner.total_existence_checks,
         miner.total_search_ops, f"{len(patterns)} patterns"]
    )
    return rows


def test_claim_c6_fsm(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C6",
        "Single-graph FSM: pruning ablation + task-parallel MNI",
        ["configuration", "existence checks", "search ops", "makespan/out"],
        rows,
    )
    # Prunings monotonically cut work.
    pruning_ops = [row[2] for row in rows[:4]]
    assert pruning_ops[-1] < pruning_ops[0]
    # Task parallelism cuts makespan.
    makespans = [row[3] for row in rows[4:7]]
    assert makespans[2] < makespans[0]
