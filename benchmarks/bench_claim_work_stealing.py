"""C4 — task splitting + work stealing balance skewed subgraph search.

Paper claim (Section 2): G-thinker-family systems achieve load balancing
on power-law graphs by decomposing heavy tasks and letting idle workers
steal; STMatch/T-DFS do the same per warp on GPUs.

Reproduced shape: on a Barabási–Albert graph, maximal-clique mining
without stealing leaves workers idle (balance >> 1); enabling stealing
plus budget-triggered splitting brings the makespan close to ideal.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import MaximalCliqueProgram


def _run():
    g = barabasi_albert(500, 8, seed=4)
    rows = []
    configs = [
        ("static (no steal)", dict(steal=False, task_budget=None)),
        ("steal only", dict(steal=True, task_budget=None)),
        ("steal + split", dict(steal=True, task_budget=100)),
        # Same knob the repro.parallel executor chunks by: a coarse
        # initial deal leans harder on stealing to rebalance.
        ("steal + split, chunk=8", dict(steal=True, task_budget=100, chunk_size=8)),
    ]
    reference = None
    for name, kwargs in configs:
        engine = TaskEngine(
            g, MaximalCliqueProgram(), num_workers=16,
            collect_results=True, **kwargs,
        )
        results = sorted(engine.run())
        if reference is None:
            reference = results
        assert results == reference
        rows.append(
            [
                name,
                engine.stats.tasks_executed,
                engine.stats.tasks_forked,
                engine.stats.steals,
                engine.stats.makespan,
                round(engine.stats.balance, 3),
            ]
        )
    return rows


def test_claim_c4_work_stealing(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C4",
        "Maximal cliques on a power-law graph, 16 workers",
        ["config", "tasks", "forked", "steals", "makespan", "balance"],
        rows,
    )
    static, steal, split, chunked = rows
    assert steal[5] <= static[5]               # stealing improves balance
    assert split[5] <= static[5]               # so does steal + split
    assert split[4] <= static[4]               # makespan improves
    assert split[2] > 0 and split[3] > 0       # splitting/stealing active
    assert chunked[5] <= static[5]             # chunked deal still balances
    assert chunked[3] >= split[3]              # coarser deal -> more steals
