"""C10 — quantized communication: bytes vs accuracy, error feedback.

Paper claim (Section 3): EC-Graph/EXACT/F2CGT/Sylvie compress GNN
communication with lossy quantization; error compensation keeps
training accurate at very low bit widths.

Reproduced shape: halo bytes drop with bit width while validation
accuracy degrades only mildly; at 2 bits, error feedback recovers
accuracy relative to plain quantization (measured on real training,
not just accounting).
"""

import numpy as np
import pytest

from _harness import report
from repro.gnn.distributed import DistributedTrainer
from repro.gnn.models import NodeClassifier
from repro.gnn.quantization import compressed_nbytes
from repro.graph.generators import planted_partition
from repro.graph.partition import metis_like_partition


def _run():
    g, labels = planted_partition(3, 30, p_in=0.18, p_out=0.01, seed=11)
    n = g.num_vertices
    rng = np.random.default_rng(5)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    val_mask = ~train_mask
    partition = metis_like_partition(g, 4, seed=0)

    rows = []
    for bits, error_feedback in [
        (None, False), (8, False), (4, False), (2, False), (2, True)
    ]:
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            lr=0.05, halo_bits=bits, error_feedback=error_feedback,
        )
        rep = trainer.train(train_mask, val_mask, epochs=25)
        wire = (
            "fp64"
            if bits is None
            else f"int{bits}" + ("+EF" if error_feedback else "")
        )
        payload = compressed_nbytes((n, 3), bits) if bits else n * 3 * 8
        rows.append(
            [
                "halo " + wire,
                trainer.bytes_by_tag()["halo"],
                payload,
                round(rep.final_loss, 3),
                round(rep.final_val_accuracy, 3),
            ]
        )

    # Gradient-side compression (Sylvie/EC-Graph): quantize the synced
    # gradient with error feedback; bytes land on the grad-sync tag.
    for bits in (None, 4, 2):
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            lr=0.05, grad_bits=bits,
        )
        rep = trainer.train(train_mask, val_mask, epochs=25)
        wire = "fp64" if bits is None else f"int{bits}+EF"
        rows.append(
            [
                "grad " + wire,
                trainer.bytes_by_tag()["grad-sync"],
                "-",
                round(rep.final_loss, 3),
                round(rep.final_val_accuracy, 3),
            ]
        )
    return rows


def test_claim_c10_quantization(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C10",
        "Quantized halo exchange: bytes vs accuracy",
        ["wire format", "halo bytes accounted", "payload bytes",
         "final loss", "val accuracy"],
        rows,
    )
    fp64, int8, int4, int2, int2_ef = rows[:5]
    assert int8[1] < fp64[1]                    # bytes shrink
    assert int8[4] >= fp64[4] - 0.1             # int8 nearly lossless
    assert int2_ef[4] >= int2[4] - 1e-9         # EF >= plain at 2 bits
    grad_full, grad4, grad2 = rows[5:]
    assert grad2[1] < grad4[1] < grad_full[1]   # gradient bytes shrink
    assert grad2[4] >= grad_full[4] - 0.15      # accuracy held
