"""F1 — Figure 1: the four-path graph analytics + ML pipeline.

The paper's Figure 1 shows four analytics paths: vertex analytics,
vertex analytics + ML, structure analytics, and structure analytics +
ML.  This bench runs all four end to end on synthetic stand-ins for the
figure's motivating applications (community detection for vertex
paths, molecule classification for structure paths) and reports each
path's artifact and quality.

It also exercises the redesigned pipeline API: graphs/databases are
passed to ``Pipeline.run`` directly, each run returns a
``PipelineResult`` whose per-stage spans land in the JSON result file.
"""

import numpy as np
import pytest

from _harness import report
from repro.core.pipeline import Pipeline, stages
from repro.graph.csr import Graph
from repro.graph.generators import (
    planted_partition,
    random_labeled_transactions,
)
from repro.graph.transactions import TransactionDatabase
from repro.obs import MetricsRegistry


def _run(obs):
    rows = []
    spans = []
    # Vertex-side input: a planted-community graph.
    g, labels = planted_partition(3, 25, p_in=0.25, p_out=0.015, seed=13)
    n = g.num_vertices
    rng = np.random.default_rng(8)
    train = np.zeros(n, dtype=bool)
    train[rng.permutation(n)[: n // 2]] = True

    # Path 1: vertex analytics.  The graph goes straight into `run`.
    res = Pipeline(
        [stages.pagerank_scores(), stages.structural_vertex_features()],
        obs=obs,
    ).run(g)
    spans.extend(res.spans)
    rows.append(
        ["1 vertex analytics", "PageRank + topology features",
         f"{res['features'].shape[1]} features/vertex",
         f"pr sum {res['scores'].sum():.3f}"]
    )

    # Path 2: vertex analytics + ML.
    res2 = Pipeline(
        [stages.deepwalk(dim=16, walks_per_vertex=6, seed=0),
         stages.node_classifier(labels, train)],
        obs=obs,
    ).run(g)
    spans.extend(res2.spans)
    rows.append(
        ["2 vertex analytics + ML", "DeepWalk -> logistic classifier",
         "16-dim embeddings",
         f"acc {res2['node_ml']['accuracy']:.3f}"]
    )

    # Structure-side input: two-class molecule database.
    motif = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1]
    )
    pos = random_labeled_transactions(
        14, 8, 0.15, 2, seed=1, planted=motif, plant_fraction=1.0
    )
    neg = random_labeled_transactions(14, 8, 0.15, 2, seed=2, id_offset=14)
    db = TransactionDatabase(pos + neg)
    y = np.array([1] * 14 + [0] * 14)
    train_g = np.zeros(len(db), dtype=bool)
    train_g[rng.permutation(len(db))[:18]] = True

    # Path 3: structure analytics.
    res3 = Pipeline([stages.mine_maximal_cliques(min_size=3)], obs=obs).run(g)
    spans.extend(res3.spans)
    rows.append(
        ["3 structure analytics", "maximal cliques >= 3",
         f"{len(res3['structures'])} cliques", "-"]
    )

    # Path 4: structure analytics + ML.  The database goes straight in.
    res4 = Pipeline(
        [stages.pattern_features(min_support=7, max_edges=3),
         stages.graph_classifier(y, train_g)],
        obs=obs,
    ).run(db)
    spans.extend(res4.spans)
    rows.append(
        ["4 structure analytics + ML", "FSM features -> graph classifier",
         f"{res4['features'].shape[1]} pattern features",
         f"acc {res4['graph_ml']['accuracy']:.3f}"]
    )
    return rows, spans


def test_fig1_pipeline(benchmark):
    obs = MetricsRegistry()
    rows, spans = benchmark.pedantic(_run, args=(obs,), rounds=1, iterations=1)
    report(
        "F1",
        "Figure 1: four analytics paths end to end",
        ["path", "stages", "artifact", "quality"],
        rows,
        obs=obs,
        spans=spans,
    )
    assert len(rows) == 4
    # Per-stage timing spans came back with every run.
    assert {s.name for s in spans} >= {"stage:pagerank", "stage:deepwalk"}
    assert all(s.wall_seconds >= 0 for s in spans)
    # The registry saw every stage execution.
    stage_counter = obs.get("core.pipeline.stages")
    assert stage_counter is not None and stage_counter.total >= 7
    acc2 = float(rows[1][3].split()[1])
    acc4 = float(rows[3][3].split()[1])
    assert acc2 > 0.7
    assert acc4 > 0.7
