"""C8 — partitioning policy decides cross-machine GNN traffic.

Paper claims (Section 3): DistDGL/DGCL minimize cross-machine
communication with METIS-style edge cuts; ByteGNN/BGL argue a global
minimum cut is the wrong objective for GNN workloads and over-partition
by BFS from train/val/test seeds (the graph Voronoi diagram), streaming
blocks to workers; DistGNN prefers a vertex-cut.

Reproduced shape: identical training trajectories under every
partition (the trainer is synchronous), but halo traffic ranks
hash > range > metis-like, with BFS-Voronoi competitive on
seed-local workloads; vertex-cut replication factor stays small.
"""

import numpy as np
import pytest

from _harness import report
from repro.gnn.distributed import DistributedTrainer
from repro.gnn.models import NodeClassifier
from repro.graph.generators import planted_partition
from repro.graph.partition import (
    bfs_voronoi_partition,
    edge_cut_fraction,
    hash_partition,
    metis_like_partition,
    range_partition,
    replication_factor,
    vertex_cut_partition,
)


def _run():
    g, labels = planted_partition(4, 30, p_in=0.15, p_out=0.01, seed=7)
    n = g.num_vertices
    rng = np.random.default_rng(3)
    features = np.eye(4)[labels] + rng.normal(0, 1.0, size=(n, 4))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 3]] = True
    seeds = list(np.nonzero(train_mask)[0][:16])

    partitions = [
        ("hash", hash_partition(g, 4)),
        ("range", range_partition(g, 4)),
        ("metis-like", metis_like_partition(g, 4, seed=0)),
        ("bfs-voronoi", bfs_voronoi_partition(g, 4, seeds=seeds)),
    ]
    rows = []
    losses = None
    for name, partition in partitions:
        trainer = DistributedTrainer(
            NodeClassifier(4, 8, 4, seed=0), g, partition, features, labels,
            lr=0.05,
        )
        rep = trainer.train(train_mask, epochs=4)
        if losses is None:
            losses = rep.losses
        assert np.allclose(rep.losses, losses)  # same learning everywhere
        rows.append(
            [
                name,
                round(edge_cut_fraction(g, partition), 3),
                trainer.bytes_by_tag()["halo"],
                trainer.bytes_by_tag()["grad-sync"],
            ]
        )
    vc = vertex_cut_partition(g, 4, seed=0)
    rows.append(
        ["vertex-cut (RF)", round(replication_factor(g, vc), 3), "-", "-"]
    )
    return rows


def test_claim_c8_partitioning(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C8",
        "2-layer GCN over 4 workers: partition policy vs halo traffic",
        ["partitioner", "edge cut / RF", "halo bytes", "grad-sync bytes"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["metis-like"][2] < by_name["hash"][2]
    assert by_name["bfs-voronoi"][2] < by_name["hash"][2]
    # Gradient sync identical: partitioning only moves the halo term.
    sync = {row[3] for row in rows[:4]}
    assert len(sync) == 1
