"""C1 — triangle counting: TLAV message blow-up vs the serial algorithm.

Paper claim (Section 1, citing Chu & Cheng [9]): the state-of-the-art
MapReduce triangle counter took 5.33 minutes on 1636 machines while a
serial external-memory algorithm took 0.5 minutes — i.e. vertex-centric
parallelism cannot pay for its communication on subgraph problems.

Reproduced shape: the TLAV triangle program's message count grows like
sum-of-degrees-squared while the serial ordered algorithm's comparison
work stays near-linear, so the ratio widens with graph size, and serial
wall-clock beats the simulated-parallel engine despite 8 workers.
"""

import time

import pytest

from _harness import report
from repro.graph.generators import rmat
from repro.matching.triangles import triangle_count_with_work
from repro.tlav.algorithms import triangle_count_tlav


def _run_sweep():
    rows = []
    for scale in (7, 8, 9):
        g = rmat(scale, edge_factor=8, seed=1)
        t0 = time.perf_counter()
        count_serial, work = triangle_count_with_work(g)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        count_tlav, messages = triangle_count_tlav(g)
        tlav_s = time.perf_counter() - t0
        assert count_serial == count_tlav
        rows.append(
            [
                f"2^{scale}",
                g.num_edges,
                count_serial,
                work,
                messages,
                round(messages / max(work, 1), 2),
                round(serial_s, 3),
                round(tlav_s, 3),
            ]
        )
    return rows


def test_claim_c1_triangle_tlav(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(
        "C1",
        "Triangle counting: serial ordered listing vs TLAV messages",
        ["|V|", "|E|", "triangles", "serial work", "TLAV msgs",
         "msgs/work", "serial s", "TLAV s"],
        rows,
    )
    # Shape assertions: message volume dominates serial work and the
    # gap does not shrink with scale.
    ratios = [row[5] for row in rows]
    assert all(r > 1.0 for r in ratios)
    assert all(row[6] < row[7] for row in rows)  # serial faster
