"""T2 — regenerate Table 2: techniques of distributed GNN systems.

The paper's Table 2 checks, per system, which of the technique columns
it uses.  This bench (a) prints the taxonomy's rendering, (b) runs one
training configuration per *technique column* on the same task — the
ablation view of Table 2 — reporting each technique's characteristic
measurement, and (c) sanity-checks the flags.
"""

import numpy as np
import pytest

from _harness import report
from repro.core.taxonomy import TABLE2_SYSTEMS, render_table2
from repro.gnn.distributed import DistributedTrainer
from repro.gnn.models import NodeClassifier
from repro.gnn.pipeline import measured_stage_times, pipelined_schedule, sequential_schedule
from repro.gnn.staleness import simulate_staleness, train_stale_gradients
from repro.gnn.train import train_sampled
from repro.graph.generators import planted_partition
from repro.graph.partition import hash_partition, metis_like_partition


def _run():
    g, labels = planted_partition(3, 28, p_in=0.18, p_out=0.012, seed=12)
    n = g.num_vertices
    rng = np.random.default_rng(6)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    val_mask = ~train_mask

    rows = []

    def distributed(partition, bits=None, ef=False):
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            lr=0.05, halo_bits=bits, error_feedback=ef,
        )
        rep = trainer.train(train_mask, val_mask, epochs=15)
        return trainer, rep

    base_t, base_r = distributed(hash_partition(g, 4))
    rows.append(
        ["baseline (hash, sync, fp64)", base_t.remote_bytes,
         round(base_r.final_val_accuracy, 3), "-"]
    )
    part_t, part_r = distributed(metis_like_partition(g, 4, seed=0))
    rows.append(
        ["+ partitioning (DistDGL/METIS)", part_t.remote_bytes,
         round(part_r.final_val_accuracy, 3),
         f"-{100 * (1 - part_t.remote_bytes / base_t.remote_bytes):.0f}% bytes"]
    )
    samp_r = train_sampled(
        NodeClassifier(3, 8, 3, layer="sage", seed=0), g, features, labels,
        train_mask, val_mask, epochs=10, batch_size=16, fanouts=(5, 5), lr=0.05,
    )
    rows.append(
        ["+ sampling (Euler/AliGraph)",
         f"{samp_r.gathered_features // samp_r.steps} rows/step",
         round(samp_r.final_val_accuracy, 3), "-"]
    )
    batches = measured_stage_times(30, seed=1)
    seq = sequential_schedule(batches).makespan
    pipe = pipelined_schedule(batches).makespan
    rows.append(
        ["+ scheduling (ByteGNN/BGL)", f"makespan {pipe:.1f} vs {seq:.1f}",
         "-", f"-{100 * (1 - pipe / seq):.0f}% time"]
    )
    ssp0 = simulate_staleness(8, 50, 0, seed=2)
    ssp3 = simulate_staleness(8, 50, 3, seed=2)
    async_r = train_stale_gradients(
        NodeClassifier(3, 8, 3, seed=0), g, features, labels, train_mask,
        val_mask, staleness=3, epochs=30, lr=0.05,
    )
    rows.append(
        ["+ asynchrony (Dorylus/P3/Sancus)",
         f"util {ssp3.utilization:.2f} vs {ssp0.utilization:.2f}",
         round(async_r.final_val_accuracy, 3), "-"]
    )
    quant_t, quant_r = distributed(metis_like_partition(g, 4, seed=0), bits=4, ef=True)
    rows.append(
        ["+ compression (EC-Graph int4+EF)", quant_t.remote_bytes,
         round(quant_r.final_val_accuracy, 3),
         f"-{100 * (1 - quant_t.remote_bytes / part_t.remote_bytes):.0f}% bytes"]
    )
    return rows


def test_table2_feature_flags_consistent():
    by_name = {s.name: s for s in TABLE2_SYSTEMS}
    assert by_name["DistDGL"].partitioning
    assert by_name["Sancus"].asynchrony
    assert by_name["EC-Graph"].compression
    assert by_name["DGCL"].comm_optimization
    assert by_name["HongTu"].cpu_offload
    assert by_name["Dorylus"].platform == "serverless"


def test_table2_regeneration(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_text = render_table2()
    print("\n" + table_text)
    report(
        "T2",
        "Table 2 regenerated + per-technique ablation on one GCN task",
        ["technique column (exemplar systems)", "traffic / resource",
         "val accuracy", "delta"],
        rows,
    )
    import os

    from _harness import RESULTS_DIR

    with open(os.path.join(RESULTS_DIR, "T2_table.txt"), "w") as handle:
        handle.write(table_text + "\n")
    # Partitioning cut bytes; compression cut more; accuracy held.
    assert int(rows[1][1]) < int(rows[0][1])
    assert int(rows[5][1]) < int(rows[1][1])
    for row in (rows[0], rows[1], rows[5]):
        assert row[2] >= 0.5
