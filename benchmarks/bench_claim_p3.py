"""C11 — P3's push-pull parallelism wins when raw features are wide.

Paper claim (Section 3): P3 partitions input data by feature rather
than topology, fusing intra-layer model parallelism with data
parallelism, so the wire carries hidden-width partial activations
instead of input-width raw features.

Reproduced shape: sweeping the input feature width, data-parallel
traffic grows linearly while P3's stays flat at the hidden width;
the crossover sits near in_dim ~ hidden_dim * (k-1)/k / remote_frac.
The partial-aggregation identity is verified numerically.
"""

import numpy as np
import pytest

from _harness import report
from repro.gnn.p3 import (
    data_parallel_bytes_per_step,
    p3_bytes_per_step,
    partial_aggregation,
)


def _run():
    rng = np.random.default_rng(0)
    # Correctness of the model-parallel layer-1 math.
    x = rng.normal(size=(64, 48))
    w = rng.normal(size=(48, 16))
    full, partials = partial_aggregation(x, w, 4)
    assert np.allclose(full, x @ w)

    rows = []
    hidden = 32
    workers = 4
    for in_dim in (8, 16, 32, 64, 128, 256, 512):
        dp = data_parallel_bytes_per_step(64, 600, in_dim=in_dim)
        p3 = p3_bytes_per_step(64, 600, hidden_dim=hidden, num_workers=workers)
        rows.append(
            [
                in_dim,
                dp.total,
                p3.total,
                "P3" if p3.total < dp.total else "data-parallel",
            ]
        )
    return rows


def test_claim_c11_p3(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C11",
        "P3 vs data parallelism: bytes/step over feature width "
        "(hidden=32, 4 workers)",
        ["in_dim", "data-parallel bytes", "P3 bytes", "winner"],
        rows,
    )
    winners = [row[3] for row in rows]
    assert winners[0] == "data-parallel"   # narrow features
    assert winners[-1] == "P3"             # wide features
    # Single crossover.
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
    # P3 traffic flat across the sweep.
    assert len({row[2] for row in rows}) == 1
