"""C7 — neighborhood sampling bounds per-step data volume.

Paper claim (Section 3): neighborhood sampling "limits the number of
neighbors of each node used for training" and is the workhorse of the
industrial systems (Euler, AliGraph, ByteGNN) because full-graph
training touches every vertex every step.

Reproduced shape: per-step gathered-feature volume grows with fanout
and is bounded far below the full graph; accuracy approaches the
full-graph ceiling as fanout rises.
"""

import numpy as np
import pytest

from _harness import report
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph, train_sampled
from repro.graph.generators import planted_partition


def _run():
    g, labels = planted_partition(4, 40, p_in=0.12, p_out=0.008, seed=5)
    n = g.num_vertices
    rng = np.random.default_rng(0)
    features = np.eye(4)[labels] + rng.normal(0, 1.2, size=(n, 4))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    val_mask = ~train_mask

    rows = []
    full = train_full_graph(
        NodeClassifier(4, 16, 4, layer="sage", seed=0), g, features, labels,
        train_mask, val_mask, epochs=10, lr=0.05,
    )
    rows.append(
        ["full-graph", "-", round(full.gathered_features / full.steps, 1),
         round(full.final_val_accuracy, 3)]
    )
    for fanout in (2, 5, 10):
        rep = train_sampled(
            NodeClassifier(4, 16, 4, layer="sage", seed=0), g, features,
            labels, train_mask, val_mask, epochs=10, batch_size=20,
            fanouts=(fanout, fanout), lr=0.05, seed=1,
        )
        rows.append(
            [f"sampled fanout={fanout}", f"({fanout},{fanout})",
             round(rep.gathered_features / rep.steps, 1),
             round(rep.final_val_accuracy, 3)]
        )
    return rows, n


def test_claim_c7_sampling(benchmark):
    rows, n = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C7",
        f"Sampling vs full-graph (|V|={n})",
        ["regime", "fanouts", "gathered rows / step", "val accuracy"],
        rows,
    )
    full_gather = rows[0][2]
    sampled_gathers = [row[2] for row in rows[1:]]
    assert all(gather < full_gather for gather in sampled_gathers)
    assert sampled_gathers == sorted(sampled_gathers)  # grows with fanout
    # Largest fanout should approach full-graph accuracy.
    assert rows[-1][3] >= rows[0][3] - 0.15
