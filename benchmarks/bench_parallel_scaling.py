"""C17 — multicore scaling of matching, triangles and PageRank.

Paper claim (Section 1): single-machine systems increasingly exploit
shared-memory parallelism — the same CSR arrays served to many cores —
instead of distribution; speedup then hinges on load balance and on
keeping per-task state tiny (zero-copy graph sharing).

Reproduced shape: the ``repro.parallel`` executor fans root-level task
chunks over 1/2/4/8 workers.  Every worker count returns *identical*
counts (and chunk-deterministic PageRank vectors), and on a multicore
host the process backend reaches >= 2.5x at 4 workers on the matching
workload.  On single-core CI runners the speedup assertions are skipped
but the equivalence assertions still run; the report records whatever
the host measured (artifact: ``results/parallel_scaling.json``).
"""

import os
import time

import numpy as np
import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.pattern import clique_pattern
from repro.matching.triangles import triangle_count
from repro.parallel import ParallelExecutor
from repro.tlav import pagerank_dense

#: Honour the repo-wide backend knob; default to real processes since
#: that is the backend whose scaling the claim is about.
BACKEND = os.environ.get("REPRO_BACKEND") or "process"
WORKER_COUNTS = (1, 2, 4, 8)
CORES = os.cpu_count() or 1


def _workloads(g):
    return [
        ("matching k4", lambda ex: count_matches(g, clique_pattern(4), executor=ex)),
        ("triangles", lambda ex: triangle_count(g, executor=ex)),
        ("pagerank", lambda ex: pagerank_dense(g, iterations=10, executor=ex)),
    ]


def _same(reference, result):
    if isinstance(reference, np.ndarray):
        # Chunk layout varies with the worker count, so cross-worker
        # PageRank is allclose; bit-equality across *backends* at a fixed
        # layout is asserted in tests/parallel/test_backends.py.
        return np.allclose(reference, result, rtol=0, atol=1e-12)
    return reference == result


def _run():
    g = barabasi_albert(3000, 5, seed=2)
    rows = []
    for name, fn in _workloads(g):
        serial_start = time.perf_counter()
        reference = fn(None)
        serial_seconds = time.perf_counter() - serial_start
        for workers in WORKER_COUNTS:
            with ParallelExecutor(backend=BACKEND, workers=workers) as ex:
                start = time.perf_counter()
                result = fn(ex)
                seconds = time.perf_counter() - start
                efficiency = ex.efficiency
            assert _same(reference, result), (name, workers)
            rows.append(
                [
                    name,
                    BACKEND,
                    workers,
                    round(serial_seconds, 4),
                    round(seconds, 4),
                    round(serial_seconds / seconds, 2),
                    round(efficiency, 3),
                ]
            )
    return rows


def test_claim_c17_parallel_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "parallel_scaling",
        f"Multicore scaling ({BACKEND} backend) on BA(3000, 5), {CORES} cores",
        ["workload", "backend", "workers", "serial_s", "parallel_s",
         "speedup", "efficiency"],
        rows,
    )
    by_key = {(r[0], r[2]): r for r in rows}
    if BACKEND == "process" and CORES >= 4:
        # The headline acceptance number needs real cores under it.
        assert by_key[("matching k4", 4)][5] >= 2.5
        assert by_key[("triangles", 4)][5] >= 1.5
    # Equivalence held for every row (asserted in _run); efficiency is a
    # well-formed gauge everywhere.
    assert all(0.0 <= r[6] <= 1.0 for r in rows)
