"""C17 — multicore scaling of matching, triangles and PageRank.

Paper claim (Section 1): single-machine systems increasingly exploit
shared-memory parallelism — the same CSR arrays served to many cores —
instead of distribution; speedup then hinges on load balance and on
keeping per-task state tiny (zero-copy graph sharing).

Reproduced shape: the ``repro.parallel`` executor fans root-level task
chunks over 1/2/4/8 workers.  Every worker count returns *identical*
counts (and chunk-deterministic PageRank vectors).  Each count is run
twice — **cold** (the first fan-out pays pool spawn + CSR publish) and
**warm** (a second executor borrows the long-lived pool and the
already-shared CSR) — so the artifact shows exactly what the persistent
pool amortizes.  A final ``auto`` pass per workload lets the calibrated
cost model pick the backend after the fixed passes taught it; auto may
never lose more than 10% to the best fixed row.  On a multicore host
the warm process backend reaches >= 2.5x at 4 workers on the matching
workload.  On single-core CI runners the speedup assertions are skipped
but the equivalence and auto-regret assertions still run; the report
records whatever the host measured
(artifact: ``results/parallel_scaling.json``).
"""

import os
import time

import numpy as np
import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.pattern import clique_pattern
from repro.matching.triangles import triangle_count
from repro.parallel import (
    ParallelExecutor,
    reset_default_cost_model,
    shutdown_pools,
)
from repro.tlav import pagerank_dense

#: Honour the repo-wide backend knob; default to real processes since
#: that is the backend whose scaling the claim is about.
BACKEND = os.environ.get("REPRO_BACKEND") or "process"
WORKER_COUNTS = (1, 2, 4, 8)
AUTO_WORKERS = 4
CORES = os.cpu_count() or 1

#: Auto-regret gate: auto wall time may exceed the best fixed row by at
#: most 10% (plus a small absolute slack for timer noise on fast rows).
AUTO_REGRET = 1.10
AUTO_SLACK_SECONDS = 0.05


def _workloads(g):
    return [
        ("matching k4", lambda ex: count_matches(g, clique_pattern(4), executor=ex)),
        ("triangles", lambda ex: triangle_count(g, executor=ex)),
        ("pagerank", lambda ex: pagerank_dense(g, iterations=10, executor=ex)),
    ]


def _same(reference, result):
    if isinstance(reference, np.ndarray):
        # Chunk layout varies with the worker count, so cross-worker
        # PageRank is allclose; bit-equality across *backends* at a fixed
        # layout is asserted in tests/parallel/test_backends.py.
        return np.allclose(reference, result, rtol=0, atol=1e-12)
    return reference == result


def _timed_row(name, backend, pool_state, workers, serial_seconds, fn, reference):
    with ParallelExecutor(backend=backend, workers=workers) as ex:
        start = time.perf_counter()
        result = fn(ex)
        seconds = time.perf_counter() - start
        efficiency = ex.efficiency
        resolved = ex._last_backend
    assert _same(reference, result), (name, backend, workers)
    shown = backend if backend != "auto" else f"auto:{resolved}"
    return [
        name,
        shown,
        pool_state,
        workers,
        round(serial_seconds, 4),
        round(seconds, 4),
        round(serial_seconds / seconds, 2),
        round(efficiency, 3),
    ]


def _run():
    g = barabasi_albert(3000, 5, seed=2)
    # A hermetic artifact: no pools or calibration inherited from earlier
    # tests in the same process.
    shutdown_pools()
    reset_default_cost_model()
    rows = []
    for name, fn in _workloads(g):
        serial_start = time.perf_counter()
        reference = fn(None)
        serial_seconds = time.perf_counter() - serial_start
        for workers in WORKER_COUNTS:
            # Cold: this executor's fan-out spawns the pool and publishes
            # the CSR.  Warm: a fresh executor borrows both from the
            # process-wide registry — the persistent-pool payoff.
            rows.append(
                _timed_row(name, BACKEND, "cold", workers,
                           serial_seconds, fn, reference)
            )
            rows.append(
                _timed_row(name, BACKEND, "warm", workers,
                           serial_seconds, fn, reference)
            )
        # Auto after the fixed passes: the cost model has seen serial and
        # BACKEND rates for these fn keys and picks per call.
        rows.append(
            _timed_row(name, "auto", "warm", AUTO_WORKERS,
                       serial_seconds, fn, reference)
        )
    shutdown_pools()
    return rows


def test_claim_c17_parallel_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "parallel_scaling",
        f"Multicore scaling ({BACKEND} backend, cold vs warm pool) "
        f"on BA(3000, 5), {CORES} cores",
        ["workload", "backend", "pool", "workers", "serial_s", "parallel_s",
         "speedup", "efficiency"],
        rows,
    )
    fixed = {(r[0], r[2], r[3]): r for r in rows if not r[1].startswith("auto")}
    autos = [r for r in rows if r[1].startswith("auto")]
    if BACKEND == "process" and CORES >= 4:
        # The headline acceptance numbers need real cores under them —
        # and the warm pool, since cold rows still pay spawn + publish.
        assert fixed[("matching k4", "warm", 4)][6] >= 2.5
        assert fixed[("triangles", "warm", 4)][6] >= 1.5
        warm_wins = sum(
            1 for (name, pool, workers), r in fixed.items()
            if pool == "warm" and workers == 4 and r[6] > 1.0
        )
        assert warm_wins >= 2
    # Auto regret: on every workload, auto at AUTO_WORKERS is within 10%
    # of the best fixed option (serial or any measured fixed row).
    for row in autos:
        name = row[0]
        best = min(
            [r[5] for (n, _, _), r in fixed.items() if n == name]
            + [row[4]]  # serial_s
        )
        assert row[5] <= AUTO_REGRET * best + AUTO_SLACK_SECONDS, (name, row, best)
    # Equivalence held for every row (asserted in _run); efficiency is a
    # well-formed gauge everywhere.
    assert all(0.0 <= r[7] <= 1.0 for r in rows)
