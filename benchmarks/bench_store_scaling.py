"""X6 — on-disk store build cost and paged-vs-in-memory analytics.

Paper claim (Sections 3-4): out-of-core single-machine systems trade
sequential disk bandwidth for memory capacity — a partitioned on-disk
layout lets one machine analyze graphs larger than RAM at a bounded,
predictable slowdown, and the *answers* must not change because the
CSR arrays now live behind a paging boundary.

Reproduced shape: at three graph scales we materialize a range-
partitioned store (one-shot and chunked ingest — byte-identical by
construction, asserted via the manifest checksums), then run PageRank
and WCC twice:
over the in-memory graph and over the stored graph opened with a shard
cache capped at half the store's pageable bytes, so every pass evicts
and re-pages shards.  Both runs are bit-identical at every scale; the
report records build/ingest cost, paging traffic and the paged-over-
in-memory slowdown (artifact: ``results/store_scaling.json``).
"""

import time

import numpy as np

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.graph.store import Manifest, build_store, ingest_edge_stream, open_store
from repro.tlav import pagerank_dense, wcc_dense

#: (label, n, attach_m, num_parts) — small enough for CI, large enough
#: that the capped cache must page shards in and out every pass.
SCALES = (
    ("small", 2_000, 4, 4),
    ("medium", 8_000, 5, 6),
    ("large", 20_000, 5, 8),
)
ITERATIONS = 10


def _edge_stream(graph):
    indptr, indices = graph.indptr, graph.indices
    for u in range(graph.num_vertices):
        for v in indices[indptr[u]:indptr[u + 1]]:
            if u <= v:  # undirected CSR holds both directions once each
                yield u, int(v)


def _file_signature(manifest):
    return [
        (e.path, e.nbytes, e.crc32)
        for p in manifest.partitions
        for e in p.files.values()
    ]


def _run(tmp_root):
    rows = []
    for label, n, m, parts in SCALES:
        graph = barabasi_albert(n, m, seed=11)

        one_shot = tmp_root / f"{label}-one"
        chunked = tmp_root / f"{label}-chunk"

        start = time.perf_counter()
        build_store(graph, one_shot, partition="range", num_parts=parts)
        build_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ingest_edge_stream(
            _edge_stream(graph), graph.num_vertices, chunked,
            partition="range", num_parts=parts, chunk_edges=50_000,
        )
        ingest_seconds = time.perf_counter() - start

        assert _file_signature(Manifest.load(one_shot)) == \
            _file_signature(Manifest.load(chunked)), label

        start = time.perf_counter()
        mem_pr = pagerank_dense(graph, iterations=ITERATIONS)
        mem_wcc = wcc_dense(graph)
        mem_seconds = time.perf_counter() - start

        manifest = Manifest.load(one_shot)
        budget = max(1, manifest.shard_bytes // 2)
        with open_store(one_shot, cache_budget=budget) as stored:
            start = time.perf_counter()
            paged_pr = pagerank_dense(stored, iterations=ITERATIONS)
            paged_wcc = wcc_dense(stored)
            paged_seconds = time.perf_counter() - start
            stats = stored.cache_stats()

        np.testing.assert_array_equal(mem_pr, paged_pr)
        np.testing.assert_array_equal(mem_wcc, paged_wcc)
        assert stats["evictions"] > 0, (label, stats)
        assert stats["bytes_paged"] > manifest.shard_bytes, (label, stats)

        rows.append(
            [
                label,
                n,
                int(graph.indices.size),
                parts,
                manifest.shard_bytes,
                budget,
                round(build_seconds, 4),
                round(ingest_seconds, 4),
                round(mem_seconds, 4),
                round(paged_seconds, 4),
                round(paged_seconds / mem_seconds, 2),
                stats["bytes_paged"],
                stats["evictions"],
            ]
        )
    return rows


def test_claim_x6_store_scaling(benchmark, tmp_path):
    rows = benchmark.pedantic(_run, args=(tmp_path,), rounds=1, iterations=1)
    report(
        "store_scaling",
        f"Store build + paged analytics at 50% shard-cache budget, "
        f"pagerank x{ITERATIONS} + wcc",
        ["scale", "n", "edge_slots", "parts", "shard_bytes", "budget",
         "build_s", "ingest_s", "mem_s", "paged_s", "slowdown",
         "bytes_paged", "evictions"],
        rows,
    )
    # Every scale produced bit-identical answers under real paging
    # (asserted in _run); the paging traffic must grow with the graph.
    assert len(rows) == len(SCALES)
    paged = [r[11] for r in rows]
    assert paged == sorted(paged)
