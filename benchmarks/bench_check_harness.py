"""Differential harness economics: what a correctness gate costs.

The ``repro.check`` harness is a CI gate, so its cost profile matters:
a suite too slow gets skipped, a shrinker too slow leaves reproducers
unminimised.  This bench measures both halves on the real registry:

* **suite cost per subsystem**: wall-clock and case counts for the
  quick suite, seed 0 — the exact configuration the CI gate runs.
* **shrinking economics**: evaluations and size reduction when
  minimising synthetic failures with known thresholds, confirming the
  greedy shrinker lands on the decision boundary in a bounded number
  of oracle evaluations.

Writes ``benchmarks/results/check_harness.json`` alongside the usual
table artifacts.
"""

import json
import os
from collections import defaultdict

from _harness import RESULTS_DIR, report
from repro.check import load_all, run_suite
from repro.check.registry import INVARIANT, Check
from repro.check.shrink import shrink_case
from repro.obs import MetricsRegistry


def _suite_cost():
    """Per-subsystem cost of the CI-gate configuration (quick, seed 0)."""
    registry = load_all()
    obs = MetricsRegistry()
    report_ = run_suite(suite="quick", seed=0, registry=registry, obs=obs)
    per_subsystem = defaultdict(lambda: {"cases": 0, "seconds": 0.0})
    for result in report_.results:
        bucket = per_subsystem[result.subsystem]
        bucket["cases"] += 1
        bucket["seconds"] += result.seconds
    return report_, {k: dict(v) for k, v in sorted(per_subsystem.items())}


def _shrink_economics():
    """Known-threshold failures: evals spent vs reduction achieved."""
    scenarios = [
        ("one_axis", {"n": 1 << 20}, {"n": 1},
         lambda p: ["bad"] if p["n"] >= 37 else []),
        ("two_axis", {"a": 5000, "b": 9000}, {"a": 1, "b": 1},
         lambda p: ["bad"] if p["a"] >= 12 and p["b"] >= 30 else []),
        ("crash", {"n": 4096}, {"n": 1},
         lambda p: (_ for _ in ()).throw(RuntimeError("boom"))
         if p["n"] >= 5 else []),
    ]
    rows = []
    for name, start, floors, run in scenarios:
        check = Check(
            name=f"bench.{name}", subsystem="bench", relation=INVARIANT,
            gen=lambda rng: {}, run=run, floors=floors,
        )
        result = shrink_case(check, dict(start))
        before = sum(v for v in start.values())
        after = sum(v for v in result.params.values())
        rows.append({
            "scenario": name,
            "start": dict(start),
            "shrunk": result.params,
            "evals": result.evals,
            "steps": result.steps,
            "reduction": 1.0 - after / before,
        })
    return rows


def _run():
    suite_report, per_subsystem = _suite_cost()
    shrink_rows = _shrink_economics()

    rows = [
        [sub, stats["cases"], f"{stats['seconds']:.3f}s", "suite"]
        for sub, stats in per_subsystem.items()
    ]
    rows += [
        [r["scenario"], r["evals"], f"{r['reduction']:.1%}", "shrink"]
        for r in shrink_rows
    ]

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "check_harness.json"), "w") as fh:
        json.dump(
            {
                "suite": suite_report.as_dict(),
                "per_subsystem": per_subsystem,
                "shrink": shrink_rows,
            },
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return suite_report, per_subsystem, shrink_rows, rows


def test_check_harness_economics(benchmark):
    suite_report, per_subsystem, shrink_rows, rows = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    report(
        "check_gate",
        "Differential harness: suite cost per subsystem, shrink economics",
        ["target", "cases/evals", "cost", "kind"],
        rows,
    )
    # The CI-gate configuration is green and covers every subsystem.
    assert suite_report.ok
    assert suite_report.pairs_run >= 12
    assert len(per_subsystem) >= 6
    # Greedy shrinking lands on the decision boundary...
    by_name = {r["scenario"]: r for r in shrink_rows}
    assert by_name["one_axis"]["shrunk"] == {"n": 37}
    assert by_name["two_axis"]["shrunk"] == {"a": 12, "b": 30}
    assert by_name["crash"]["shrunk"] == {"n": 5}
    # ...with bounded oracle evaluations despite huge starting points.
    assert all(r["evals"] <= 200 for r in shrink_rows)
    assert all(r["reduction"] > 0.99 for r in shrink_rows)
