"""T1 — regenerate Table 1: systems for subgraph search.

The paper's Table 1 is a feature matrix of TLAG systems.  This bench
(a) prints the taxonomy's rendering of the table, (b) *executes* one
representative engine per computing-model family on a shared workload
(triangle + 4-clique counting on the same graph), verifying that every
family produces identical answers while exhibiting its characteristic
resource profile, and (c) cross-checks the table's feature flags
against what the implementing modules actually expose.
"""

import pytest

from _harness import report
from repro.core.taxonomy import TABLE1_SYSTEMS, render_table1
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.codegen import compile_matcher, prepare_adjacency
from repro.matching.pattern import clique_pattern, triangle_pattern
from repro.tlag.aimd import aimd_enumerate
from repro.tlag.engine import TaskEngine
from repro.tlag.hybrid import hybrid_match
from repro.tlag.programs import KCliqueProgram
from repro.tlag.warp import warp_match


def _run():
    g = barabasi_albert(150, 4, seed=10)
    pattern = clique_pattern(4)
    expected = count_matches(g, pattern)

    rows = []
    # DFS task engine (G-thinker family).
    engine = TaskEngine(g, KCliqueProgram(4), num_workers=4, task_budget=50)
    found = len(engine.run())
    rows.append(
        ["DFS tasks (G-thinker)", found, f"peak tasks {engine.stats.peak_pending_tasks}",
         f"steals {engine.stats.steals}"]
    )
    # BFS extension (Arabesque family) via the AIMD variant with a big
    # device (pure BFS) — cliques via filter.
    def is_clique(emb, graph):
        return all(
            graph.has_edge(a, b)
            for i, a in enumerate(emb)
            for b in emb[i + 1:]
        )

    embeddings, stats = aimd_enumerate(
        g, 4, device_capacity=10**9, keep_filter=is_clique, adaptive=False
    )
    rows.append(
        ["BFS extension (Arabesque)", len(embeddings),
         f"peak embeddings {stats.peak_device_embeddings}", "-"]
    )
    # Compiled matching (AutoMine family).
    func = compile_matcher(pattern)
    adj, adjset = prepare_adjacency(g)
    rows.append(["compiled (AutoMine)", func(adj, adjset, g.num_vertices), "-", "-"])
    # Warp DFS (STMatch family).
    warp = warp_match(g, pattern, num_warps=8, warp_width=16)
    rows.append(
        ["warp DFS (STMatch)", warp.embeddings,
         f"divergence {warp.divergence:.2f}", f"steals {warp.steals}"]
    )
    # Hybrid (EGSM).
    count, hstats = hybrid_match(g, pattern, memory_budget=500)
    rows.append(
        ["hybrid (EGSM)", count,
         f"switch@{hstats.switch_level}", f"peak {hstats.peak_resident}"]
    )
    for row in rows:
        assert row[1] == expected
    return rows


def test_table1_feature_flags_consistent():
    """Table flags vs implementation surface."""
    by_name = {s.name: s for s in TABLE1_SYSTEMS}
    # DFS family supports SF but not pattern-matching-only restriction.
    assert by_name["G-thinker"].work_stealing
    assert by_name["AutoMine"].compilation
    assert by_name["G-thinkerQ"].interactive
    assert by_name["EGSM"].extension == "hybrid"
    assert by_name["G2-AIMD"].memory_bounding
    assert by_name["T-FSM"].supports_fsm and not by_name["T-FSM"].supports_sf


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_text = render_table1()
    print("\n" + table_text)
    report(
        "T1",
        "Table 1 regenerated + one engine per family on K4 counting "
        "(all counts equal)",
        ["computing-model family", "K4 count", "memory profile", "balance"],
        rows,
    )
    import os

    from _harness import RESULTS_DIR

    with open(os.path.join(RESULTS_DIR, "T1_table.txt"), "w") as handle:
        handle.write(table_text + "\n")
    counts = {row[1] for row in rows}
    assert len(counts) == 1
