"""C14 — structural pattern features power graph classification.

Paper claim (Section 1): "frequent subgraph structural patterns have
been found informative in conventional models for graph classification
and regression" [28, 31], and classic structural features can outperform
embedding methods [35].

Reproduced shape: on a two-class molecule-like database with a planted
labeled motif, FSM-derived pattern features beat a degree-histogram
baseline with the same shallow classifier.
"""

import numpy as np
import pytest

from _harness import report
from repro.core.features import logistic_regression
from repro.core.structure_features import (
    degree_histogram_features,
    pattern_feature_matrix,
)
from repro.graph.csr import Graph
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase


def _run():
    motif = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1]
    )
    pos = random_labeled_transactions(
        24, 9, 0.15, 2, seed=1, planted=motif, plant_fraction=1.0
    )
    neg = random_labeled_transactions(24, 9, 0.15, 2, seed=2, id_offset=24)
    db = TransactionDatabase(pos + neg)
    labels = np.array([1] * 24 + [0] * 24)
    rng = np.random.default_rng(7)
    train = np.zeros(len(db), dtype=bool)
    train[rng.permutation(len(db))[:32]] = True
    test = ~train

    rows = []
    x_pat, patterns = pattern_feature_matrix(db, min_support=12, max_edges=3)
    x_deg = degree_histogram_features(db)
    for name, x in [("FSM pattern features", x_pat), ("degree histogram", x_deg)]:
        model = logistic_regression(x[train], labels[train], epochs=300)
        acc_train = model.score(x[train], labels[train])
        acc_test = model.score(x[test], labels[test])
        rows.append([name, x.shape[1], round(acc_train, 3), round(acc_test, 3)])
    rows.append(["(mined patterns)", len(patterns), "-", "-"])
    return rows


def test_claim_c14_struct_features(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C14",
        "Graph classification: pattern features vs degree baseline",
        ["featurization", "dims/patterns", "train acc", "test acc"],
        rows,
    )
    fsm, degree = rows[0], rows[1]
    assert fsm[3] >= degree[3]
    assert fsm[3] > 0.7
