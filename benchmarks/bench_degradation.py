"""X7 — graceful degradation: availability and tail latency vs fault rate.

Paper claim (Sections 2, 6): serving-oriented graph systems survive
partial failure by *degrading* rather than failing — interactive
front-ends (Quegel, G-thinkerQ, DL-serving stacks) keep answering from
cached or stale state while the backend is unhealthy, because an
answer from the previous epoch usually beats no answer at all.

Reproduced shape: the same warm/bump/storm request sequence is served
under injected endpoint failures at a sweep of fault rates, once with
the full degradation ladder (circuit breakers + stale-while-revalidate
cache fallback) and once fail-hard (failures surface as errors after
the hedged retry).  The ladder holds availability at 1.0 across the
sweep — every storm request has a stale epoch to fall back to — while
fail-hard availability decays with the fault rate; ladder p99 stays
flat because degraded answers cost one cache-hit op.  Artifact:
``results/degradation.json``.
"""

import numpy as np
import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.resilience.faults import FaultPlan
from repro.serve import GraphRegistry, Server, builtin_endpoints
from repro.serve.breaker import BreakerConfig
from repro.serve.loadgen import _exact_percentile
from repro.serve.scheduler import Request

#: Per-request failure probability swept over both modes.  The sweep
#: starts at 0.5: below that the one deterministic hedged retry almost
#: always masks the fault outright (both modes sit at 1.0), so the
#: ladder-vs-fail-hard contrast only opens up once double failures are
#: likely.
FAULT_RATES = (0.0, 0.5, 0.7, 0.85, 0.95)
STORM_REQUESTS = 80
SEED = 0

#: Closed parameter pool: the warm wave covers it exactly, so under the
#: ladder every storm request has a stale cache entry to degrade to.
POOL = tuple(
    [("tlav.pagerank", {"iterations": it}) for it in (3, 4, 5, 6)]
    + [("tlav.bfs", {"source": s}) for s in range(6)]
    + [("matching.count", {"pattern": p}) for p in ("triangle", "diamond")]
    + [("gnn.predict", {"nodes": [v]}) for v in range(4)]
)


def _run_mode(rate, ladder, seed=SEED):
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(120, 3, seed=1))
    kwargs = dict(
        endpoints=builtin_endpoints(),
        num_workers=2,
        queue_bound=64,
        batch_window=0,
        enable_cache=True,
    )
    if ladder:
        kwargs.update(
            breaker=BreakerConfig(
                window=8, failure_threshold=0.5, min_samples=4,
                open_ops=2_000, half_open_probes=1,
            ),
            degrade=True,
            max_stale_epochs=8,
        )
    server = Server(graphs, **kwargs)

    # Warm wave: fault-free, covers the pool, populates the cache.
    for i, (endpoint, params) in enumerate(POOL):
        server.submit(Request(
            endpoint=endpoint, params=dict(params),
            tenant="warm", arrival=i * 80,
        ))
    warm = server.run()
    assert all(r.status == "ok" for r in warm)

    # Epoch bump: the warm entries go stale (fallback fodder, not hits).
    graphs.replace("default", barabasi_albert(120, 3, seed=2))
    if rate > 0:
        server.injector = (
            FaultPlan(seed=seed).fail_endpoint("*", rate).build()
        )

    rng = np.random.default_rng(seed + 1)
    arrival = server.clock + 500
    for _ in range(STORM_REQUESTS):
        arrival += int(rng.integers(60, 260))
        endpoint, params = POOL[int(rng.integers(len(POOL)))]
        server.submit(Request(
            endpoint=endpoint, params=dict(params),
            tenant=str(rng.choice(["alice", "bob"])), arrival=arrival,
        ))
    storm = server.run()

    answered = [r for r in storm if r.status in ("ok", "degraded")]
    latencies = sorted(r.latency for r in answered)
    stats = server.stats
    return {
        "availability": round(len(answered) / len(storm), 4),
        "ok": sum(r.status == "ok" for r in storm),
        "degraded": sum(r.status == "degraded" for r in storm),
        "errors": sum(r.status == "error" for r in storm),
        "p50": _exact_percentile(latencies, 0.50) if latencies else 0,
        "p99": _exact_percentile(latencies, 0.99) if latencies else 0,
        "max_staleness": max((r.staleness for r in storm), default=0),
        "ledger_ok": (
            stats.in_flight == 0
            and stats.admitted
            == stats.completed + stats.shed + stats.expired + stats.degraded
        ),
    }


def _run():
    rows = []
    for rate in FAULT_RATES:
        for ladder in (False, True):
            summary = _run_mode(rate, ladder)
            assert summary["ledger_ok"], (rate, ladder)
            rows.append([
                rate, "ladder" if ladder else "fail-hard",
                summary["availability"], summary["ok"],
                summary["degraded"], summary["errors"],
                summary["p50"], summary["p99"], summary["max_staleness"],
            ])
    return rows


def test_claim_x7_degradation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "degradation",
        f"Availability vs fault rate over {STORM_REQUESTS} storm requests, "
        "ladder (breaker + stale fallback) vs fail-hard",
        ["fault_rate", "mode", "availability", "ok", "degraded",
         "errors", "p50", "p99", "max_staleness"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}

    # The sweep is deterministic at the fixed seed.
    assert _run_mode(0.5, True) == _run_mode(0.5, True)

    for rate in FAULT_RATES:
        ladder = by_key[(rate, "ladder")]
        hard = by_key[(rate, "fail-hard")]
        if rate == 0:
            # No faults: both modes answer everything, nothing degrades.
            assert ladder[2] == hard[2] == 1.0
            assert ladder[4] == 0
            continue
        # The headline claim: the ladder strictly beats fail-hard at
        # every nonzero fault rate, and holds full availability since
        # the warm wave covered the whole pool.
        assert ladder[2] > hard[2], (rate, ladder[2], hard[2])
        assert ladder[2] == 1.0
        # Degraded answers exist, are stale by exactly the one bumped
        # epoch, and never leak into the fail-hard run.
        assert ladder[4] > 0
        assert ladder[8] == 1
        assert hard[4] == 0 and hard[8] == 0

    # Fail-hard availability decays monotonically with the fault rate.
    hard_avail = [by_key[(rate, "fail-hard")][2] for rate in FAULT_RATES]
    assert all(a >= b for a, b in zip(hard_avail, hard_avail[1:]))

    # The ladder answers from the stale cache at one cache-hit op, so
    # its p99 under heavy faults stays at or below the fail-hard p99.
    top = FAULT_RATES[-1]
    assert by_key[(top, "ladder")][7] <= by_key[(top, "fail-hard")][7]
