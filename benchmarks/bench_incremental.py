"""X8 — streaming updates: incremental recomputation + partition-scoped
cache invalidation under an edge trickle.

Paper claim (Sections 2, 4): dynamic-graph systems (Kineograph,
KickStarter, GraphBolt and the temporal-GNN serving stacks) win by
reacting to an update stream *incrementally* — repairing only the state
a mutation batch perturbs — instead of recomputing from scratch per
snapshot, and by invalidating only the state the batch could have
touched instead of flushing every derived artifact.

Reproduced shape, two parts:

* **Part A (invalidation scope)** — the same seeded trickle (1% of
  edges mutated per batch) and the same hot adjacency workload are
  served twice through the full server stack: once with the cache's
  partition-scoped promotion on, once in whole-graph mode (every bump
  reclaims everything).  Partition scoping retains a strictly higher
  hit rate: most cached ``graph.neighbors`` footprints are disjoint
  from each batch's dirty partitions and get re-keyed to the new
  epoch instead of thrown away.
* **Part B (incremental vs recompute)** — a Gauss–Southwell delta
  PageRank absorbs the same trickle at three graph scales; the
  comparison point recomputes from scratch (same solver class, same
  tolerance) at every epoch.  Incremental wall-clock beats recompute
  at every scale, and the gap widens with n — per-batch repair work
  tracks the delta, not the graph.

Artifact: ``results/incremental.json``.
"""

import time

import numpy as np

from _harness import report
from repro.graph.delta import apply_edge_updates, random_edge_updates
from repro.graph.generators import barabasi_albert
from repro.graph.partition import hash_partition
from repro.graph.store import InMemoryGraph
from repro.serve import GraphRegistry, Server, builtin_endpoints
from repro.serve.scheduler import Request
from repro.tlav.incremental import IncrementalPageRank

SEED = 0

#: Part A: one graph, 1% of edges mutated per batch, hot adjacency set.
CACHE_N = 2000
CACHE_PARTS = 256
CACHE_BATCHES = 12
CACHE_HOT_NODES = 64
EDGE_FRACTION = 0.01

#: Part B: scales for incremental-vs-recompute (ISSUE floor: >= 3).
PR_SCALES = (1000, 4000, 16000)
PR_BATCHES = 5
PR_TOL = 1e-8


# ----------------------------------------------------------------------
# Part A — partition-scoped vs whole-graph invalidation, served
# ----------------------------------------------------------------------


def _run_cache_mode(partition_scoped):
    graph = barabasi_albert(CACHE_N, 3, seed=1)
    graphs = GraphRegistry()
    graphs.register(
        "default",
        InMemoryGraph(
            graph, partition=hash_partition(graph, CACHE_PARTS),
            name="default",
        ),
    )
    server = Server(
        graphs, endpoints=builtin_endpoints(),
        num_workers=2, queue_bound=256, batch_window=0,
    )
    server.cache.partition_scoped = partition_scoped
    batches = random_edge_updates(
        graph, CACHE_BATCHES, edge_fraction=EDGE_FRACTION, seed=SEED + 7
    )
    rng = np.random.default_rng(SEED)
    arrival = 0
    # Warm wave, then per batch: mutate, re-query the same hot set.
    waves = [None] + batches
    for wave in waves:
        if wave is not None:
            graphs.apply_updates("default", inserts=wave[0], deletes=wave[1])
        for _ in range(CACHE_HOT_NODES):
            arrival += 50
            server.submit(Request(
                endpoint="graph.neighbors",
                params={"node": int(rng.integers(CACHE_HOT_NODES))},
                tenant="hot", arrival=arrival,
            ))
        responses = server.run()
        assert all(r.ok for r in responses)
    cache = server.cache.as_dict()
    dirty_per_batch = [
        len(graphs.get("default").dirty_partitions(delta))
        for delta in (
            apply_edge_updates(
                graphs.get("default").graph.to_graph(), b[0], b[1]
            )[1]
            for b in batches[:1]
        )
    ]
    return {
        "hit_rate": cache["hit_rate"],
        "hits": cache["hits"],
        "promoted": cache["promoted"],
        "invalidated": cache["invalidated"],
        "sample_dirty_parts": dirty_per_batch[0],
    }


# ----------------------------------------------------------------------
# Part B — incremental PageRank vs recompute-per-epoch
# ----------------------------------------------------------------------


def _run_pagerank_scale(n):
    graph = barabasi_albert(n, 3, seed=2)
    batches = random_edge_updates(
        graph, PR_BATCHES, edge_fraction=EDGE_FRACTION, seed=SEED + 11
    )
    snapshots = []
    live = graph
    for ins, dels in batches:
        live, _ = apply_edge_updates(live, inserts=ins, deletes=dels)
        snapshots.append(live)

    inc = IncrementalPageRank(graph, tol=PR_TOL)  # initial solve untimed
    t0 = time.perf_counter()
    for ins, dels in batches:
        inc.apply(ins, dels)
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    finals = [
        IncrementalPageRank(snap, tol=PR_TOL).scores() for snap in snapshots
    ]
    scratch_s = time.perf_counter() - t0

    err = float(np.max(np.abs(inc.scores() - finals[-1])))
    return {
        "n": n,
        "edges": graph.num_edges,
        "incremental_s": round(incremental_s, 4),
        "scratch_s": round(scratch_s, 4),
        "speedup": round(scratch_s / max(incremental_s, 1e-9), 1),
        "ms_per_batch": round(1000.0 * incremental_s / PR_BATCHES, 3),
        "max_err": err,
    }


def _run():
    scoped = _run_cache_mode(True)
    whole = _run_cache_mode(False)
    cache_rows = [
        ["partition-scoped", scoped["hit_rate"], scoped["hits"],
         scoped["promoted"], scoped["invalidated"]],
        ["whole-graph", whole["hit_rate"], whole["hits"],
         whole["promoted"], whole["invalidated"]],
    ]
    pr_rows = [_run_pagerank_scale(n) for n in PR_SCALES]
    return cache_rows, pr_rows, scoped, whole


def test_claim_x8_incremental(benchmark):
    cache_rows, pr_rows, scoped, whole = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    report(
        "incremental",
        f"Streaming {EDGE_FRACTION:.0%}-of-edges trickle: cache invalidation "
        f"scope (n={CACHE_N}, {CACHE_PARTS} parts, {CACHE_BATCHES} batches) "
        "and incremental vs scratch PageRank",
        ["part", "mode_or_n", "hit_rate_or_inc_s", "hits_or_scratch_s",
         "promoted_or_speedup", "invalidated_or_ms_per_batch", "max_err"],
        [["cache"] + r + [""] for r in cache_rows]
        + [["pagerank", r["n"], r["incremental_s"], r["scratch_s"],
            r["speedup"], r["ms_per_batch"], r["max_err"]]
           for r in pr_rows],
    )

    # Headline A: partition scoping strictly beats whole-graph
    # invalidation under the trickle — promoted entries keep hitting.
    assert scoped["hit_rate"] > whole["hit_rate"], (scoped, whole)
    assert scoped["promoted"] > 0
    assert whole["promoted"] == 0

    # Headline B: incremental beats recompute-per-epoch wall-clock at
    # every scale, while agreeing with the scratch solve.
    for row in pr_rows:
        assert row["incremental_s"] < row["scratch_s"], row
        assert row["max_err"] < 1e-5, row
    # The advantage grows with scale: repair work tracks the delta.
    speedups = [r["speedup"] for r in pr_rows]
    assert speedups[-1] > speedups[0], speedups
