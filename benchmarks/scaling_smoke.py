"""CI smoke gate for auto-mode regret (satellite of the C17 bench).

Runs two C17 workloads at 4 workers — once serial, once on the fixed
process backend with a warm pool, once under ``backend="auto"`` after
the fixed passes calibrated the cost model — and **fails** (exit 1) if
auto's wall time loses more than 10% to the best fixed option on either
workload.  A small absolute slack absorbs timer noise on sub-50 ms rows
and single-core runners, where every backend collapses to roughly
serial speed and auto must simply not pick a pathological option.

Run from the repo root with::

    PYTHONPATH=src:benchmarks python benchmarks/scaling_smoke.py
"""

import sys
import time

from repro.graph.generators import barabasi_albert
from repro.matching.triangles import triangle_count
from repro.parallel import (
    ParallelExecutor,
    reset_default_cost_model,
    shutdown_pools,
)
from repro.tlav import pagerank_dense

WORKERS = 4
FIXED_BACKEND = "process"
AUTO_REGRET = 1.10
SLACK_SECONDS = 0.05


def _workloads(g):
    return [
        ("triangles", lambda ex: triangle_count(g, executor=ex)),
        ("pagerank", lambda ex: pagerank_dense(g, iterations=10, executor=ex)),
    ]


def _time(fn, ex):
    start = time.perf_counter()
    fn(ex)
    return time.perf_counter() - start


def main() -> int:
    g = barabasi_albert(2000, 5, seed=2)
    shutdown_pools()
    reset_default_cost_model()
    failures = []
    print(f"scaling smoke: {WORKERS} workers, fixed backend {FIXED_BACKEND}")
    for name, fn in _workloads(g):
        serial_s = _time(fn, None)
        with ParallelExecutor(backend=FIXED_BACKEND, workers=WORKERS) as ex:
            _time(fn, ex)  # cold: pays pool spawn + CSR publish
        with ParallelExecutor(backend=FIXED_BACKEND, workers=WORKERS) as ex:
            warm_s = _time(fn, ex)
        with ParallelExecutor(backend="auto", workers=WORKERS) as ex:
            auto_s = _time(fn, ex)
            chosen = ex._last_backend
        best = min(serial_s, warm_s)
        limit = AUTO_REGRET * best + SLACK_SECONDS
        verdict = "ok" if auto_s <= limit else "FAIL"
        print(
            f"  {name:<12} serial {serial_s:.4f}s  warm-{FIXED_BACKEND} "
            f"{warm_s:.4f}s  auto({chosen}) {auto_s:.4f}s  "
            f"limit {limit:.4f}s  {verdict}"
        )
        if auto_s > limit:
            failures.append(name)
    shutdown_pools()
    if failures:
        print(f"auto lost >10% to the best fixed backend on: {failures}")
        return 1
    print("auto within 10% of the best fixed backend on both workloads")
    return 0


if __name__ == "__main__":
    sys.exit(main())
