"""X3 — partitioner quality across graph families.

DESIGN.md's partitioning substrate backs experiments C8/T2/X2; this
ablation checks the design choice held across structural regimes: the
METIS-like multilevel partitioner must beat hash on edge cut for every
graph family the benches use (grid, small-world, power-law, planted
communities), with balance staying near 1.
"""

import pytest

from _harness import report
from repro.graph.generators import (
    barabasi_albert,
    grid_graph,
    planted_partition,
    watts_strogatz,
)
from repro.graph.partition import (
    balance,
    edge_cut_fraction,
    hash_partition,
    metis_like_partition,
)


def _run():
    families = [
        ("grid 14x14", grid_graph(14, 14)),
        ("watts-strogatz", watts_strogatz(200, 6, 0.05, seed=1)),
        ("barabasi-albert", barabasi_albert(200, 4, seed=1)),
        ("planted 4x50", planted_partition(4, 50, 0.12, 0.005, seed=1)[0]),
    ]
    rows = []
    for name, g in families:
        hash_cut = edge_cut_fraction(g, hash_partition(g, 4))
        metis = metis_like_partition(g, 4, seed=0)
        metis_cut = edge_cut_fraction(g, metis)
        rows.append(
            [
                name,
                round(hash_cut, 3),
                round(metis_cut, 3),
                round(hash_cut / max(metis_cut, 1e-9), 1),
                round(balance(metis), 3),
            ]
        )
    return rows


def test_ablation_x3_partitioners(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "X3",
        "METIS-like vs hash edge cut across graph families (4 parts)",
        ["graph family", "hash cut", "metis-like cut", "improvement x",
         "metis balance"],
        rows,
    )
    for row in rows:
        assert row[2] < row[1]          # metis-like wins everywhere
        assert row[4] < 1.4             # while staying balanced
