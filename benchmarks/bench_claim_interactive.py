"""C15 — interactive querying (G-thinkerQ) vs one-job-at-a-time.

Paper claim (Section 2): G-thinkerQ "efficiently supports interactive
online querying where users continually submit subgraph queries" —
short queries no longer wait behind long ones, improving response
times over running jobs back to back.

Reproduced shape: with a mix of heavy and trivial queries, the fair
shared scheduler's mean and tail response times beat the sequential
baseline, at identical answers.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.pattern import (
    clique_pattern,
    diamond_pattern,
    path_pattern,
    tailed_triangle_pattern,
    triangle_pattern,
)
from repro.tlag.query import Query, QueryServer


def _run():
    g = barabasi_albert(200, 3, seed=9)
    # Heavy analytical queries arrive first; interactive lookups follow
    # at staggered times — the sequencing where one-job-at-a-time
    # scheduling hurts most.  Response time is what the user waited:
    # completion minus arrival (not the raw completion clock).
    mix = [
        ("diamond (heavy)", diamond_pattern(), 0),
        ("tailed-tri (heavy)", tailed_triangle_pattern(), 0),
        ("edge (trivial)", path_pattern(2), 50),
        ("triangle (light)", triangle_pattern(), 100),
        ("K4 (light)", clique_pattern(4), 150),
    ]
    shared = QueryServer(g, num_workers=4)
    sequential = QueryServer(g, num_workers=4)
    for _, pattern, arrival in mix:
        shared.submit(Query(pattern, arrival=arrival))
        sequential.submit(Query(pattern, arrival=arrival))
    shared_results = shared.serve()
    seq_results = sequential.run_sequentially()

    rows = []
    for (name, _, _), a, b in zip(mix, shared_results, seq_results):
        assert a.embeddings == b.embeddings
        rows.append([name, a.embeddings, a.response_time, b.response_time])
    mean_shared = sum(r.response_time for r in shared_results) / len(mix)
    mean_seq = sum(r.response_time for r in seq_results) / len(mix)
    rows.append(["MEAN", "-", round(mean_shared, 1), round(mean_seq, 1)])
    return rows


def test_claim_c15_interactive(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C15",
        "Concurrent subgraph queries: shared engine vs sequential",
        ["query", "embeddings", "shared response", "sequential response"],
        rows,
    )
    mean_row = rows[-1]
    assert mean_row[2] <= mean_row[3]
    # Every light query submitted behind the heavy ones responds faster
    # under fair sharing.
    for light in rows[2:5]:
        assert light[2] < light[3]
