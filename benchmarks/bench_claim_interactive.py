"""C15 — interactive querying (G-thinkerQ) vs one-job-at-a-time.

Paper claim (Section 2): G-thinkerQ "efficiently supports interactive
online querying where users continually submit subgraph queries" —
short queries no longer wait behind long ones, improving response
times over running jobs back to back.

Reproduced shape: with a mix of heavy and trivial queries, the fair
shared scheduler's mean and tail response times beat the sequential
baseline, at identical answers.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.matching.pattern import (
    clique_pattern,
    diamond_pattern,
    path_pattern,
    tailed_triangle_pattern,
    triangle_pattern,
)
from repro.tlag.query import Query, QueryServer


def _run():
    g = barabasi_albert(200, 3, seed=9)
    # Heavy analytical queries arrive first; interactive lookups follow
    # — the sequencing where one-job-at-a-time scheduling hurts most.
    mix = [
        ("diamond (heavy)", diamond_pattern()),
        ("tailed-tri (heavy)", tailed_triangle_pattern()),
        ("edge (trivial)", path_pattern(2)),
        ("triangle (light)", triangle_pattern()),
        ("K4 (light)", clique_pattern(4)),
    ]
    shared = QueryServer(g, num_workers=4)
    sequential = QueryServer(g, num_workers=4)
    for _, pattern in mix:
        shared.submit(Query(pattern))
        sequential.submit(Query(pattern))
    shared_results = shared.serve()
    seq_results = sequential.run_sequentially()

    rows = []
    for (name, _), a, b in zip(mix, shared_results, seq_results):
        assert a.embeddings == b.embeddings
        rows.append([name, a.embeddings, a.completion_time, b.completion_time])
    mean_shared = sum(r.completion_time for r in shared_results) / len(mix)
    mean_seq = sum(r.completion_time for r in seq_results) / len(mix)
    rows.append(["MEAN", "-", round(mean_shared, 1), round(mean_seq, 1)])
    return rows


def test_claim_c15_interactive(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C15",
        "Concurrent subgraph queries: shared engine vs sequential",
        ["query", "embeddings", "shared completion", "sequential completion"],
        rows,
    )
    mean_row = rows[-1]
    assert mean_row[2] <= mean_row[3]
    # Every light query submitted behind the heavy ones finishes earlier
    # under fair sharing.
    for light in rows[2:5]:
        assert light[2] < light[3]
