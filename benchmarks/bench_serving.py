"""X5 — serving-layer trade-offs: offered load × batching × caching.

Paper claim (Sections 2, 6): analytics and GNN systems increasingly run
*as services* — Quegel batches concurrent queries into shared
supersteps, G-thinkerQ multiplexes interactive subgraph queries over
one engine, and DL-serving stacks coalesce inference requests into
batched forward passes behind an admission queue.

Reproduced shape: the ``repro.serve`` front door sweeps offered load
(Poisson inter-arrival), the micro-batch window, and the versioned
result cache over the full endpoint mix (one endpoint per engine
family).  Batching earns its keep at high load (mean batch size grows,
the engine-call count drops), the cache converts duplicate requests
into ~1-op responses, and every configuration keeps the admission
ledger exact with bit-identical results (the serve oracles gate that
separately).  Artifact: ``results/serving.json``.
"""

import pytest

from _harness import report
from repro.graph.generators import barabasi_albert
from repro.serve import GraphRegistry, Server, builtin_endpoints, open_loop
from repro.serve.loadgen import _exact_percentile, _family_mix

NUM_REQUESTS = 60
#: mean inter-arrival in simulated ops: light, saturating, overloaded.
LOADS = (600, 150, 40)
WINDOWS = (0, 128)


def _run_config(mean_interarrival, window, cache, max_batch=8, seed=0):
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(120, 3, seed=1))
    server = Server(
        graphs,
        endpoints=builtin_endpoints(),
        num_workers=2,
        queue_bound=64,
        batch_window=window,
        max_batch=max_batch,
        enable_cache=cache,
    )
    for request in open_loop(
        _family_mix(120), NUM_REQUESTS, mean_interarrival,
        tenants=("alice", "bob"), seed=seed,
    ):
        server.submit(request)
    responses = server.run()

    served = sorted(
        r.latency for r in responses if r.status in ("ok", "error")
    )
    stats = server.stats
    engine_calls = int(server.obs.counter("serve.batches").total)
    batch_sizes = [r.batch_size for r in responses if r.ok and not r.cache_hit]
    return {
        "p50": _exact_percentile(served, 0.50),
        "p95": _exact_percentile(served, 0.95),
        "p99": _exact_percentile(served, 0.99),
        "shed": stats.shed,
        "expired": stats.expired,
        "deadline_misses": stats.deadline_misses,
        "cache_hits": server.cache.hits if server.cache else 0,
        "hit_rate": round(server.cache.hit_rate, 3) if server.cache else 0.0,
        "mean_batch": (
            round(sum(batch_sizes) / len(batch_sizes), 2) if batch_sizes else 0.0
        ),
        "engine_calls": engine_calls,
        "ledger_ok": (
            stats.in_flight == 0
            and stats.admitted == stats.completed + stats.shed + stats.expired
        ),
    }


def _run():
    rows = []
    for load in LOADS:
        for window in WINDOWS:
            for cache in (False, True):
                summary = _run_config(load, window, cache)
                assert summary["ledger_ok"], (load, window, cache)
                rows.append([
                    load, window, "on" if cache else "off",
                    summary["p50"], summary["p95"], summary["p99"],
                    summary["mean_batch"], summary["cache_hits"],
                    summary["hit_rate"], summary["shed"],
                    summary["deadline_misses"],
                ])
    return rows


def test_claim_x5_serving(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "serving",
        f"Serving trade-offs over {NUM_REQUESTS} mixed requests, 2 workers",
        ["interarrival", "window", "cache", "p50", "p95", "p99",
         "mean_batch", "hits", "hit_rate", "shed", "misses"],
        rows,
    )
    by_key = {(r[0], r[1], r[2]): r for r in rows}

    # The whole sweep is deterministic at the fixed seed.
    assert _run_config(LOADS[0], 0, True) == _run_config(LOADS[0], 0, True)

    # Caching converts duplicate requests into hits at light load.
    assert by_key[(600, 0, "on")][7] > 0

    # Batching engages under overload: coalescing yields fewer, larger
    # engine calls than serving every request individually.
    batched = _run_config(40, 128, False)
    unbatched = _run_config(40, 0, False, max_batch=1)
    assert batched["mean_batch"] > 1.0
    assert batched["engine_calls"] < unbatched["engine_calls"]

    # Latency percentiles are well-ordered everywhere.
    assert all(r[3] <= r[4] <= r[5] for r in rows)
