"""X1 — ablation: the presenter-lineage TLAV optimizations.

Section 7 of the paper credits the presenters with the BigGraph@CUHK
TLAV stack: Pregel+ (message reduction by mirroring), Blogel
(block-centric computation), Quegel (query-centric batching), GraphD
(out-of-core execution) and LWCP (lightweight checkpointing).  Each of
those systems' headline claims is reproduced here on one shared graph:

* mirroring cuts broadcast messages at hub vertices;
* block-centric WCC needs far fewer global rounds than vertex-centric;
* batched point queries share superstep overhead;
* out-of-core execution (paging CSR shards through a zero-budget
  cache) computes exact results with bounded structure memory;
* light checkpoints are smaller than full ones, while recovery stays
  exact.
"""

import numpy as np
import pytest

from _harness import report
from repro.graph.generators import barabasi_albert, path_graph
from repro.graph.partition import hash_partition, range_partition
from repro.graph.store import build_store, open_store
from repro.tlav import (
    CheckpointedEngine,
    PointQuery,
    QuegelEngine,
    message_cost,
    mirroring_plan,
    wcc,
)
from repro.tlav.algorithms import WCCProgram
from repro.tlav.blocks import wcc_blocks
from repro.tlav.engine import PregelEngine


def _run(tmp_dir):
    import os

    g = barabasi_albert(300, 4, seed=11)
    rows = []

    # Pregel+ mirroring.
    partition = hash_partition(g, 8)
    plan = mirroring_plan(g, partition, degree_threshold=12)
    baseline, mirrored = message_cost(g, partition, plan)
    rows.append(
        ["Pregel+ mirroring (deg>=12)", f"{baseline} msgs",
         f"{mirrored} msgs", f"-{100 * (1 - mirrored / baseline):.0f}%"]
    )

    # Blogel block-centric WCC on a high-diameter graph.
    chain = path_graph(120)
    engine = PregelEngine(chain, WCCProgram(), max_supersteps=300)
    engine.run()
    _, block_rounds = wcc_blocks(chain, range_partition(chain, 6))
    rows.append(
        ["Blogel WCC (path-120)", f"{engine.superstep} TLAV supersteps",
         f"{block_rounds} block rounds",
         f"{engine.superstep / block_rounds:.0f}x fewer"]
    )

    # Quegel query batching.
    quegel = QuegelEngine(g)
    rng = np.random.default_rng(0)
    for _ in range(10):
        quegel.submit(
            PointQuery(int(rng.integers(300)), int(rng.integers(300)))
        )
    _, accounting = quegel.run()
    rows.append(
        ["Quegel (10 queries)",
         f"{accounting['sequential_overhead']:.0f} solo overhead",
         f"{accounting['shared_overhead']:.0f} shared",
         f"-{100 * (1 - accounting['shared_overhead'] / accounting['sequential_overhead']):.0f}%"]
    )

    # GraphD-style out-of-core: CSR shards paged through a zero-budget
    # cache (at most one shard resident at any time).
    store_path = os.path.join(tmp_dir, "store")
    build_store(g, store_path, partition="hash", num_parts=8)
    with open_store(store_path, cache_budget=0) as stored:
        values = wcc(stored)
        paged = stored.cache.stats.bytes_paged
    assert np.asarray(values).tolist() == wcc(g).tolist()
    rows.append(
        ["GraphD out-of-core WCC", "1 shard resident",
         f"{paged} B paged", "exact result"]
    )

    # LWCP checkpointing.
    light = CheckpointedEngine(g, WCCProgram(), checkpoint_interval=2, mode="light")
    light.inject_failure(3)
    v_light = light.run()
    full = CheckpointedEngine(g, WCCProgram(), checkpoint_interval=2, mode="full")
    full.inject_failure(3)
    v_full = full.run()
    assert v_light == v_full == wcc(g).tolist()
    rows.append(
        ["LWCP vs full checkpoints", f"{full.stats.checkpoint_bytes} B full",
         f"{light.stats.checkpoint_bytes} B light",
         f"-{100 * (1 - light.stats.checkpoint_bytes / full.stats.checkpoint_bytes):.0f}%"]
    )
    return rows


def test_ablation_x1_tlav(benchmark, tmp_path):
    rows = benchmark.pedantic(_run, args=(str(tmp_path),), rounds=1, iterations=1)
    report(
        "X1",
        "Presenter-lineage TLAV optimizations (Pregel+/Blogel/Quegel/GraphD/LWCP)",
        ["system claim", "baseline", "optimized", "effect"],
        rows,
    )
    # Every optimization moved its metric the claimed direction.
    assert "-" in rows[0][3]
    assert "fewer" in rows[1][3]
    assert "-" in rows[2][3]
    assert rows[3][3] == "exact result"
    assert "-" in rows[4][3]
