"""C2 — BFS subgraph extension materializes exponentially; DFS does not.

Paper claim (Section 2): Arabesque/RStream/Pangolin's breadth-first
extension "creates a lot of subgraph materialization cost and restricts
scalability since the number of subgraph instances grows exponentially",
which G-thinker-style DFS backtracking avoids by never materializing
instances.

Reproduced shape: on connected k-subgraph enumeration — the exact
workload both engines share, with identical canonicality rules and
identical result sets — the BFS engine's peak materialized embeddings
explode with k while the DFS task engine's peak residency (pending
tasks + stack) stays flat.
"""

import pytest

from _harness import report
from repro.fsm.bfs_fsm import bfs_mine_frequent_subgraphs
from repro.fsm.gspan import GSpan
from repro.graph.generators import barabasi_albert, random_labeled_transactions
from repro.graph.transactions import TransactionDatabase
from repro.tlag.bfs_engine import bfs_enumerate_connected
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import ConnectedSubgraphProgram


def _run():
    g = barabasi_albert(150, 4, seed=2)
    rows = []
    for k in (2, 3, 4):
        bfs = bfs_enumerate_connected(g, k)
        engine = TaskEngine(
            g, ConnectedSubgraphProgram(k), num_workers=4,
            collect_results=False,
        )
        engine.run()
        assert engine.result_count == len(bfs.final_embeddings)
        rows.append(
            [
                f"enum k={k}",
                len(bfs.final_embeddings),
                bfs.peak_materialized,
                bfs.total_generated,
                engine.stats.peak_pending_tasks + k,  # tasks + stack depth
            ]
        )

    # The same contrast on the FSM workload: Arabesque-style levels vs
    # gSpan's one-pattern-at-a-time projection.
    db = TransactionDatabase(
        random_labeled_transactions(12, 9, 0.3, 2, seed=6)
    )
    miner = GSpan(min_support=5, max_edges=3)
    gspan_patterns = miner.run(db)
    bfs_patterns, stats = bfs_mine_frequent_subgraphs(db, 5, max_edges=3)
    assert sorted(tuple(p.code) for p in gspan_patterns) == sorted(
        tuple(p.code) for p in bfs_patterns
    )
    largest_level = stats.peak_embeddings
    rows.append(
        [
            "FSM (minsup=5)",
            len(bfs_patterns),
            largest_level,
            sum(stats.embeddings_per_level),
            "projection-bounded",
        ]
    )
    return rows


def test_claim_c2_bfs_vs_dfs(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "C2",
        "Connected k-subgraph enumeration: BFS materialization vs DFS residency",
        ["k", "instances", "BFS peak embeddings", "BFS generated",
         "DFS peak residency"],
        rows,
    )
    enum_rows = rows[:3]
    bfs_peaks = [row[2] for row in enum_rows]
    dfs_peaks = [row[4] for row in enum_rows]
    assert bfs_peaks[-1] > 10 * bfs_peaks[0]        # explosion with k
    assert max(dfs_peaks) < bfs_peaks[-1]            # DFS flat & far below
    assert max(dfs_peaks) <= dfs_peaks[0] + 4        # residency ~constant
    assert rows[3][2] > 0                            # FSM levels measured
